// Misconfiguration scanner: the paper's "practical relevance" use case —
// validate the day's BGP table against the delegation data. Every origin
// ASN that was never delegated is flagged and classified (prepending typo,
// one-digit typo, internal-use leak), exactly the 6.4 analysis as an
// operational filter.
//
// Run:  ./misconfig_scan [scale] [seed]
#include <cstdlib>
#include <iostream>
#include <set>

#include "bgp/sanitizer.hpp"
#include "bgpsim/route_gen.hpp"
#include "joint/outside.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(seed, scale));
  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed + 1;
  op_config.attacks.scale = scale;
  op_config.misconfigs.seed = seed + 3;
  op_config.misconfigs.scale = scale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);

  rirsim::InjectorConfig injector;
  injector.seed = seed + 4;
  injector.scale = scale;
  const rirsim::SimulatedArchive archive(truth, injector);
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir r : asn::kAllRirs)
    streams[asn::index_of(r)] = archive.stream(r);
  const restore::RestoredArchive restored = restore::restore_archive(
      std::move(streams), restore::RestoreConfig{}, &truth.erx,
      [&](asn::Asn a) { return truth.iana.owner(a); }, truth.archive_begin,
      &op_world.activity);
  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);

  // The set of ASNs ever delegated (the filter the paper proposes
  // operators could apply).
  std::set<std::uint32_t> delegated;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes)
    delegated.insert(life.asn.value);

  // Scan one day of the (sanitized) global table.
  const util::Day day = util::make_day(2018, 6, 15);
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(op_world, infra, seed + 5);
  const bgp::Sanitizer sanitizer;
  bgp::SanitizeStats stats;

  // Aggregate per origin, applying the paper's >1-peer visibility rule so
  // single-peer spurious sightings (noise) are not flagged.
  struct OriginInfo {
    std::int64_t elements = 0;
    std::set<std::uint32_t> peers;
    std::uint32_t first_hop = 0;
  };
  std::map<std::uint32_t, OriginInfo> observed;
  std::int64_t routes = 0;
  for (const bgp::Element& element : generator.elements_for_day(day)) {
    if (!sanitizer.accept(element, stats)) continue;
    ++routes;
    const auto origin = element.path.origin();
    if (!origin || asn::is_bogon(*origin)) continue;
    if (delegated.contains(origin->value)) continue;
    auto& entry = observed[origin->value];
    ++entry.elements;
    entry.peers.insert(element.peer.value);
    if (const auto hop = element.path.first_hop())
      entry.first_hop = hop->value;
  }
  std::map<std::uint32_t, std::pair<std::int64_t, std::uint32_t>> flagged;
  std::int64_t spurious = 0;
  for (const auto& [origin, info] : observed) {
    if (info.peers.size() < 2) {
      ++spurious;
      continue;
    }
    flagged[origin] = {info.elements, info.first_hop};
  }

  std::cout << "scanned " << util::with_commas(routes)
            << " sanitized route elements on " << util::format_iso(day)
            << " (discarded: " << stats.prefix_too_long << " long prefixes, "
            << stats.prefix_too_short << " short, " << stats.path_loops
            << " loops; " << spurious
            << " single-peer spurious origins ignored)\n\n";

  // Classify each flagged origin the way 6.4 does.
  std::set<std::uint32_t> allocated_set(delegated.begin(), delegated.end());
  int max_digits = 1;
  for (const std::uint32_t a : allocated_set)
    max_digits = std::max(max_digits, asn::digit_count(asn::Asn{a}));

  util::TextTable table({"origin ASN", "elements", "first hop",
                         "classification"});
  std::size_t shown = 0;
  for (const auto& [origin, info] : flagged) {
    if (shown++ == 15) break;
    std::string kind = "unclassified";
    const asn::Asn bogus{origin};
    // Prepend typo?
    const std::string spelling = asn::to_string(bogus);
    bool matched = false;
    if (spelling.size() % 2 == 0) {
      const auto half = asn::parse_asn(spelling.substr(0, spelling.size() /
                                                              2));
      if (half && allocated_set.contains(half->value) &&
          asn::is_doubled_spelling(bogus, *half)) {
        kind = "prepending typo of AS" + asn::to_string(*half);
        matched = true;
      }
    }
    if (!matched && allocated_set.contains(info.second) &&
        asn::spelling_distance(bogus, asn::Asn{info.second}) == 1) {
      kind = "one-digit typo of AS" + std::to_string(info.second) +
             " (MOAS risk)";
      matched = true;
    }
    if (!matched && asn::digit_count(bogus) > max_digits)
      kind = "internal-use ASN leaking via AS" + std::to_string(info.second);
    table.add_row({asn::to_string(bogus), std::to_string(info.first),
                   "AS" + std::to_string(info.second), kind});
  }
  std::cout << "origins announcing without any delegation ("
            << flagged.size() << " flagged):\n";
  table.print(std::cout);

  std::cout << "\nfiltering all never-delegated origins would have dropped "
            << flagged.size()
            << " bogus origins from this day's table — the RPKI-style "
               "mitigation the paper argues for in 9.\n";
  return 0;
}
