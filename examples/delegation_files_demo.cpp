// Delegation-file round trip: renders real NRO-format text files from the
// simulated registry state, writes them to disk, re-parses them, and feeds
// them back through the archive adapter — exercising the exact file formats
// the RIRs publish.
//
// Run:  ./delegation_files_demo [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "delegation/archive.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "delegated-files";
  std::filesystem::create_directories(out_dir);

  // Small world, render a week of RIPE NCC extended files as real text.
  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(3, 0.01));
  rirsim::InjectorConfig injector;
  injector.scale = 0.01;
  const rirsim::SimulatedArchive archive(truth, injector);

  const asn::Rir rir = asn::Rir::kRipeNcc;
  const util::Day week_start = util::make_day(2015, 6, 1);

  // Accumulate the file content from the day-delta stream.
  auto stream = archive.stream(rir);
  dele::SnapshotTable table;
  std::optional<dele::DayObservation> observation;
  std::vector<std::pair<util::Day, dele::DelegationFile>> files;
  while ((observation = stream->next())) {
    if (observation->extended.condition == dele::FileCondition::kPresent)
      table.apply(observation->extended.changes);
    if (observation->day < week_start || observation->day >= week_start + 7)
      continue;

    // Build a DelegationFile from the current snapshot.
    dele::DelegationFile file;
    file.extended = true;
    file.header.registry = rir;
    file.header.serial = observation->day;
    file.header.start_date = util::make_day(1984, 1, 1);
    file.header.end_date = observation->day - 1;
    file.header.utc_offset = "+0200";
    for (const auto& [asn_value, state] : table.records()) {
      dele::AsnRecord record;
      record.registry = rir;
      record.first = asn::Asn{asn_value};
      record.count = 1;
      record.status = state.status;
      record.country = state.country;
      record.date = state.registration_date;
      record.opaque_id = state.opaque_id;
      file.asn_records.push_back(record);
    }
    file.header.record_count =
        static_cast<std::int64_t>(file.asn_records.size());

    const std::string name = "delegated-ripencc-extended-" +
                             util::format_compact(observation->day);
    const std::filesystem::path path = out_dir / name;
    std::ofstream(path) << dele::serialize(file);
    files.emplace_back(observation->day, std::move(file));
    std::cout << "wrote " << path.string() << " ("
              << util::with_commas(files.back().second.header.record_count)
              << " ASN records)\n";
  }

  // Re-read from disk and verify the round trip.
  std::size_t verified = 0;
  for (const auto& [day, original] : files) {
    const std::filesystem::path path =
        out_dir / ("delegated-ripencc-extended-" + util::format_compact(day));
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const dele::ParseResult parsed = dele::parse_delegation_file(text);
    if (!parsed.ok) {
      std::cerr << "parse failed for " << path << ": " << parsed.error
                << "\n";
      return 1;
    }
    if (!(parsed.file.asn_records == original.asn_records)) {
      std::cerr << "round-trip mismatch for " << path << "\n";
      return 1;
    }
    ++verified;
  }
  std::cout << "\nround-trip verified for " << verified << " files\n";

  // Feed the parsed files back through the day-delta adapter.
  if (!files.empty()) {
    const auto observations = dele::observations_from_files(
        rir, files, {}, files.front().first, files.back().first);
    std::size_t present = 0;
    std::size_t changes = 0;
    for (const dele::DayObservation& day_observation : observations) {
      if (day_observation.extended.condition ==
          dele::FileCondition::kPresent)
        ++present;
      changes += day_observation.extended.changes.size();
    }
    std::cout << "archive adapter: " << present << " present days, "
              << changes << " record changes across the week "
              << "(first day carries the full snapshot)\n";
  }
  return 0;
}
