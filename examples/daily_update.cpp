// Near-realtime daily update (paper 9: "we intend to continue updating and
// publishing our datasets on a daily basis"): consume the archive through
// the StreamingRestorer day by day, and at a few checkpoints rebuild the
// lifetimes and print the current census — the loop a production deployment
// would run once per day as new delegation files land.
//
// Run:  ./daily_update [scale] [seed]
#include <cstdlib>
#include <iostream>

#include "bgpsim/route_gen.hpp"
#include "joint/taxonomy.hpp"
#include "obs/metrics.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "robust/error.hpp"
#include "util/strings.hpp"

namespace {

/// The operator's dashboard view: publish every restorer's §3.1 ledger and
/// the merged fault books into a fresh registry, then read the aggregates
/// back off the snapshot (counter_sum folds the per-registry labels) — the
/// same numbers a Prometheus scrape of a live deployment would chart.
pl::obs::Snapshot census(
    const std::vector<pl::restore::StreamingRestorer>& restorers,
    const std::array<pl::robust::ErrorSink, pl::asn::kRirCount>& sinks) {
  pl::obs::Registry registry;
  for (std::size_t r = 0; r < restorers.size(); ++r)
    pl::restore::record_metrics(restorers[r].report(), pl::asn::kAllRirs[r],
                                registry);
  pl::robust::RobustnessReport faults;
  for (const pl::robust::ErrorSink& sink : sinks)
    faults.merge(sink.counters());
  pl::robust::record_metrics(faults, registry);
  return registry.snapshot();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(seed, scale));
  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed + 1;
  op_config.attacks.scale = scale;
  op_config.misconfigs.scale = scale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);

  rirsim::InjectorConfig injector;
  injector.seed = seed + 4;
  injector.scale = scale;
  const rirsim::SimulatedArchive archive(truth, injector);

  // One streaming restorer per registry, fed day by day — exactly what a
  // cron job tailing the RIR FTP sites would do. Each gets its own error
  // sink so the fault books survive checkpoint/resume cycles.
  std::array<robust::ErrorSink, asn::kRirCount> sinks;
  std::vector<restore::StreamingRestorer> restorers;
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir rir : asn::kAllRirs) {
    restorers.emplace_back(rir, restore::RestoreConfig{}, &truth.erx,
                           &op_world.activity, &sinks[asn::index_of(rir)]);
    streams[asn::index_of(rir)] = archive.stream(rir);
  }

  const util::Day checkpoints[] = {
      util::make_day(2008, 1, 1), util::make_day(2014, 1, 1),
      util::make_day(2021, 3, 1)};
  std::size_t next_checkpoint = 0;

  for (util::Day day = truth.archive_begin; day <= truth.archive_end;
       ++day) {
    for (std::size_t r = 0; r < restorers.size(); ++r) {
      const auto observation = streams[r]->next();
      if (observation) restorers[r].consume(*observation);
    }

    if (next_checkpoint < std::size(checkpoints) &&
        day == checkpoints[next_checkpoint]) {
      ++next_checkpoint;
      std::size_t blob_bytes = 0;
      // Checkpoint: serialize every restorer and resume from the blobs, as
      // a crash-restarted deployment would (a real one writes the blobs to
      // disk). The resumed instances replace the originals and the run
      // simply continues — finalize() below closes the books identically.
      for (std::size_t r = 0; r < restorers.size(); ++r) {
        const std::string blob = restorers[r].checkpoint();
        blob_bytes += blob.size();
        auto resumed = restore::StreamingRestorer::from_checkpoint(
            blob, restore::RestoreConfig{}, &truth.erx, &op_world.activity,
            &sinks[r]);
        if (!resumed) {
          std::cerr << "checkpoint resume failed for registry " << r << "\n";
          return 1;
        }
        restorers[r] = std::move(*resumed);
      }
      // Fault/recovery counts come off the metrics snapshot, not the raw
      // report structs — the aggregation over registries is one
      // counter_sum instead of a hand-rolled loop per field.
      const obs::Snapshot metrics = census(restorers, sinks);
      std::cout << util::format_iso(day) << ": "
                << restorers[0].report().days_processed
                << " days ingested, "
                << util::with_commas(
                       metrics.counter_sum("pl_restore_files_missing"))
                << " missing files bridged, "
                << util::with_commas(metrics.counter_sum(
                       "pl_restore_recovered_from_regular"))
                << " records recovered from regular files so far"
                << " (checkpointed+resumed, "
                << util::with_commas(static_cast<std::int64_t>(blob_bytes))
                << " bytes across 5 registries)\n";
    }
  }

  // Final build: restored registries -> lifetimes -> taxonomy.
  restore::RestoredArchive restored;
  for (std::size_t r = 0; r < restorers.size(); ++r)
    restored.registries[r] = std::move(restorers[r]).finalize();
  restored.cross = restore::reconcile_registries(
      restored.registries, [&](asn::Asn a) { return truth.iana.owner(a); },
      restore::RestoreConfig{}, truth.archive_begin);

  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(op_world.activity);
  const joint::Taxonomy taxonomy = joint::classify(admin, op);

  std::cout << "\nfinal datasets: "
            << util::with_commas(static_cast<std::int64_t>(
                   admin.lifetimes.size()))
            << " admin lifetimes, "
            << util::with_commas(static_cast<std::int64_t>(
                   op.lifetimes.size()))
            << " op lifetimes; taxonomy "
            << util::with_commas(taxonomy.admin_counts[0]) << " / "
            << util::with_commas(taxonomy.admin_counts[1]) << " / "
            << util::with_commas(taxonomy.admin_counts[2])
            << " (complete/partial/unused)\n";

  // Closing fault/recovery books, read the way a monitoring stack would.
  obs::Registry final_registry;
  for (std::size_t r = 0; r < restored.registries.size(); ++r)
    restore::record_metrics(restored.registries[r], final_registry);
  robust::RobustnessReport faults;
  for (const robust::ErrorSink& sink : sinks) faults.merge(sink.counters());
  robust::record_metrics(faults, final_registry);
  const obs::Snapshot metrics = final_registry.snapshot();
  std::cout << "robustness: "
            << util::with_commas(
                   metrics.counter_sum("pl_fault_diagnostics"))
            << " diagnostics, "
            << util::with_commas(metrics.counter_sum(
                   "pl_restore_days_quarantined_duplicate") +
                   metrics.counter_sum("pl_restore_days_quarantined_late"))
            << " days quarantined, "
            << util::with_commas(metrics.counter_sum(
                   "pl_restore_recovered_from_regular"))
            << " records recovered, "
            << util::with_commas(
                   metrics.counter_sum("pl_checkpoint_failures"))
            << " checkpoint failures\n";
  std::cout << "daily_update OK\n";
  return 0;
}
