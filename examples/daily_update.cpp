// Near-realtime daily update (paper 9: "we intend to continue updating and
// publishing our datasets on a daily basis") — now through the serving
// layer. A deployment keeps a serve::Snapshot warm and folds each new day
// in with QueryService::advance_day instead of rebuilding the whole study:
// one delegation day + one BGP activity day per advance, with the caches
// dropped and the census republished. The advance path is locked by test to
// be bit-identical to a full rebuild, which this example re-verifies at the
// end.
//
// The "new day arriving from the RIR FTP sites + collectors" is played here
// by serve::slice_day over an extended simulated world; a production loop
// would assemble the same DayDelta from the day's delegation files and
// collector dump.
//
// Run:  ./daily_update [scale] [seed]
#include <cstdlib>
#include <iostream>

#include "pipeline/pipeline.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  // The extended world E: the full simulated history, of which the last
  // weeks will arrive "live" below.
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  const pipeline::Result extended = pipeline::run_simulated(config);
  const util::Day end = extended.truth.archive_end;
  const int days_live = 28;
  const util::Day start = end - days_live;

  // Day 0 of the deployment: build the snapshot over everything published
  // up to `start` and put the query service in front of it.
  serve::Snapshot base = serve::Snapshot::build(
      serve::truncate_archive(extended.restored, start),
      serve::truncate_activity(extended.op_world.activity, start), start);
  std::cout << "serving from " << util::format_iso(start) << ": "
            << util::with_commas(static_cast<std::int64_t>(base.asn_count()))
            << " ASNs, "
            << util::with_commas(
                   static_cast<std::int64_t>(base.admin_life_count()))
            << " admin lives\n";
  serve::QueryService service(std::move(base));

  // The daily loop: slice the next day out of E, fold it in, keep serving.
  std::int64_t facts = 0;
  std::int64_t active = 0;
  for (util::Day day = start + 1; day <= end; ++day) {
    const serve::DayDelta delta = serve::slice_day(
        extended.restored, extended.op_world.activity, day);
    facts += static_cast<std::int64_t>(delta.delegation.size());
    active += static_cast<std::int64_t>(delta.active.size());
    const pl::Status status = service.advance_day(delta);
    if (!status.ok()) {
      std::cerr << "advance failed on " << util::format_iso(day) << ": "
                << status.to_string() << "\n";
      return 1;
    }

    if ((day - start) % 7 == 0 || day == end) {
      const serve::CensusAnswer census = service.census(day);
      std::cout << util::format_iso(day) << " (v" << service.version()
                << "): " << util::with_commas(census.admin_alive)
                << " admin / " << util::with_commas(census.op_alive)
                << " op lives alive, "
                << util::with_commas(static_cast<std::int64_t>(
                       delta.delegation.size()))
                << " delegation facts today\n";
    }
  }
  std::cout << "\nadvanced " << days_live << " days: "
            << util::with_commas(facts) << " delegation facts, "
            << util::with_commas(active) << " active-ASN marks folded in\n";

  // The §9 promise, verified: the incrementally-advanced snapshot is
  // bit-identical to rebuilding the study over the full extended world.
  const serve::Snapshot full = serve::Snapshot::build(
      extended.restored, extended.op_world.activity, end);
  if (!(service.snapshot() == full)) {
    std::cerr << "advanced snapshot diverged from full rebuild\n";
    return 1;
  }
  std::cout << "advanced snapshot == full rebuild (bit-identical)\n";

  // What the monitoring stack sees after a month of advances.
  const obs::Snapshot metrics = service.report().metrics;
  std::cout << "serve metrics: "
            << metrics.counter_value("pl_serve_advance_days")
            << " days advanced, "
            << metrics.counter_value("pl_serve_cache_hits") << " cache hits, "
            << metrics.counter_value("pl_serve_cache_misses")
            << " misses\n";
  std::cout << "daily_update OK\n";
  return 0;
}
