// Near-realtime daily update (paper §9: "we intend to continue updating and
// publishing our datasets on a daily basis") — now through the durable
// serving layer. A deployment keeps a serve::Snapshot warm on disk, appends
// each day's DayDelta to a write-ahead log before folding it in, and
// checkpoints periodically; if the process dies mid-update, reopening the
// state directory replays the WAL and resumes exactly where it left off.
//
// This example demonstrates the whole crash/resume cycle with an injected
// fault: the daily loop is killed by a robust::CrashPoints hook halfway
// through a torn WAL append, the service is reopened from disk, the stretch
// is finished, and the recovered snapshot is verified bit-identical to a
// full rebuild that never crashed.
//
// The service also records every folded day into a history::HistoryStore
// (DurableConfig::history): after the month, `QueryOptions::as_of` answers
// from any recorded day, reconstructed bit-identically from keyframe +
// deltas — crash, WAL replay and all.
//
// The "new day arriving from the RIR FTP sites + collectors" is played here
// by HistoryStore::slice_day over an extended simulated world; a production
// loop would assemble the same DayDelta from the day's delegation files and
// collector dump.
//
// Run:  ./daily_update [scale] [seed]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "robust/crashpoint.hpp"
#include "serve/durable.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  // The extended world E: the full simulated history, of which the last
  // weeks will arrive "live" below.
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  const pipeline::Result extended = pipeline::run_simulated(config);
  const util::Day end = extended.truth.archive_end;
  const int days_live = 28;
  const util::Day start = end - days_live;
  const auto day_of = [&](util::Day day) {
    return history::HistoryStore::slice_day(extended.restored,
                                            extended.op_world.activity, day);
  };

  // Day 0 of the deployment: build the snapshot over everything published
  // up to `start` and open a durable service over a fresh state directory.
  serve::Snapshot base = history::HistoryStore::rebuild_at(
      extended.restored, extended.op_world.activity, start);
  std::cout << "serving from " << util::format_iso(start) << ": "
            << util::with_commas(static_cast<std::int64_t>(base.asn_count()))
            << " ASNs, "
            << util::with_commas(
                   static_cast<std::int64_t>(base.admin_life_count()))
            << " admin lives\n";

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pl_daily_update").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  robust::CrashPoints crash;
  history::HistoryStore history;
  serve::DurableConfig durable;
  durable.dir = dir;
  durable.checkpoint_every_days = 7;
  durable.crash = &crash;
  durable.history = &history;  // record every folded day for time travel

  // Phase 1: the daily loop, with a process death scheduled mid-stretch —
  // the 12th WAL append tears halfway through its frame.
  util::Day died_on = 0;
  {
    auto service = serve::DurableService::open(std::move(base), durable);
    if (!service.ok()) {
      std::cerr << "open failed: " << service.status().to_string() << "\n";
      return 1;
    }
    crash.arm("durable.wal.torn_append", 12);
    for (util::Day day = start + 1; day <= end; ++day) {
      const pl::Status status = service->advance_day(day_of(day));
      if (crash.fired()) {
        died_on = day;
        std::cout << "\n*** process death on " << util::format_iso(day)
                  << ": " << status.to_string() << "\n";
        break;
      }
      if (!status.ok()) {
        std::cerr << "advance failed on " << util::format_iso(day) << ": "
                  << status.to_string() << "\n";
        return 1;
      }
      if ((day - start) % 7 == 0) {
        const serve::CensusAnswer census =
            *service->queries().query(serve::Query::census(day))->census;
        std::cout << util::format_iso(day) << ": "
                  << util::with_commas(census.admin_alive) << " admin / "
                  << util::with_commas(census.op_alive)
                  << " op lives alive (durable through "
                  << util::format_iso(service->health().last_durable_day)
                  << ")\n";
      }
    }
  }
  if (died_on == 0) {
    std::cerr << "crash point never fired; stretch too short?\n";
    return 1;
  }

  // Phase 2: recovery. Reopen the same directory — the bootstrap snapshot
  // is deliberately empty, so everything must come back from the durable
  // snapshot + WAL replay — and finish the stretch.
  durable.crash = nullptr;
  auto recovered = serve::DurableService::open(serve::Snapshot{}, durable);
  if (!recovered.ok()) {
    std::cerr << "reopen failed: " << recovered.status().to_string() << "\n";
    return 1;
  }
  const serve::HealthReport health = recovered->health();
  std::cout << "reopened " << dir << ": snapshot day "
            << util::format_iso(health.snapshot_day) << ", "
            << health.replayed_days << " WAL days replayed, resuming at "
            << util::format_iso(recovered->archive_end() + 1)
            << (health.degraded ? " [DEGRADED]" : "") << "\n";
  if (health.degraded) {
    std::cerr << "recovery came back degraded: " << health.last_error << "\n";
    return 1;
  }
  if (recovered->archive_end() >= died_on) {
    std::cerr << "the day that crashed must not have been folded durably\n";
    return 1;
  }

  for (util::Day day = recovered->archive_end() + 1; day <= end; ++day) {
    const pl::Status status = recovered->advance_day(day_of(day));
    if (!status.ok()) {
      std::cerr << "resume failed on " << util::format_iso(day) << ": "
                << status.to_string() << "\n";
      return 1;
    }
  }

  // The §9 promise, crash included: the crashed-and-recovered snapshot is
  // bit-identical to rebuilding the study over the full extended world.
  const serve::Snapshot full = history::HistoryStore::rebuild_at(
      extended.restored, extended.op_world.activity, end);
  if (!(recovered->snapshot() == full)) {
    std::cerr << "recovered snapshot diverged from full rebuild\n";
    return 1;
  }
  std::cout << "recovered snapshot == full rebuild (bit-identical)\n";

  // Time travel through the recovered service: the history store received
  // every folded day — reseeded on reopen, WAL-replayed days included — so
  // `as_of` serves any recorded day.
  const util::Day week_ago = end - 7;
  serve::QueryOptions as_of;
  as_of.as_of = week_ago;
  auto past =
      recovered->queries().query(serve::Query::census(week_ago, as_of));
  if (!past.ok()) {
    std::cerr << "as_of query failed: " << past.status().to_string() << "\n";
    return 1;
  }
  const history::HistoryStats hstats = history.stats();
  std::cout << "as of " << util::format_iso(week_ago) << ": "
            << util::with_commas(past->census->admin_alive) << " admin / "
            << util::with_commas(past->census->op_alive)
            << " op lives alive — served from " << hstats.keyframes
            << " keyframes + " << hstats.deltas << " deltas ("
            << util::with_commas(hstats.delta_bytes) << " delta bytes)\n";

  // And the reconstruction really is the study-as-of-that-day: bit-identical
  // to a fresh rebuild over the world truncated a week early.
  auto mid = history.at(week_ago);
  if (!mid.ok() ||
      !(**mid == history::HistoryStore::rebuild_at(
                     extended.restored, extended.op_world.activity,
                     week_ago))) {
    std::cerr << "history reconstruction diverged from rebuild\n";
    return 1;
  }
  std::cout << "history.at(" << util::format_iso(week_ago)
            << ") == rebuild at that day (bit-identical)\n";

  // What the monitoring stack sees after the month, crash and all.
  const obs::Snapshot metrics = recovered->report().metrics;
  std::cout << "durability metrics: "
            << metrics.counter_value("pl_serve_wal_appends")
            << " WAL appends, "
            << metrics.counter_value("pl_serve_wal_replayed_days")
            << " days replayed, "
            << metrics.counter_value("pl_serve_snapshot_saves")
            << " snapshots saved\n";
  std::cout << "daily_update OK\n";
  return 0;
}
