// Per-registry administrative report: what a policy analyst would pull from
// the restored archive — allocation trends, reuse behaviour, the 16->32-bit
// transition, deallocation lag, and dataset exports (Listing-1 JSON + CSV).
//
// Run:  ./rir_report [rir] [scale] [seed]     (rir: afrinic|apnic|arin|
//                                              lacnic|ripencc)
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bgpsim/route_gen.hpp"
#include "joint/birdseye.hpp"
#include "joint/utilization.hpp"
#include "lifetimes/dataset_io.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const asn::Rir rir =
      argc > 1 ? asn::parse_rir(argv[1]).value_or(asn::Rir::kRipeNcc)
               : asn::Rir::kRipeNcc;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 7;

  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(seed, scale));
  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed + 1;
  op_config.attacks.scale = scale;
  op_config.misconfigs.scale = scale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);

  rirsim::InjectorConfig injector;
  injector.seed = seed + 4;
  injector.scale = scale;
  const rirsim::SimulatedArchive archive(truth, injector);
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir r : asn::kAllRirs)
    streams[asn::index_of(r)] = archive.stream(r);
  const restore::RestoredArchive restored = restore::restore_archive(
      std::move(streams), restore::RestoreConfig{}, &truth.erx,
      [&](asn::Asn a) { return truth.iana.owner(a); }, truth.archive_begin,
      &op_world.activity);
  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(op_world.activity);
  const joint::Taxonomy taxonomy = joint::classify(admin, op);

  std::cout << "===== " << asn::display_name(rir)
            << " administrative report =====\n\n";

  // Census over the era.
  const joint::DailyCensus census = joint::compute_census(
      admin, op, truth.archive_begin, truth.archive_end);
  const std::size_t r = asn::index_of(rir);
  std::cout << "alive allocations at archive end: "
            << util::with_commas(census.admin_per_rir[r].back())
            << " (of which alive in BGP: "
            << util::with_commas(census.op_per_rir[r].back()) << ")\n";

  // Reuse behaviour.
  const joint::LivesPerAsnTable lives = joint::compute_lives_per_asn(admin,
                                                                     op);
  std::cout << "ASNs with 1/2/>2 administrative lives: "
            << util::percent(lives.admin[r].one) << " / "
            << util::percent(lives.admin[r].two) << " / "
            << util::percent(lives.admin[r].more) << "\n";

  // 16/32-bit split today.
  const joint::WidthCensus width = joint::compute_width_census(
      admin, truth.archive_begin, truth.archive_end);
  std::cout << "16-bit vs 32-bit allocated today: "
            << util::with_commas(width.bits16[r].back()) << " vs "
            << util::with_commas(width.bits32[r].back()) << "\n";

  // Deallocation lag.
  const joint::UtilizationAnalysis utilization =
      joint::analyze_utilization(taxonomy, admin, op);
  std::cout << "median days from last BGP activity to deallocation: "
            << static_cast<int>(util::median(
                   utilization.dealloc_lag_days[r]))
            << "\n";
  std::cout << "median days from allocation to first BGP activity: "
            << static_cast<int>(util::median(
                   utilization.activation_delay_days[r]))
            << "\n\n";

  // Quarterly births for the last 5 years.
  const joint::QuarterlySeries quarterly = joint::compute_quarterly(
      admin, util::make_day(2016, 1, 1), truth.archive_end);
  util::TextTable table({"quarter", "births", "balance"});
  for (std::size_t q = 0; q < quarterly.quarter_index.size(); q += 2) {
    const int index = quarterly.quarter_index[q];
    table.add_row({std::to_string(index / 4) + "Q" +
                       std::to_string(index % 4 + 1),
                   util::with_commas(quarterly.births[r][q]),
                   util::with_commas(quarterly.balance[r][q])});
  }
  table.print(std::cout);

  // Dataset export, restricted to this registry.
  lifetimes::AdminDataset subset;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes)
    if (life.registry == rir) subset.lifetimes.push_back(life);
  subset.index();
  const std::string json_path =
      std::string(asn::file_token(rir)) + "_admin.jsonl";
  const std::string csv_path =
      std::string(asn::file_token(rir)) + "_admin.csv";
  {
    std::ofstream json(json_path);
    const pl::Status json_saved = lifetimes::save_admin_json(json, subset);
    std::ofstream csv(csv_path);
    const pl::Status csv_saved = lifetimes::save_admin_csv(csv, subset);
    if (!json_saved.ok() || !csv_saved.ok()) {
      std::cerr << "export failed: "
                << (!json_saved.ok() ? json_saved : csv_saved).to_string()
                << "\n";
      return 1;
    }
  }
  std::cout << "\nexported "
            << util::with_commas(static_cast<std::int64_t>(
                   subset.lifetimes.size()))
            << " lifetimes to " << json_path << " and " << csv_path << "\n";
  return 0;
}
