#!/usr/bin/env bash
# verify-matrix.sh — the repo's full verification matrix in one command.
#
# Nine legs, one line of output each, exit 0 iff every leg passes:
#
#   plain      tier-1 build (with -Werror) + full ctest suite
#   asan       PL_SANITIZE build (ASan+UBSan) + chaos-labelled suites
#   tsan       PL_TSAN build + concurrency-labelled suites
#   obs-off    PL_OBS_OFF build + full suite (kill-switch stays buildable)
#   checked    PL_CHECKED build + full suite (contracts armed, death tests)
#   lint       pl-lint over src/ tests/ bench/ examples/ (ctest -L lint),
#              then the ratchet summary + --check-baseline staleness dry-run
#   serve      serving-layer suites under contracts armed (ctest -L serve)
#   durability crash-injection + WAL/snapshot chaos under contracts armed
#              (ctest -L durability)
#   history    snapshot-history reconstruction + time-travel queries under
#              contracts armed (ctest -L history)
#
# Usage: scripts/verify-matrix.sh [jobs]
# Build trees live in build-matrix-<leg>/ so they never collide with the
# developer's own build/. Every leg's full log lands in
# build-matrix-<leg>/verify-<leg>.log for post-mortems.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"
FAILED=0

run_leg() {
  local name="$1" cmake_flags="$2" ctest_args="$3" tree="${4:-$1}"
  local dir="$ROOT/build-matrix-$tree"
  local log="$dir/verify-$name.log"
  local started ended
  started=$(date +%s)
  mkdir -p "$dir"
  : > "$log"
  if cmake -B "$dir" -S "$ROOT" $cmake_flags >>"$log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" >>"$log" 2>&1 &&
     (cd "$dir" && ctest --output-on-failure -j "$JOBS" $ctest_args >>"$log" 2>&1); then
    ended=$(date +%s)
    printf 'PASS  %-8s (%ss)\n' "$name" "$((ended - started))"
  else
    ended=$(date +%s)
    printf 'FAIL  %-8s (%ss)  log: %s\n' "$name" "$((ended - started))" "$log"
    FAILED=1
  fi
}

# plain doubles as the warning gate: tier-1 flags plus -Werror.
run_leg plain   "-DPL_WERROR=ON"                 ""
run_leg asan    "-DPL_SANITIZE=ON"               "-L chaos"
run_leg tsan    "-DPL_TSAN=ON"                   "-L concurrency"
run_leg obs-off "-DPL_OBS_OFF=ON"                ""
run_leg checked "-DPL_CHECKED=ON -DPL_WERROR=ON" ""
# lint reuses the plain tree: pl-lint is already built there, so this leg
# is pure analysis time.
run_leg lint    "-DPL_WERROR=ON"                 "-L lint" plain
# Surface the gate's ratchet line at matrix level and dry-run the baseline
# staleness check: exit 3 means an entry in tools/pl-lint/baseline.json no
# longer matches any finding and must be shrunk with --update-baseline
# before it silently grandfathers a regression of the same shape.
LINT_BIN="$ROOT/build-matrix-plain/tools/pl-lint"
if [ -x "$LINT_BIN" ]; then
  RATCHET_LOG="$ROOT/build-matrix-plain/verify-lint-ratchet.log"
  if "$LINT_BIN" --root "$ROOT" \
       --layers "$ROOT/tools/pl-lint/layers.txt" \
       --baseline "$ROOT/tools/pl-lint/baseline.json" \
       --cache "$ROOT/build-matrix-plain/pl-lint-cache.json" \
       --check-baseline \
       "$ROOT/src" "$ROOT/tests" "$ROOT/tools" "$ROOT/bench" \
       "$ROOT/examples" >"$RATCHET_LOG" 2>&1; then
    grep '^ratchet:' "$RATCHET_LOG" || true
  else
    RC=$?
    if [ "$RC" -eq 3 ]; then
      echo "FAIL  lint-baseline: stale entries, run pl-lint --update-baseline"
    else
      echo "FAIL  lint-baseline (rc=$RC)  log: $RATCHET_LOG"
    fi
    grep '^ratchet:' "$RATCHET_LOG" || true
    FAILED=1
  fi
fi
# serve reuses the checked tree: the oracle fuzz + advance-vs-rebuild
# suites run with contracts armed, which is where snapshot indexing bugs
# would trip PL_ASSERT_SORTED and friends.
run_leg serve   "-DPL_CHECKED=ON -DPL_WERROR=ON" "-L serve" checked
# durability also reuses the checked tree: the crash matrix and the file
# corruptors run with contracts armed, so a recovery that rebuilds bad
# indexes dies loudly instead of comparing-unequal later.
run_leg durability "-DPL_CHECKED=ON -DPL_WERROR=ON" "-L durability" checked
# history reuses the checked tree too: the reconstruct-vs-rebuild fuzz and
# the as_of oracle suites run with contracts armed, so a delta fold that
# leaves a snapshot index unsorted dies at the fold, not at the compare.
run_leg history "-DPL_CHECKED=ON -DPL_WERROR=ON" "-L history" checked

if [ "$FAILED" -ne 0 ]; then
  echo "verify matrix: FAILED"
  exit 1
fi
echo "verify matrix: all legs passed"
