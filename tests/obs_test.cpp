// Unit guards for the observability layer: registry semantics, histogram
// bucket edges, span nesting, and the JSON / Prometheus exporter
// round-trips. The whole suite assumes the observability layer is compiled
// in (the PL_OBS_OFF shells are exercised by obs_off_check instead).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pl::obs {
namespace {

#ifndef PL_OBS_OFF

TEST(Registry, CountersAccumulateAndSnapshotSorted) {
  Registry registry;
  registry.counter("b_second").add(2);
  registry.counter("a_first").add(1);
  registry.counter("b_second").add(3);

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counter_value("a_first"), 1);
  EXPECT_EQ(snap.counter_value("b_second"), 5);
  EXPECT_EQ(snap.counter_value("absent"), 0);
  // std::map iteration is the deterministic serial order exporters rely on.
  EXPECT_EQ(snap.counters.begin()->first, "a_first");
}

TEST(Registry, CounterReferencesAreStable) {
  Registry registry;
  Counter& counter = registry.counter("stable");
  // Creating many other metrics must not invalidate the hoisted reference.
  for (int i = 0; i < 100; ++i)
    registry.counter("filler_" + std::to_string(i)).add(1);
  counter.add(7);
  EXPECT_EQ(registry.snapshot().counter_value("stable"), 7);
  EXPECT_EQ(&registry.counter("stable"), &counter);
}

TEST(Registry, GaugeIsLastWriteWins) {
  Registry registry;
  registry.gauge("level").set(10);
  registry.gauge("level").set(4);
  EXPECT_EQ(registry.snapshot().gauges.at("level"), 4);
}

TEST(Registry, CounterSumAggregatesLabelsOnly) {
  Registry registry;
  registry.counter("pl_days{registry=\"apnic\"}").add(3);
  registry.counter("pl_days{registry=\"ripencc\"}").add(4);
  registry.counter("pl_days").add(1);
  registry.counter("pl_days_other").add(100);  // prefix but not a label

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_sum("pl_days"), 8);
  EXPECT_EQ(snap.counter_sum("pl_days_other"), 100);
  EXPECT_EQ(snap.counter_sum("pl_nothing"), 0);
}

TEST(Registry, ConcurrentAddsSumExactly) {
  Registry registry;
  Counter& counter = registry.counter("hot");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram& histogram = registry.histogram("h", {10, 20});
  histogram.observe(0);    // <= 10
  histogram.observe(10);   // == bound: first bucket (inclusive)
  histogram.observe(11);   // second bucket
  histogram.observe(20);   // == bound: second bucket
  histogram.observe(21);   // overflow
  histogram.observe(1000); // overflow

  const HistogramSnapshot snap = registry.snapshot().histograms.at("h");
  ASSERT_EQ(snap.bounds, (std::vector<std::int64_t>{10, 20}));
  ASSERT_EQ(snap.buckets, (std::vector<std::int64_t>{2, 2, 2}));
  EXPECT_EQ(snap.count, 6);
  EXPECT_EQ(snap.sum, 0 + 10 + 11 + 20 + 21 + 1000);
}

TEST(Histogram, UnsortedBoundsAreSortedOnConstruction) {
  Registry registry;
  Histogram& histogram = registry.histogram("h", {100, 1, 10});
  EXPECT_EQ(histogram.bounds(), (std::vector<std::int64_t>{1, 10, 100}));
  histogram.observe(5);
  const HistogramSnapshot snap = registry.snapshot().histograms.at("h");
  EXPECT_EQ(snap.buckets, (std::vector<std::int64_t>{0, 1, 0, 0}));
}

TEST(Histogram, FirstRegistrationFixesBounds) {
  Registry registry;
  registry.histogram("h", {1, 2});
  Histogram& again = registry.histogram("h", {99});
  EXPECT_EQ(again.bounds(), (std::vector<std::int64_t>{1, 2}));
}

TEST(Span, TreeNestsAndCarriesNotes) {
  Trace trace;
  {
    Span root = trace.root("pipeline");
    root.note("seed", 42);
    {
      Span stage = root.child("restore");
      Span registry = stage.child("registry:apnic");
      registry.note("asns", 17);
      Span sanitization = registry.child("sanitization");
      sanitization.note("days_processed", 365);
    }
    Span other = root.child("taxonomy");
  }

  const TraceNode tree = trace.tree();
  EXPECT_EQ(tree.name, "pipeline");
  EXPECT_EQ(tree.note_value("seed"), 42);
  ASSERT_EQ(tree.children.size(), 2u);
  const TraceNode* restore = tree.child("restore");
  ASSERT_NE(restore, nullptr);
  const TraceNode* registry = restore->child("registry:apnic");
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->note_value("asns"), 17);
  const TraceNode* sanitization = registry->child("sanitization");
  ASSERT_NE(sanitization, nullptr);
  EXPECT_EQ(sanitization->note_value("days_processed"), 365);
  EXPECT_EQ(sanitization->note_value("absent"), 0);
  EXPECT_NE(tree.child("taxonomy"), nullptr);
  EXPECT_EQ(tree.child("nope"), nullptr);
  // All spans are finished: every node reports a non-negative wall clock.
  EXPECT_GE(tree.elapsed_ms, 0.0);
  EXPECT_GE(sanitization->elapsed_ms, 0.0);
}

TEST(Span, MovedFromAndDefaultSpansAreInert) {
  Trace trace;
  Span root = trace.root("root");
  Span moved = std::move(root);
  root.note("ignored", 1);             // moved-from: no-op
  Span inert;
  inert.note("ignored", 2);            // default-constructed: no-op
  Span child = inert.child("nothing"); // inert child of inert span
  child.note("ignored", 3);
  moved.note("kept", 4);
  moved.finish();
  moved.note("after_finish", 5);       // finished: no-op

  const TraceNode tree = trace.tree();
  EXPECT_EQ(tree.name, "root");
  EXPECT_EQ(tree.notes.size(), 1u);
  EXPECT_EQ(tree.note_value("kept"), 4);
  EXPECT_TRUE(tree.children.empty());
}

TEST(Span, WorkersMayFinishPreCreatedSpans) {
  // The pipeline's discipline: parent creates per-shard spans serially,
  // each worker notes and finishes its own.
  Trace trace;
  Span root = trace.root("root");
  constexpr int kShards = 4;
  std::vector<Span> shards;
  for (int i = 0; i < kShards; ++i)
    shards.push_back(root.child("shard:" + std::to_string(i)));
  std::vector<std::thread> workers;
  for (int i = 0; i < kShards; ++i)
    workers.emplace_back([&shards, i] {
      Span detail = shards[static_cast<std::size_t>(i)].child("work");
      detail.note("index", i);
      detail.finish();
      shards[static_cast<std::size_t>(i)].finish();
    });
  for (std::thread& worker : workers) worker.join();
  root.finish();

  const TraceNode tree = trace.tree();
  ASSERT_EQ(tree.children.size(), static_cast<std::size_t>(kShards));
  for (int i = 0; i < kShards; ++i) {
    const TraceNode* shard = tree.child("shard:" + std::to_string(i));
    ASSERT_NE(shard, nullptr);
    const TraceNode* work = shard->child("work");
    ASSERT_NE(work, nullptr);
    EXPECT_EQ(work->note_value("index"), i);
  }
}

Report sample_report() {
  Registry registry;
  registry.counter("pl_restore_days_processed{registry=\"apnic\"}").add(123);
  registry.counter("pl_restore_days_processed{registry=\"ripencc\"}").add(45);
  registry.counter("pl_plain").add(-7);  // negative survives the round-trip
  registry.gauge("pl_admin_asns").set(99);
  registry.histogram("pl_admin_duration_days", {30, 365}).observe(12);
  registry.histogram("pl_admin_duration_days", {}).observe(400);

  Trace trace;
  {
    Span root = trace.root("pipeline");
    root.note("seed", 42);
    Span stage = root.child("restore \"quoted\"\n");  // exercises escaping
    stage.note("days", 365);
  }
  return Report{trace.tree(), registry.snapshot()};
}

void expect_same_tree(const TraceNode& a, const TraceNode& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_DOUBLE_EQ(a.start_ms, b.start_ms);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
  // Note order is not preserved (the parser sorts); values must be.
  const std::map<std::string, std::int64_t> notes_a(a.notes.begin(),
                                                    a.notes.end());
  const std::map<std::string, std::int64_t> notes_b(b.notes.begin(),
                                                    b.notes.end());
  EXPECT_EQ(notes_a, notes_b);
  ASSERT_EQ(a.children.size(), b.children.size());
  for (std::size_t i = 0; i < a.children.size(); ++i)
    expect_same_tree(a.children[i], b.children[i]);
}

TEST(JsonExport, RoundTripsLosslessly) {
  const Report report = sample_report();
  const std::string json = to_json(report);
  const std::optional<Report> parsed = from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->metrics, report.metrics);
  expect_same_tree(parsed->trace, report.trace);
}

TEST(JsonExport, RejectsMalformedAndWrongSchema) {
  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(from_json("{").has_value());
  EXPECT_FALSE(from_json("{\"schema\":\"pl-obs/999\"}").has_value());
  const std::string json = to_json(sample_report());
  EXPECT_FALSE(from_json(json.substr(0, json.size() - 5)).has_value());
  EXPECT_FALSE(from_json(json + "trailing").has_value());
}

TEST(PrometheusExport, SamplesRoundTrip) {
  const Report report = sample_report();
  const std::string text = to_prometheus(report.metrics);
  const std::map<std::string, std::int64_t> samples =
      parse_prometheus_samples(text);

  EXPECT_EQ(
      samples.at("pl_restore_days_processed{registry=\"apnic\"}"), 123);
  EXPECT_EQ(
      samples.at("pl_restore_days_processed{registry=\"ripencc\"}"), 45);
  EXPECT_EQ(samples.at("pl_plain"), -7);
  EXPECT_EQ(samples.at("pl_admin_asns"), 99);
  // Histogram explodes into the cumulative triple.
  EXPECT_EQ(samples.at("pl_admin_duration_days_bucket{le=\"30\"}"), 1);
  EXPECT_EQ(samples.at("pl_admin_duration_days_bucket{le=\"365\"}"), 1);
  EXPECT_EQ(samples.at("pl_admin_duration_days_bucket{le=\"+Inf\"}"), 2);
  EXPECT_EQ(samples.at("pl_admin_duration_days_sum"), 412);
  EXPECT_EQ(samples.at("pl_admin_duration_days_count"), 2);
}

TEST(PrometheusExport, EmitsOneTypeLinePerBase) {
  const std::string text = to_prometheus(sample_report().metrics);
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE pl_restore_days_processed ", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u) << text;
}

#endif  // PL_OBS_OFF

}  // namespace
}  // namespace pl::obs
