#include <gtest/gtest.h>

#include <sstream>

#include "lifetimes/admin.hpp"
#include "lifetimes/dataset_io.hpp"
#include "lifetimes/op.hpp"
#include "lifetimes/sensitivity.hpp"
#include "util/strings.hpp"

namespace pl::lifetimes {
namespace {

using asn::Rir;
using dele::RecordState;
using dele::Status;
using restore::RestoredArchive;
using restore::StateSpan;
using util::DayInterval;
using util::make_day;

RecordState allocated(util::Day reg_date, const char* country = "DE") {
  RecordState state;
  state.status = Status::kAllocated;
  state.registration_date = reg_date;
  state.country = *asn::CountryCode::parse(country);
  state.opaque_id = 42;
  return state;
}

RecordState reserved() {
  RecordState state;
  state.status = Status::kReserved;
  return state;
}

RecordState available() {
  RecordState state;
  state.status = Status::kAvailable;
  return state;
}

/// Helper building a RestoredArchive from (rir, asn, spans) triples.
RestoredArchive make_archive(
    std::initializer_list<
        std::tuple<Rir, std::uint32_t, std::vector<StateSpan>>> entries) {
  RestoredArchive archive;
  for (std::size_t r = 0; r < asn::kRirCount; ++r)
    archive.registries[r].rir = asn::kAllRirs[r];
  for (const auto& [rir, asn_value, spans] : entries)
    archive.registries[asn::index_of(rir)].spans[asn_value] = spans;
  return archive;
}

const util::Day kEnd = make_day(2021, 3, 1);

TEST(AdminBuilder, SingleLife) {
  const auto archive = make_archive({{Rir::kRipeNcc, 100,
      {{{make_day(2010, 1, 1), make_day(2015, 6, 1)},
        allocated(make_day(2010, 1, 1))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
  const AdminLifetime& life = dataset.lifetimes[0];
  EXPECT_EQ(life.asn, asn::Asn{100});
  EXPECT_EQ(life.registry, Rir::kRipeNcc);
  EXPECT_EQ(life.registration_date, make_day(2010, 1, 1));
  EXPECT_FALSE(life.open_ended);
  EXPECT_FALSE(life.transferred);
}

TEST(AdminBuilder, OpenEndedLife) {
  const auto archive = make_archive({{Rir::kArin, 100,
      {{{make_day(2010, 1, 1), kEnd}, allocated(make_day(2010, 1, 1))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
  EXPECT_TRUE(dataset.lifetimes[0].open_ended);
}

TEST(AdminBuilder, ReservedGapSameRegDateMerges) {
  // Returned to the previous owner: one life (4.1).
  const auto reg = make_day(2010, 1, 1);
  const auto archive = make_archive({{Rir::kArin, 100,
      {{{make_day(2010, 1, 1), make_day(2012, 1, 1)}, allocated(reg)},
       {{make_day(2012, 1, 2), make_day(2012, 3, 1)}, reserved()},
       {{make_day(2012, 3, 2), make_day(2016, 1, 1)}, allocated(reg)}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
  EXPECT_EQ(dataset.lifetimes[0].days,
            (DayInterval{make_day(2010, 1, 1), make_day(2016, 1, 1)}));
}

TEST(AdminBuilder, ReservedGapNewRegDateSplits) {
  // Re-allocated to someone else: two lives.
  const auto archive = make_archive({{Rir::kArin, 100,
      {{{make_day(2010, 1, 1), make_day(2012, 1, 1)},
        allocated(make_day(2010, 1, 1))},
       {{make_day(2012, 1, 2), make_day(2012, 6, 1)}, reserved()},
       {{make_day(2012, 6, 2), make_day(2012, 12, 1)}, available()},
       {{make_day(2013, 1, 1), make_day(2016, 1, 1)},
        allocated(make_day(2013, 1, 1))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 2u);
  EXPECT_EQ(dataset.lifetimes[0].registration_date, make_day(2010, 1, 1));
  EXPECT_EQ(dataset.lifetimes[1].registration_date, make_day(2013, 1, 1));
}

TEST(AdminBuilder, AfrinicExceptionMergesDespiteNewDate) {
  // Reserved (never available) then re-allocated with a new date: AfriNIC
  // re-allocated to the same holder — one life.
  const auto archive = make_archive({{Rir::kAfrinic, 100,
      {{{make_day(2010, 1, 1), make_day(2012, 1, 1)},
        allocated(make_day(2010, 1, 1))},
       {{make_day(2012, 1, 2), make_day(2012, 3, 1)}, reserved()},
       {{make_day(2012, 3, 2), make_day(2016, 1, 1)},
        allocated(make_day(2012, 3, 2))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
}

TEST(AdminBuilder, NonAfrinicReservedNewDateSplits) {
  // Identical shape under ARIN: the exception does not apply -> two lives.
  const auto archive = make_archive({{Rir::kArin, 100,
      {{{make_day(2010, 1, 1), make_day(2012, 1, 1)},
        allocated(make_day(2010, 1, 1))},
       {{make_day(2012, 1, 2), make_day(2012, 3, 1)}, reserved()},
       {{make_day(2012, 3, 2), make_day(2016, 1, 1)},
        allocated(make_day(2012, 3, 2))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  EXPECT_EQ(dataset.lifetimes.size(), 2u);
}

TEST(AdminBuilder, RegDateCorrectionWhileAllocatedMerges) {
  // Adjacent allocated spans with different dates: administrative
  // correction, one life keeping the earliest date.
  const auto archive = make_archive({{Rir::kLacnic, 100,
      {{{make_day(2010, 1, 1), make_day(2013, 1, 1)},
        allocated(make_day(2010, 1, 1))},
       {{make_day(2013, 1, 2), make_day(2016, 1, 1)},
        allocated(make_day(2009, 12, 20))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
  EXPECT_EQ(dataset.lifetimes[0].registration_date, make_day(2009, 12, 20));
}

TEST(AdminBuilder, GapFreeTransferMerges) {
  const auto reg = make_day(2008, 5, 5);
  const auto archive = make_archive(
      {{Rir::kArin, 100,
        {{{make_day(2008, 5, 5), make_day(2013, 1, 1)}, allocated(reg)}}},
       {Rir::kRipeNcc, 100,
        {{{make_day(2013, 1, 2), make_day(2018, 1, 1)}, allocated(reg)}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 1u);
  EXPECT_TRUE(dataset.lifetimes[0].transferred);
  EXPECT_EQ(dataset.lifetimes[0].registry, Rir::kArin);
  EXPECT_EQ(dataset.lifetimes[0].days.last, make_day(2018, 1, 1));
}

TEST(AdminBuilder, GappedTransferSplits) {
  const auto archive = make_archive(
      {{Rir::kArin, 100,
        {{{make_day(2008, 5, 5), make_day(2013, 1, 1)},
          allocated(make_day(2008, 5, 5))}}},
       {Rir::kRipeNcc, 100,
        {{{make_day(2013, 3, 1), make_day(2018, 1, 1)},
          allocated(make_day(2013, 3, 1))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  EXPECT_EQ(dataset.lifetimes.size(), 2u);
}

TEST(AdminBuilder, BackdatesFirstFileLivesToRegDate) {
  // Two ASNs: one present from the registry's first observed day with an
  // old registration date (backdated), one born later (not backdated).
  const auto archive = make_archive(
      {{Rir::kRipeNcc, 100,
        {{{make_day(2003, 11, 26), make_day(2018, 1, 1)},
          allocated(make_day(1995, 2, 1))}}},
       {Rir::kRipeNcc, 200,
        {{{make_day(2010, 6, 1), make_day(2018, 1, 1)},
          allocated(make_day(2010, 5, 31))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(dataset.lifetimes.size(), 2u);
  EXPECT_EQ(dataset.lifetimes[0].days.first, make_day(1995, 2, 1));
  EXPECT_EQ(dataset.lifetimes[1].days.first, make_day(2010, 6, 1));
}

TEST(AdminBuilder, IndexGroupsByAsn) {
  const auto archive = make_archive(
      {{Rir::kArin, 100,
        {{{make_day(2005, 1, 1), make_day(2010, 1, 1)},
          allocated(make_day(2005, 1, 1))},
         {{make_day(2012, 1, 1), make_day(2015, 1, 1)},
          allocated(make_day(2012, 1, 1))}}},
       {Rir::kApnic, 300,
        {{{make_day(2007, 1, 1), kEnd}, allocated(make_day(2007, 1, 1))}}}});
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);
  EXPECT_EQ(dataset.lifetimes.size(), 3u);
  EXPECT_EQ(dataset.asn_count(), 2u);
  EXPECT_EQ(dataset.by_asn.at(100).size(), 2u);
  // Lifetimes sorted by (asn, start).
  EXPECT_LE(dataset.lifetimes[0].days.first, dataset.lifetimes[1].days.first);
}

TEST(OpBuilder, TimeoutSplitsAndMerges) {
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{7}, DayInterval{100, 120});
  activity.mark_active(asn::Asn{7}, DayInterval{130, 140});   // gap 9
  activity.mark_active(asn::Asn{7}, DayInterval{400, 420});   // gap 259
  const OpDataset at30 = build_op_lifetimes(activity, 30);
  ASSERT_EQ(at30.lifetimes.size(), 2u);
  EXPECT_EQ(at30.lifetimes[0].days, (DayInterval{100, 140}));
  EXPECT_EQ(at30.lifetimes[1].days, (DayInterval{400, 420}));

  const OpDataset at5 = build_op_lifetimes(activity, 5);
  EXPECT_EQ(at5.lifetimes.size(), 3u);

  const OpDataset at300 = build_op_lifetimes(activity, 300);
  EXPECT_EQ(at300.lifetimes.size(), 1u);
}

TEST(Sensitivity, CurvesAreMonotone) {
  bgp::ActivityTable activity;
  // Three ASNs with gaps 5, 40, 400.
  activity.mark_active(asn::Asn{1}, DayInterval{0, 10});
  activity.mark_active(asn::Asn{1}, DayInterval{16, 30});
  activity.mark_active(asn::Asn{2}, DayInterval{0, 10});
  activity.mark_active(asn::Asn{2}, DayInterval{51, 80});
  activity.mark_active(asn::Asn{3}, DayInterval{0, 10});
  activity.mark_active(asn::Asn{3}, DayInterval{411, 500});

  AdminDataset admin;
  for (std::uint32_t a : {1u, 2u, 3u}) {
    AdminLifetime life;
    life.asn = asn::Asn{a};
    life.days = DayInterval{0, 600};
    admin.lifetimes.push_back(life);
  }
  admin.index();

  const SensitivityCurves curves = analyze_timeout_sensitivity(
      activity, admin, {1, 5, 40, 400});
  ASSERT_EQ(curves.gap_cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(curves.gap_cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(curves.gap_cdf[1], 1.0 / 3);
  EXPECT_DOUBLE_EQ(curves.gap_cdf[2], 2.0 / 3);
  EXPECT_DOUBLE_EQ(curves.gap_cdf[3], 1.0);
  // <=1 op life fraction at the same thresholds.
  EXPECT_DOUBLE_EQ(curves.one_or_less_cdf[1], 1.0 / 3);
  EXPECT_DOUBLE_EQ(curves.one_or_less_cdf[3], 1.0);
  for (std::size_t i = 1; i < curves.gap_cdf.size(); ++i) {
    EXPECT_GE(curves.gap_cdf[i], curves.gap_cdf[i - 1]);
    EXPECT_GE(curves.one_or_less_cdf[i], curves.one_or_less_cdf[i - 1]);
  }
}

TEST(DatasetIo, JsonMatchesListingOne) {
  AdminLifetime life;
  life.asn = asn::Asn{205334};
  life.registration_date = make_day(2017, 9, 20);
  life.days = DayInterval{make_day(2017, 9, 20), make_day(2021, 2, 11)};
  life.registry = Rir::kRipeNcc;
  EXPECT_EQ(admin_record_json(life),
            "{\"ASN\":205334,\"regDate\":\"2017-09-20\","
            "\"startdate\":\"2017-09-20\",\"enddate\":\"2021-02-11\","
            "\"status\":\"allocated\",\"registry\":\"ripencc\"}");

  OpLifetime op;
  op.asn = asn::Asn{205334};
  op.days = DayInterval{make_day(2017, 10, 5), make_day(2017, 10, 23)};
  EXPECT_EQ(op_record_json(op),
            "{\"ASN\":205334,\"startdate\":\"2017-10-05\","
            "\"enddate\":\"2017-10-23\"}");
}

TEST(DatasetIo, CsvHasHeaderAndRows) {
  AdminDataset dataset;
  AdminLifetime life;
  life.asn = asn::Asn{1};
  life.registration_date = make_day(2000, 1, 1);
  life.days = DayInterval{make_day(2000, 1, 1), make_day(2001, 1, 1)};
  dataset.lifetimes.push_back(life);
  dataset.index();
  std::ostringstream out;
  ASSERT_TRUE(save_admin_csv(out, dataset).ok());
  const std::string text = out.str();
  const auto lines = util::lines(text);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("reg_date"), std::string_view::npos);
  EXPECT_NE(lines[1].find("2000-01-01"), std::string_view::npos);

  OpDataset op;
  op.lifetimes.push_back(
      OpLifetime{asn::Asn{1}, DayInterval{make_day(2000, 1, 2),
                                          make_day(2000, 2, 2)}});
  std::ostringstream op_out;
  ASSERT_TRUE(save_op_csv(op_out, op).ok());
  const std::string op_text = op_out.str();
  const auto op_lines = util::lines(op_text);
  ASSERT_EQ(op_lines.size(), 2u);
  EXPECT_NE(op_lines[0].find("start_date"), std::string_view::npos);
  EXPECT_NE(op_lines[1].find("2000-01-02"), std::string_view::npos);
}

}  // namespace
}  // namespace pl::lifetimes
