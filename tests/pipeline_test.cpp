// The top-level facade: one call runs the paper's whole Fig. 1 pipeline.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"

namespace pl::pipeline {
namespace {

TEST(Pipeline, RunSimulatedProducesCoherentResult) {
  Config config;
  config.seed = 99;
  config.scale = 0.02;
  const Result result = run_simulated(config);

  EXPECT_GT(result.truth.lives.size(), 500u);
  EXPECT_GT(result.admin.lifetimes.size(), 500u);
  EXPECT_GT(result.op.lifetimes.size(), 500u);
  EXPECT_EQ(result.taxonomy.total_admin(),
            static_cast<std::int64_t>(result.admin.lifetimes.size()));
  EXPECT_EQ(result.taxonomy.total_op(),
            static_cast<std::int64_t>(result.op.lifetimes.size()));
  // All four categories materialize even at small scale.
  EXPECT_GT(result.taxonomy.admin_counts[0], 0);
  EXPECT_GT(result.taxonomy.admin_counts[1], 0);
  EXPECT_GT(result.taxonomy.admin_counts[2], 0);
  EXPECT_GT(result.taxonomy.op_counts[3], 0);
}

TEST(Pipeline, TimeoutKnobChangesOpDataset) {
  Config config;
  config.seed = 99;
  config.scale = 0.01;
  config.op_timeout_days = 5;
  const Result strict = run_simulated(config);
  config.op_timeout_days = 300;
  const Result loose = run_simulated(config);
  EXPECT_GT(strict.op.lifetimes.size(), loose.op.lifetimes.size());
  // The admin dimension is independent of the op timeout.
  EXPECT_EQ(strict.admin.lifetimes.size(), loose.admin.lifetimes.size());
}

TEST(Pipeline, DeterministicUnderSeed) {
  Config config;
  config.seed = 7;
  config.scale = 0.01;
  const Result a = run_simulated(config);
  const Result b = run_simulated(config);
  EXPECT_EQ(a.admin.lifetimes.size(), b.admin.lifetimes.size());
  EXPECT_EQ(a.taxonomy.admin_counts, b.taxonomy.admin_counts);
  config.seed = 8;
  const Result c = run_simulated(config);
  EXPECT_NE(a.admin.lifetimes.size(), c.admin.lifetimes.size());
}

}  // namespace
}  // namespace pl::pipeline
