// The top-level facade: one call runs the paper's whole Fig. 1 pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pipeline/pipeline.hpp"

namespace pl::pipeline {
namespace {

TEST(Pipeline, RunSimulatedProducesCoherentResult) {
  Config config;
  config.seed = 99;
  config.scale = 0.02;
  const Result result = run_simulated(config);

  EXPECT_GT(result.truth.lives.size(), 500u);
  EXPECT_GT(result.admin.lifetimes.size(), 500u);
  EXPECT_GT(result.op.lifetimes.size(), 500u);
  EXPECT_EQ(result.taxonomy.total_admin(),
            static_cast<std::int64_t>(result.admin.lifetimes.size()));
  EXPECT_EQ(result.taxonomy.total_op(),
            static_cast<std::int64_t>(result.op.lifetimes.size()));
  // All four categories materialize even at small scale.
  EXPECT_GT(result.taxonomy.admin_counts[0], 0);
  EXPECT_GT(result.taxonomy.admin_counts[1], 0);
  EXPECT_GT(result.taxonomy.admin_counts[2], 0);
  EXPECT_GT(result.taxonomy.op_counts[3], 0);
}

TEST(Pipeline, TimeoutKnobChangesOpDataset) {
  Config config;
  config.seed = 99;
  config.scale = 0.01;
  config.op_timeout_days = 5;
  const Result strict = run_simulated(config);
  config.op_timeout_days = 300;
  const Result loose = run_simulated(config);
  EXPECT_GT(strict.op.lifetimes.size(), loose.op.lifetimes.size());
  // The admin dimension is independent of the op timeout.
  EXPECT_EQ(strict.admin.lifetimes.size(), loose.admin.lifetimes.size());
}

TEST(Pipeline, DeterministicUnderSeed) {
  Config config;
  config.seed = 7;
  config.scale = 0.01;
  const Result a = run_simulated(config);
  const Result b = run_simulated(config);
  EXPECT_EQ(a.admin.lifetimes.size(), b.admin.lifetimes.size());
  EXPECT_EQ(a.taxonomy.admin_counts, b.taxonomy.admin_counts);
  config.seed = 8;
  const Result c = run_simulated(config);
  EXPECT_NE(a.admin.lifetimes.size(), c.admin.lifetimes.size());
}

#ifndef PL_OBS_OFF
TEST(Pipeline, TraceCoversEveryStageWithSubstages) {
  Config config;
  config.seed = 99;
  config.scale = 0.02;
  const Result result = run_simulated(config);
  const obs::TraceNode& trace = result.report.trace;

  EXPECT_EQ(trace.name, "pipeline");
  EXPECT_EQ(trace.note_value("seed"), 99);
  // All seven Fig. 1 stages appear as direct children, in stage order.
  const char* stages[] = {"world", "op_world", "render", "restore",
                          "admin", "op",       "taxonomy"};
  ASSERT_EQ(trace.children.size(), std::size(stages));
  for (std::size_t s = 0; s < std::size(stages); ++s)
    EXPECT_EQ(trace.children[s].name, stages[s]) << "stage " << s;

  // Restore fans out per registry (depth 2) with sanitization/ingest
  // ledgers below (depth 3), plus the step-vi reconcile substage.
  const obs::TraceNode* restore = trace.child("restore");
  ASSERT_NE(restore, nullptr);
  for (const asn::Rir rir : asn::kAllRirs) {
    const obs::TraceNode* registry =
        restore->child("registry:" + std::string(asn::file_token(rir)));
    ASSERT_NE(registry, nullptr) << asn::file_token(rir);
    const obs::TraceNode* sanitization = registry->child("sanitization");
    ASSERT_NE(sanitization, nullptr);
    EXPECT_GT(sanitization->note_value("days_processed"), 0);
    EXPECT_NE(registry->child("ingest"), nullptr);
    // The note is the pre-reconcile census (step vi later removes mistaken
    // spans), so it matches the per-registry counter, not the final size.
    EXPECT_EQ(registry->note_value("asns"),
              result.report.metrics.counter_value(
                  "pl_restore_asns{registry=\"" +
                  std::string(asn::file_token(rir)) + "\"}"));
    EXPECT_GE(registry->note_value("asns"),
              static_cast<std::int64_t>(
                  result.restored.registry(rir).spans.size()));
  }
  EXPECT_NE(restore->child("reconcile"), nullptr);

  // Stage ledgers agree with the stage outputs they summarize.
  EXPECT_EQ(trace.child("admin")->note_value("lifetimes"),
            static_cast<std::int64_t>(result.admin.lifetimes.size()));
  EXPECT_EQ(trace.child("op")->note_value("lifetimes"),
            static_cast<std::int64_t>(result.op.lifetimes.size()));
  const obs::TraceNode* taxonomy = trace.child("taxonomy");
  ASSERT_NE(taxonomy, nullptr);
  const obs::TraceNode* admin_classes = taxonomy->child("admin_classes");
  ASSERT_NE(admin_classes, nullptr);
  EXPECT_EQ(admin_classes->note_value("unused"),
            result.taxonomy.admin_counts[2]);

  // StageTimings is a thin view over the same tree.
  EXPECT_DOUBLE_EQ(result.timings.total_ms, trace.elapsed_ms);
  EXPECT_DOUBLE_EQ(result.timings.restore_ms, restore->elapsed_ms);
  const StageTimings reprojected = timings_from_trace(trace);
  EXPECT_DOUBLE_EQ(reprojected.admin_ms, result.timings.admin_ms);
}

TEST(Pipeline, MetricsMirrorStageOutputs) {
  Config config;
  config.seed = 99;
  config.scale = 0.02;
  const Result result = run_simulated(config);
  const obs::Snapshot& metrics = result.report.metrics;

  EXPECT_EQ(metrics.counter_value("pl_admin_lifetimes"),
            static_cast<std::int64_t>(result.admin.lifetimes.size()));
  EXPECT_EQ(metrics.counter_value("pl_op_lifetimes"),
            static_cast<std::int64_t>(result.op.lifetimes.size()));
  EXPECT_GT(metrics.counter_sum("pl_restore_days_processed"), 0);
  EXPECT_EQ(metrics.counter_value("pl_taxonomy_admin{class=\"unused\"}"),
            result.taxonomy.admin_counts[2]);
  EXPECT_EQ(
      metrics.counter_value("pl_taxonomy_op{class=\"outside_delegation\"}"),
      result.taxonomy.op_counts[3]);
  EXPECT_EQ(metrics.gauges.at("pl_admin_asns"),
            static_cast<std::int64_t>(result.admin.asn_count()));
  // No chaos: the fault books stay out of the registry entirely.
  EXPECT_EQ(metrics.counter_sum("pl_fault_days_delivered"), 0);
}

TEST(Pipeline, ReportExportsRoundTripAndReachDisk) {
  const std::string trace_path =
      testing::TempDir() + "pl_pipeline_trace_test.json";
  const std::string prom_path =
      testing::TempDir() + "pl_pipeline_prom_test.txt";
  Config config;
  config.seed = 7;
  config.scale = 0.01;
  config.trace_path = trace_path;
  config.prom_path = prom_path;
  const Result result = run_simulated(config);

  // In-memory round-trip.
  const std::optional<obs::Report> reparsed =
      obs::from_json(obs::to_json(result.report));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->metrics, result.report.metrics);
  EXPECT_EQ(reparsed->trace.name, result.report.trace.name);
  EXPECT_EQ(reparsed->trace.children.size(),
            result.report.trace.children.size());

  // The files the Config asked for exist and carry the same report.
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << trace_path;
  std::stringstream trace_json;
  trace_json << trace_in.rdbuf();
  const std::optional<obs::Report> from_disk =
      obs::from_json(trace_json.str());
  ASSERT_TRUE(from_disk.has_value());
  EXPECT_EQ(from_disk->metrics, result.report.metrics);

  std::ifstream prom_in(prom_path);
  ASSERT_TRUE(prom_in.good()) << prom_path;
  std::stringstream prom_text;
  prom_text << prom_in.rdbuf();
  const auto samples = obs::parse_prometheus_samples(prom_text.str());
  EXPECT_EQ(samples.at("pl_admin_lifetimes"),
            result.report.metrics.counter_value("pl_admin_lifetimes"));

  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());
}
#endif  // PL_OBS_OFF

}  // namespace
}  // namespace pl::pipeline
