#include <gtest/gtest.h>

#include "joint/detector.hpp"
#include "joint/rpki.hpp"

namespace pl::joint {
namespace {

using bgp::Prefix;

TEST(Rpki, ValidInvalidUnknown) {
  RoaTable table;
  table.add(Roa{*Prefix::parse("10.0.0.0/16"), asn::Asn{65001}, 24});

  // Exact prefix, right origin.
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/16"), asn::Asn{65001}),
            RpkiValidity::kValid);
  // Sub-prefix within max_length.
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.7.0/24"), asn::Asn{65001}),
            RpkiValidity::kValid);
  // Wrong origin.
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/16"), asn::Asn{666}),
            RpkiValidity::kInvalid);
  // No covering ROA.
  EXPECT_EQ(table.validate(*Prefix::parse("11.0.0.0/16"), asn::Asn{65001}),
            RpkiValidity::kUnknown);
  EXPECT_EQ(table.size(), 1u);
}

TEST(Rpki, MaxLengthEnforced) {
  RoaTable table;
  table.add(Roa{*Prefix::parse("10.0.0.0/16"), asn::Asn{65001}, 20});
  // /24 exceeds max_length 20: invalid even for the right origin (the
  // classic forged-more-specific protection).
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.7.0/24"), asn::Asn{65001}),
            RpkiValidity::kInvalid);
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.16.0/20"), asn::Asn{65001}),
            RpkiValidity::kValid);
}

TEST(Rpki, DefaultMaxLengthIsPrefixLength) {
  RoaTable table;
  table.add(Roa{*Prefix::parse("10.0.0.0/16"), asn::Asn{65001}, 0});
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/16"), asn::Asn{65001}),
            RpkiValidity::kValid);
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/17"), asn::Asn{65001}),
            RpkiValidity::kInvalid);
}

TEST(Rpki, MultipleRoasAnyValidWins) {
  RoaTable table;
  table.add(Roa{*Prefix::parse("10.0.0.0/16"), asn::Asn{1}, 24});
  table.add(Roa{*Prefix::parse("10.0.0.0/16"), asn::Asn{2}, 24});
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.1.0/24"), asn::Asn{2}),
            RpkiValidity::kValid);
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.1.0/24"), asn::Asn{3}),
            RpkiValidity::kInvalid);
}

TEST(Rpki, StatsTally) {
  RpkiStats stats;
  stats.record(RpkiValidity::kValid);
  stats.record(RpkiValidity::kInvalid);
  stats.record(RpkiValidity::kInvalid);
  stats.record(RpkiValidity::kUnknown);
  EXPECT_EQ(stats.valid, 1);
  EXPECT_EQ(stats.invalid, 2);
  EXPECT_EQ(stats.unknown, 1);
  EXPECT_EQ(stats.total(), 4);
  EXPECT_EQ(rpki_validity_name(RpkiValidity::kInvalid), "invalid");
}

TEST(Detector, ScoreOrdersObviousCases) {
  const SquatScorer scorer;

  SquatFeatures squat;
  squat.dormancy_days = 3000;
  squat.relative_duration = 0.01;
  squat.prefix_volume = 60;
  squat.historical_volume = 2;
  squat.foreign_prefixes = true;
  squat.factory_upstream = true;

  SquatFeatures benign;
  benign.dormancy_days = 1100;
  benign.relative_duration = 0.04;
  benign.prefix_volume = 2;
  benign.historical_volume = 2;

  SquatFeatures canonical;
  canonical.dormancy_days = 35;
  canonical.relative_duration = 0.95;
  canonical.prefix_volume = 3;
  canonical.historical_volume = 3;

  EXPECT_GT(scorer.score(squat), scorer.score(benign));
  EXPECT_GT(scorer.score(benign), scorer.score(canonical));
}

TEST(Detector, FeatureWeightsMatter) {
  SquatFeatures features;
  features.dormancy_days = 2000;
  features.foreign_prefixes = true;

  ScorerConfig no_foreign;
  no_foreign.w_foreign_prefixes = 0;
  EXPECT_LT(SquatScorer(no_foreign).score(features),
            SquatScorer().score(features));
}

std::vector<ScoredCandidate> make_ranked(
    std::initializer_list<std::pair<double, bool>> entries) {
  std::vector<ScoredCandidate> out;
  std::uint32_t next_asn = 1;
  for (const auto& [score, malicious] : entries) {
    ScoredCandidate candidate;
    candidate.asn = asn::Asn{next_asn++};
    candidate.score = score;
    candidate.malicious = malicious;
    out.push_back(candidate);
  }
  return out;
}

TEST(Detector, PrecisionRecallCurve) {
  // Perfect ranking: both positives on top.
  const auto perfect = make_ranked(
      {{10, true}, {9, true}, {2, false}, {1, false}});
  const auto curve = precision_recall(perfect, 4);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
  EXPECT_DOUBLE_EQ(average_precision(perfect), 1.0);

  // Worst ranking: positives at the bottom.
  const auto worst = make_ranked(
      {{10, false}, {9, false}, {2, true}, {1, true}});
  EXPECT_LT(average_precision(worst), 0.5);

  // No positives: empty curve, zero AP.
  const auto none = make_ranked({{10, false}, {9, false}});
  EXPECT_TRUE(precision_recall(none).empty());
  EXPECT_DOUBLE_EQ(average_precision(none), 0.0);
}

TEST(Detector, AveragePrecisionMonotoneInRankQuality) {
  const auto good = make_ranked(
      {{10, true}, {9, false}, {8, true}, {7, false}, {6, false}});
  const auto bad = make_ranked(
      {{10, false}, {9, false}, {8, true}, {7, false}, {6, true}});
  EXPECT_GT(average_precision(good), average_precision(bad));
}

}  // namespace
}  // namespace pl::joint
