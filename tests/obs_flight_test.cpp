// Flight recorder + per-query tracing suite (DESIGN.md §14).
//
// Covers the three layers of the observability tentpole:
//   * the ring mechanics — wrap/overwrite accounting, multi-threaded record
//     with deterministic attribution ordering;
//   * the pl-flight/1 file format — dump/load round trip, truncation and
//     bit-flip damage must salvage what survives as kDataLoss and NEVER
//     crash;
//   * the serving integration — every QueryService answer is attributable
//     via its deterministic RequestId, with cache/shard/status events
//     identical across cache on/off (and across PL_THREADS settings: the
//     _serial/_mt ctest variants rerun this binary under both extremes and
//     the golden RequestId assertions must hold in each).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"

namespace pl::obs {
namespace {

FlightEvent make_event(std::uint64_t request, EventKind kind,
                       std::uint32_t detail, std::int64_t a) {
  return FlightEvent{request, static_cast<std::uint32_t>(kind), detail, a, 0};
}

// Process-unique temp paths: the _serial/_mt ctest variants run this same
// binary concurrently under ctest -j, and a shared fixed filename would let
// one variant truncate a file another is mid-read on.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FlightRing, WrapOverwritesOldestAndCountsExactly) {
  FlightRecorder recorder(4);
  for (std::int64_t i = 0; i < 10; ++i)
    recorder.record(make_event(100 + i, EventKind::kLookup, 0, i));

  if constexpr (kEnabled) {
    // Single-threaded: every record lands in one ring of capacity 4.
    EXPECT_EQ(recorder.total_recorded(), 10u);
    EXPECT_EQ(recorder.overwritten(), 6u);
    const std::vector<FlightEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    // The retained window is the most recent 4, in arrival order.
    for (std::size_t i = 0; i < events.size(); ++i)
      EXPECT_EQ(events[i].a, static_cast<std::int64_t>(6 + i));
  } else {
    EXPECT_EQ(recorder.total_recorded(), 0u);
    EXPECT_TRUE(recorder.events().empty());
  }
}

TEST(FlightRing, ConcurrentRecordLosesNothingBelowCapacity) {
  // 4 threads x 64 events, capacity far above the per-ring worst case:
  // every event must be retained, and attribution() must be bit-identical
  // to the same events recorded serially — the determinism contract.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  FlightRecorder concurrent(1024);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&concurrent, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const RequestId id = derive_request_id(
            kQueryStream, static_cast<std::uint64_t>(t),
            static_cast<std::uint64_t>(i));
        concurrent.record(
            make_event(id.value, EventKind::kAlive,
                       query_detail(kCacheNone, 0, 0, true), t * 1000 + i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  FlightRecorder serial(1024);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      const RequestId id = derive_request_id(
          kQueryStream, static_cast<std::uint64_t>(t),
          static_cast<std::uint64_t>(i));
      serial.record(make_event(id.value, EventKind::kAlive,
                               query_detail(kCacheNone, 0, 0, true),
                               t * 1000 + i));
    }

  if constexpr (kEnabled) {
    EXPECT_EQ(concurrent.total_recorded(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(concurrent.overwritten(), 0u);
    EXPECT_EQ(concurrent.attribution(), serial.attribution());
    // The view honours the documented ordering contract, not arrival order.
    const std::vector<FlightEvent> view = concurrent.attribution();
    EXPECT_TRUE(std::is_sorted(view.begin(), view.end(), attribution_less));
  } else {
    EXPECT_TRUE(concurrent.attribution().empty());
  }
}

TEST(FlightIo, DumpLoadRoundTripsExactly) {
  const std::string path = temp_path("flight_roundtrip.plflight");
  const std::vector<FlightEvent> events = {
      {derive_request_id(kQueryStream, 0, 0).value,
       static_cast<std::uint32_t>(EventKind::kLookup),
       query_detail(kCacheMiss, 5, 0, true), 40, 0},
      {derive_request_id(kQueryStream, 1, 0).value,
       static_cast<std::uint32_t>(EventKind::kAlive),
       query_detail(kCacheHit, 2, 0, false), 41, 1},
      {0, static_cast<std::uint32_t>(EventKind::kCrash), 0xDEADBEEF, 42, 2},
  };
  ASSERT_EQ(write_flight_events(path, events, 17, 3), FlightIoStatus::kOk);

  const FlightRead read = read_flight(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.events, events);
  EXPECT_EQ(read.total_recorded, 17u);
  EXPECT_EQ(read.overwritten, 3u);

  const std::string text = render_flight_text(read);
  EXPECT_NE(text.find("lookup"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightIo, RecorderDumpIsReadableInEveryBuildMode) {
  FlightRecorder recorder;
  recorder.record(make_event(9, EventKind::kCensus, 0, 123));
  const std::string path = temp_path("flight_recorder_dump.plflight");
  ASSERT_EQ(write_flight(path, recorder), FlightIoStatus::kOk);
  const FlightRead read = read_flight(path);
  ASSERT_TRUE(read.ok());
  if constexpr (kEnabled) {
    ASSERT_EQ(read.events.size(), 1u);
    EXPECT_EQ(read.events[0].a, 123);
  } else {
    EXPECT_TRUE(read.events.empty());  // valid zero-event dump
  }
  std::remove(path.c_str());
}

TEST(FlightIo, MissingFileIsNotFound) {
  const FlightRead read = read_flight(temp_path("no_such.plflight"));
  EXPECT_EQ(read.status, FlightIoStatus::kNotFound);
  EXPECT_TRUE(read.events.empty());
}

TEST(FlightIo, EveryTruncationSalvagesAWholeEventPrefixAndNeverCrashes) {
  const std::string path = temp_path("flight_truncate.plflight");
  std::vector<FlightEvent> events;
  for (std::int64_t i = 0; i < 5; ++i)
    events.push_back(make_event(200 + i, EventKind::kScan, 0, i));
  ASSERT_EQ(write_flight_events(path, events, 5, 0), FlightIoStatus::kOk);
  const std::string intact = slurp(path);

  for (std::size_t keep = 0; keep < intact.size(); ++keep) {
    spill(path, intact.substr(0, keep));
    const FlightRead read = read_flight(path);
    EXPECT_NE(read.status, FlightIoStatus::kOk)
        << "truncation to " << keep << " bytes went unnoticed";
    EXPECT_LE(read.events.size(), events.size());
    for (std::size_t i = 0; i < read.events.size(); ++i)
      EXPECT_EQ(read.events[i], events[i])
          << "salvage at " << keep << " bytes is not a prefix";
  }
  std::remove(path.c_str());
}

TEST(FlightIo, EveryBitFlipIsDataLossNeverACrash) {
  const std::string path = temp_path("flight_bitflip.plflight");
  const std::vector<FlightEvent> events = {
      make_event(300, EventKind::kCheckpoint, 0, 5),
      make_event(301, EventKind::kQuarantine, 7, 6),
  };
  ASSERT_EQ(write_flight_events(path, events, 2, 0), FlightIoStatus::kOk);
  const std::string intact = slurp(path);

  for (std::size_t at = 0; at < intact.size(); ++at) {
    std::string damaged = intact;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
    spill(path, damaged);
    const FlightRead read = read_flight(path);
    // CRC32 detects any single-byte flip in the payload; flips in the
    // header fail the frame checks. Either way the reader reports damage
    // (and salvages whole events) instead of trusting the bytes.
    EXPECT_EQ(read.status, FlightIoStatus::kDataLoss)
        << "bit flip at byte " << at << " went unnoticed";
    EXPECT_LE(read.events.size(),
              events.size() + 1);  // a flipped count can over-promise
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serving integration: attributable queries.

serve::Snapshot small_snapshot() {
  pipeline::Config config;
  config.seed = 77;
  config.scale = 0.01;
  const pipeline::Result result = pipeline::run_simulated(config);
  return serve::Snapshot::build(result.restored, result.op_world.activity,
                                result.truth.archive_end);
}

/// The full query workload both services run: points, batches, census,
/// scan. Returns the ASNs used so expectations can be derived.
std::vector<asn::Asn> run_workload(serve::QueryService& service) {
  std::vector<asn::Asn> asns;
  for (std::uint32_t v = 1; v <= 8; ++v) asns.push_back(asn::Asn{v * 1000});
  for (const asn::Asn asn : asns) service.lookup(asn);
  service.lookup_batch(asns);
  service.lookup_batch(asns);  // second pass: hits where caching is on
  const util::Day day = service.snapshot().archive_end();
  for (const asn::Asn asn : asns) service.alive_on(asn, day);
  service.alive_on_batch(asns, day);
  service.census(day);
  serve::ScanQuery scan;
  scan.first = asn::Asn{0};
  scan.last = asn::Asn{50000};
  scan.limit = 10;
  service.scan(scan);
  return asns;
}

TEST(QueryAttribution, EveryQueryIsAttributableAndCacheInvariant) {
  const serve::Snapshot snapshot = small_snapshot();

  serve::QueryConfig cached;
  cached.enable_cache = true;
  serve::QueryService with_cache(snapshot, cached);

  serve::QueryConfig uncached;
  uncached.enable_cache = false;
  serve::QueryService without_cache(snapshot, uncached);

  run_workload(with_cache);
  run_workload(without_cache);

  std::vector<FlightEvent> a = with_cache.flight().attribution();
  std::vector<FlightEvent> b = without_cache.flight().attribution();

  if constexpr (!kEnabled) {
    EXPECT_TRUE(a.empty());
    EXPECT_TRUE(b.empty());
    return;
  }

  // One event per query answer, no overwrites at this volume.
  EXPECT_EQ(with_cache.flight().overwritten(), 0u);
  ASSERT_EQ(a.size(), b.size());

  // Masking the cache/shard bits, the two timelines are bit-identical:
  // what was answered (and whether it was found) cannot depend on caching.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request, b[i].request);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].detail & kQueryDetailCacheMask,
              b[i].detail & kQueryDetailCacheMask)
        << "status/found bits diverged at attribution index " << i;
  }

  // The cached run must actually exercise the cache: the second identical
  // batch is all hits, the uncached run records kCacheNone everywhere.
  const auto cache_of = [](const FlightEvent& event) {
    return detail_cache(event.detail);
  };
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), [&](const FlightEvent& e) {
    return cache_of(e) == kCacheHit;
  }));
  EXPECT_TRUE(std::all_of(b.begin(), b.end(), [&](const FlightEvent& e) {
    return e.kind != static_cast<std::uint32_t>(EventKind::kLookup) ||
           cache_of(e) == kCacheNone;
  }));

  // Golden request-id check: the very first lookup of the run is sequence
  // 0, item 0 on the query stream — reproducible from the call order alone,
  // under any PL_THREADS setting (the _serial/_mt variants rerun this).
  const std::uint64_t first_id = derive_request_id(kQueryStream, 0, 0).value;
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), [&](const FlightEvent& e) {
    return e.request == first_id;
  }));

  // Every event is attributable: a nonzero request id on every query event.
  for (const FlightEvent& event : a)
    EXPECT_NE(event.request, 0u);
}

TEST(QueryAttribution, BatchItemsGetDistinctRequestIds) {
  const serve::Snapshot snapshot = small_snapshot();
  serve::QueryService service(snapshot, {});
  std::vector<asn::Asn> asns;
  for (std::uint32_t v = 1; v <= 16; ++v) asns.push_back(asn::Asn{v * 500});
  service.lookup_batch(asns);

  if constexpr (!kEnabled) {
    EXPECT_TRUE(service.flight().events().empty());
    return;
  }
  const std::vector<FlightEvent> events = service.flight().events();
  ASSERT_EQ(events.size(), asns.size());
  std::set<std::uint64_t> ids;
  for (const FlightEvent& event : events) ids.insert(event.request);
  EXPECT_EQ(ids.size(), asns.size()) << "request ids collide within a batch";
  // And they are exactly the derived ids for sequence 0, items 0..15.
  for (std::size_t i = 0; i < asns.size(); ++i)
    EXPECT_TRUE(ids.contains(
        derive_request_id(kQueryStream, 0, static_cast<std::uint64_t>(i))
            .value));
}

TEST(QueryAttribution, LatencyHistogramsPopulateForServePaths) {
  const serve::Snapshot snapshot = small_snapshot();
  serve::QueryService service(snapshot, {});
  std::vector<asn::Asn> asns;
  for (std::uint32_t v = 1; v <= 8; ++v) asns.push_back(asn::Asn{v * 1000});
  service.lookup_batch(asns);
  service.census(snapshot.archive_end());

  const Snapshot metrics = service.report().metrics;
  if constexpr (!kEnabled) {
    EXPECT_TRUE(metrics.latencies.empty());
    return;
  }
  const auto batch =
      metrics.latencies.find("pl_serve_latency_ns{kind=\"batch\"}");
  ASSERT_NE(batch, metrics.latencies.end());
  EXPECT_EQ(batch->second.count, 1);
  EXPECT_GT(batch->second.percentile(0.50), 0);
  const auto census =
      metrics.latencies.find("pl_serve_latency_ns{kind=\"census\"}");
  ASSERT_NE(census, metrics.latencies.end());
  EXPECT_EQ(census->second.count, 1);
}

}  // namespace
}  // namespace pl::obs
