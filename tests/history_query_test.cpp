// The time-travel query surface: `Query{subject, options}` with
// `QueryOptions::as_of` must answer exactly what a fresh QueryService over
// the rebuilt day-D world would answer, the pre-redesign shims must stay
// bit-identical to query() with default options, the temporal queries
// (drift, first_flip) must match brute force over reconstructions, and a
// DurableService must keep its attached history in lockstep — including
// across a close/reopen with WAL replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/durable.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"

namespace pl::history {
namespace {

constexpr int kDaysBack = 25;

struct World {
  pipeline::Result result;
  HistoryStore store;
  util::Day base = 0;
  util::Day end = 0;
};

World* world_ = nullptr;

World& world() {
  if (world_ == nullptr) {
    pipeline::Config config;
    config.seed = 99;
    config.scale = 0.01;
    world_ = new World{pipeline::run_simulated(config), HistoryStore{}, 0, 0};
    world_->end = world_->result.truth.archive_end;
    world_->base = world_->end - kDaysBack;
    auto store = HistoryStore::build(world_->result.restored,
                                     world_->result.op_world.activity,
                                     world_->base, world_->end);
    EXPECT_TRUE(store.ok()) << store.status().to_string();
    world_->store = std::move(*store);
  }
  return *world_;
}

/// The end-day snapshot a live service serves from. QueryService is
/// pinned (non-movable), so each test constructs its own in place and
/// attaches the shared store — the shape a deployment gets from
/// DurableService.
serve::Snapshot live_snapshot() {
  World& w = world();
  return serve::Snapshot::build(w.result.restored, w.result.op_world.activity,
                                w.end);
}

/// A spread of interesting ASNs: known ones from across the row table plus
/// one the study never saw.
std::vector<asn::Asn> sample_asns(const serve::Snapshot& snap) {
  std::vector<asn::Asn> asns;
  const auto& rows = snap.rows();
  for (std::size_t i = 0; i < rows.size(); i += rows.size() / 9 + 1)
    asns.push_back(rows[i].asn);
  asns.push_back(asn::Asn{4294900000u});  // unknown
  return asns;
}

serve::QueryOptions as_of(util::Day day) {
  serve::QueryOptions options;
  options.as_of = day;
  return options;
}

/// Replicates query.cpp's class_on: the admin category in force on `day`.
std::optional<joint::Category> class_on(const serve::Snapshot& snap,
                                        asn::Asn asn, util::Day day) {
  const serve::AsnRow* row = snap.find(asn);
  if (row == nullptr) return std::nullopt;
  for (const serve::AdminLifeRow& life : snap.admin_lives(*row))
    if (life.life.days.first <= day && day <= life.life.days.last)
      return life.category;
  return std::nullopt;
}

std::array<std::int64_t, serve::kTaxonomyCategories> tally(
    const serve::Snapshot& snap) {
  std::array<std::int64_t, serve::kTaxonomyCategories> counts{};
  for (const serve::AsnRow& row : snap.rows())
    for (const serve::AdminLifeRow& life : snap.admin_lives(row))
      ++counts[static_cast<std::size_t>(life.category)];
  return counts;
}

TEST(HistoryQuery, AsOfMatchesFreshServiceOverRebuild) {
  World& w = world();
  serve::QueryService live(live_snapshot());
  live.attach_history(&w.store);
  const std::vector<asn::Asn> asns = sample_asns(live.snapshot());

  for (const util::Day day : {w.base, static_cast<util::Day>(w.base + 11),
                              static_cast<util::Day>(w.end - 1)}) {
    SCOPED_TRACE("as_of day " + std::to_string(day));
    // The oracle: a service whose LIVE world is the rebuilt day-D world.
    serve::QueryService fresh(HistoryStore::rebuild_at(
        w.result.restored, w.result.op_world.activity, day));

    for (const asn::Asn asn : asns) {
      auto lookup = live.query(serve::Query::lookup(asn, as_of(day)));
      ASSERT_TRUE(lookup.ok()) << lookup.status().to_string();
      ASSERT_EQ(lookup->lookups.size(), 1u);
      EXPECT_EQ(lookup->lookups[0], fresh.lookup(asn));

      auto alive = live.query(
          serve::Query::alive(asn, day - 3, as_of(day)));
      ASSERT_TRUE(alive.ok()) << alive.status().to_string();
      ASSERT_EQ(alive->alive.size(), 1u);
      EXPECT_EQ(alive->alive[0], fresh.alive_on(asn, day - 3));
    }

    auto batch = live.query(serve::Query::lookup_batch(asns, as_of(day)));
    ASSERT_TRUE(batch.ok()) << batch.status().to_string();
    EXPECT_EQ(batch->lookups, fresh.lookup_batch(asns));

    auto census = live.query(serve::Query::census(day, as_of(day)));
    ASSERT_TRUE(census.ok()) << census.status().to_string();
    ASSERT_TRUE(census->census.has_value());
    EXPECT_EQ(*census->census, fresh.census(day));

    serve::ScanQuery filter;
    filter.admin_alive_on = day;
    filter.limit = 64;
    auto scan = live.query(serve::Query::scan(filter, as_of(day)));
    ASSERT_TRUE(scan.ok()) << scan.status().to_string();
    EXPECT_EQ(scan->lookups, fresh.scan(filter));
  }
}

TEST(HistoryQuery, UnifiedQueryMatchesShims) {
  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);
  const std::vector<asn::Asn> asns = sample_asns(service.snapshot());
  const util::Day end = service.snapshot().archive_end();

  for (const asn::Asn asn : asns) {
    auto q = service.query(serve::Query::lookup(asn));
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->lookups[0], service.lookup(asn));
    auto a = service.query(serve::Query::alive(asn, end - 7));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->alive[0], service.alive_on(asn, end - 7));
  }
  auto batch = service.query(serve::Query::lookup_batch(asns));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->lookups, service.lookup_batch(asns));
  auto alive_batch = service.query(serve::Query::alive_batch(asns, end - 2));
  ASSERT_TRUE(alive_batch.ok());
  EXPECT_EQ(alive_batch->alive, service.alive_on_batch(asns, end - 2));
  auto census = service.query(serve::Query::census(end));
  ASSERT_TRUE(census.ok());
  EXPECT_EQ(*census->census, service.census(end));
  serve::ScanQuery filter;
  filter.op_alive_on = end - 1;
  auto scan = service.query(serve::Query::scan(filter));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->lookups, service.scan(filter));
}

TEST(HistoryQuery, CacheOptInvariance) {
  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);
  const std::vector<asn::Asn> asns = sample_asns(service.snapshot());
  serve::QueryOptions no_cache;
  no_cache.use_cache = false;
  for (const asn::Asn asn : asns) {
    auto cached = service.query(serve::Query::lookup(asn));
    auto fresh = service.query(serve::Query::lookup(asn, no_cache));
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(*cached, *fresh);
  }
}

TEST(HistoryQuery, AsOfArchiveEndServesLive) {
  World& w = world();
  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);
  const asn::Asn asn = sample_asns(service.snapshot()).front();
  auto live = service.query(serve::Query::lookup(asn));
  auto pinned = service.query(serve::Query::lookup(asn, as_of(w.end)));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*live, *pinned);
}

TEST(HistoryQuery, ErrorsArePreciseAndTyped) {
  World& w = world();
  const asn::Asn asn = asn::Asn{64512};

  // No history attached: any genuine as_of is a precondition failure.
  serve::QueryService bare(serve::Snapshot::build(
      w.result.restored, w.result.op_world.activity, w.end));
  EXPECT_EQ(bare.query(serve::Query::lookup(asn, as_of(w.end - 3)))
                .status()
                .code(),
            pl::StatusCode::kFailedPrecondition);
  EXPECT_EQ(bare.first_flip(asn, joint::Category::kCompleteOverlap)
                .status()
                .code(),
            pl::StatusCode::kFailedPrecondition);

  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);
  // The future is not queryable.
  EXPECT_EQ(service.query(serve::Query::lookup(asn, as_of(w.end + 1)))
                .status()
                .code(),
            pl::StatusCode::kInvalidArgument);
  // Before the recorded range: the history store reports not-found.
  EXPECT_EQ(service.query(serve::Query::lookup(asn, as_of(w.base - 1)))
                .status()
                .code(),
            pl::StatusCode::kNotFound);
  // Malformed subject: point kinds take exactly one ASN.
  serve::Query two_asns;
  two_asns.subject.kind = serve::QueryKind::kLookup;
  two_asns.subject.asns = {asn, asn::Asn{42}};
  EXPECT_EQ(service.query(two_asns).status().code(),
            pl::StatusCode::kInvalidArgument);
}

TEST(HistoryQuery, DriftMatchesBruteForce) {
  World& w = world();
  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);
  const util::Day from = w.base + 2;
  const util::Day to = w.end - 1;

  auto drift = service.drift(from, to);
  ASSERT_TRUE(drift.ok()) << drift.status().to_string();
  EXPECT_EQ(drift->from, from);
  EXPECT_EQ(drift->to, to);
  EXPECT_EQ(drift->from_counts,
            tally(HistoryStore::rebuild_at(w.result.restored,
                                           w.result.op_world.activity, from)));
  EXPECT_EQ(drift->to_counts,
            tally(HistoryStore::rebuild_at(w.result.restored,
                                           w.result.op_world.activity, to)));
  // The world only grows: total lives never shrink day over day.
  std::int64_t from_total = 0, to_total = 0;
  for (std::size_t c = 0; c < serve::kTaxonomyCategories; ++c) {
    from_total += drift->from_counts[c];
    to_total += drift->to_counts[c];
  }
  EXPECT_LE(from_total, to_total);
}

TEST(HistoryQuery, FirstFlipMatchesBruteForce) {
  World& w = world();
  serve::QueryService service(live_snapshot());
  service.attach_history(&world().store);

  // Brute force once over every day: for each sampled ASN and category,
  // the first day the classification becomes that category with the prior
  // day (within the range) not.
  const std::vector<asn::Asn> asns = sample_asns(service.snapshot());
  struct Key {
    asn::Asn asn;
    joint::Category category;
  };
  std::vector<Key> keys;
  for (const asn::Asn asn : asns)
    for (std::size_t c = 0; c < serve::kTaxonomyCategories; ++c)
      keys.push_back({asn, static_cast<joint::Category>(c)});

  std::vector<util::Day> expected(keys.size(), 0);
  std::vector<bool> prev(keys.size(), false);
  for (util::Day day = w.base; day <= w.end; ++day) {
    auto snap = w.store.at(day);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const bool now =
          class_on(**snap, keys[k].asn, day) == keys[k].category;
      if (now && !prev[k] && expected[k] == 0) expected[k] = day;
      prev[k] = now;
    }
  }

  int found = 0;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    auto got = service.first_flip(keys[k].asn, keys[k].category);
    if (expected[k] == 0) {
      EXPECT_EQ(got.status().code(), pl::StatusCode::kNotFound);
    } else {
      ASSERT_TRUE(got.ok()) << got.status().to_string();
      EXPECT_EQ(*got, expected[k]);
      ++found;
    }
  }
  // The sample must actually exercise the found path.
  EXPECT_GT(found, 0);
}

TEST(HistoryQuery, DurableServiceKeepsHistoryInLockstep) {
  World& w = world();
  const std::string dir = testing::TempDir() + "history_durable";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const util::Day start = w.end - 12;

  HistoryStore store;
  serve::DurableConfig config;
  config.dir = dir;
  config.history = &store;
  {
    auto service = serve::DurableService::open(
        HistoryStore::rebuild_at(w.result.restored,
                                 w.result.op_world.activity, start),
        config);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    EXPECT_EQ(store.earliest_day(), start);
    EXPECT_EQ(store.latest_day(), start);
    EXPECT_EQ(service->queries().history(), &store);

    for (util::Day day = start + 1; day <= w.end - 6; ++day) {
      const serve::DayDelta delta = HistoryStore::slice_day(
          w.result.restored, w.result.op_world.activity, day);
      ASSERT_TRUE(service->advance_day(delta).ok());
      EXPECT_EQ(store.latest_day(), day);
    }
    EXPECT_FALSE(service->health().degraded);

    // as_of routed straight through the durable wrapper's query service.
    const util::Day past = start + 3;
    auto census =
        service->queries().query(serve::Query::census(past, as_of(past)));
    ASSERT_TRUE(census.ok()) << census.status().to_string();
    serve::QueryService oracle(HistoryStore::rebuild_at(
        w.result.restored, w.result.op_world.activity, past));
    EXPECT_EQ(*census->census, oracle.census(past));
  }

  // Reopen with a FRESH store: open() must reseed it from the recovered
  // state (snapshot + WAL replay), and further advances keep appending.
  HistoryStore fresh;
  config.history = &fresh;
  auto reopened = serve::DurableService::open(
      HistoryStore::rebuild_at(w.result.restored, w.result.op_world.activity,
                               start),
      config);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened->archive_end(), w.end - 6);
  EXPECT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.latest_day(), w.end - 6);

  for (util::Day day = w.end - 5; day <= w.end; ++day) {
    const serve::DayDelta delta = HistoryStore::slice_day(
        w.result.restored, w.result.op_world.activity, day);
    ASSERT_TRUE(reopened->advance_day(delta).ok());
  }
  EXPECT_EQ(fresh.latest_day(), w.end);

  // The reseeded store reconstructs exactly like a from-scratch rebuild.
  auto got = fresh.at(w.end - 3);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_TRUE(**got == HistoryStore::rebuild_at(w.result.restored,
                                                w.result.op_world.activity,
                                                w.end - 3));
}

}  // namespace
}  // namespace pl::history
