// Compact delta codec + history file corruption suite: round-trips are
// exact for hand-built and sliced deltas, and every flavor of damage —
// truncation at any length, any single bit flipped, version skew, file-level
// tears — decodes to a precise kDataLoss, never a crash, never a partial
// delta. Runs under the asan leg via the `chaos` label.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "history/codec.hpp"
#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "robust/checkpoint.hpp"

namespace pl::history {
namespace {

serve::DayDelta hand_built_delta() {
  serve::DayDelta delta;
  delta.day = 6000;

  serve::DelegationFact fact;
  fact.asn = asn::Asn{64512};
  fact.registry = asn::Rir::kRipeNcc;
  fact.state.status = dele::Status::kAllocated;
  fact.state.registration_date = 5990;
  fact.state.country = *asn::CountryCode::parse("DE");
  fact.state.opaque_id = 17;
  delta.delegation.push_back(fact);

  // Second fact: LOWER ASN (negative zigzag delta), no registration date,
  // unknown country, different registry and status.
  fact = {};
  fact.asn = asn::Asn{42};
  fact.registry = asn::Rir::kArin;
  fact.state.status = dele::Status::kReserved;
  delta.delegation.push_back(fact);

  // Third: same country as the first (interned id reused), a registration
  // date AFTER the frame day (negative-able delta on the other side).
  fact = {};
  fact.asn = asn::Asn{4200000000u};
  fact.registry = asn::Rir::kApnic;
  fact.state.status = dele::Status::kAssigned;
  fact.state.registration_date = 6004;
  fact.state.country = *asn::CountryCode::parse("DE");
  fact.state.opaque_id = 3;
  delta.delegation.push_back(fact);

  delta.active = {asn::Asn{42}, asn::Asn{64512}, asn::Asn{64513}};
  return delta;
}

TEST(HistoryCodec, RoundTripsHandBuiltDeltaExactly) {
  const serve::DayDelta delta = hand_built_delta();
  const std::string frame = encode_compact_delta(delta);
  auto decoded = decode_compact_delta(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, delta);
}

TEST(HistoryCodec, RoundTripsEmptyDelta) {
  serve::DayDelta delta;
  delta.day = 1;
  const std::string frame = encode_compact_delta(delta);
  auto decoded = decode_compact_delta(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, delta);
}

TEST(HistoryCodec, RoundTripsSlicedDaysExactly) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  const pipeline::Result world = pipeline::run_simulated(config);
  const util::Day end = world.truth.archive_end;
  for (const util::Day day : {end, end - 1, end - 17, end - 30}) {
    const serve::DayDelta delta = HistoryStore::slice_day(
        world.restored, world.op_world.activity, day);
    ASSERT_GT(delta.delegation.size(), 0u);
    auto decoded = decode_compact_delta(encode_compact_delta(delta));
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    EXPECT_EQ(*decoded, delta) << "sliced day " << day;
  }
}

TEST(HistoryCodec, TruncationAtEveryLengthIsDataLoss) {
  const std::string frame = encode_compact_delta(hand_built_delta());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    auto decoded = decode_compact_delta(frame.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(decoded.status().code(), pl::StatusCode::kDataLoss);
  }
}

TEST(HistoryCodec, EveryBitFlipIsDataLoss) {
  // CRC32 detects any single-bit error, so no flip may round-trip — and
  // none may crash, even the ones that reach payload validation first.
  const std::string frame = encode_compact_delta(hand_built_delta());
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      auto decoded = decode_compact_delta(damaged);
      ASSERT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
      EXPECT_EQ(decoded.status().code(), pl::StatusCode::kDataLoss);
    }
  }
}

TEST(HistoryCodec, VersionSkewIsDataLoss) {
  // A structurally valid frame from "the future": version bumped, payload
  // otherwise empty. Must be refused as skew, not misread.
  robust::CheckpointWriter w;
  w.varint(kDeltaFormatVersion + 1);
  w.varint(0);  // day 0 (zigzag)
  w.varint(0);  // no countries
  w.varint(0);  // no facts
  w.varint(0);  // no active
  auto decoded = decode_compact_delta(std::move(w).finish());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), pl::StatusCode::kDataLoss);
}

TEST(HistoryCodec, GarbageIsDataLoss) {
  EXPECT_EQ(decode_compact_delta("").status().code(),
            pl::StatusCode::kDataLoss);
  EXPECT_EQ(decode_compact_delta("PLCK but not really a frame at all")
                .status()
                .code(),
            pl::StatusCode::kDataLoss);
}

// -- file-level corruption --------------------------------------------------

class HistoryFileCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline::Config config;
    config.seed = 7;
    config.scale = 0.01;
    world_ = new pipeline::Result(pipeline::run_simulated(config));
    const util::Day end = world_->truth.archive_end;
    auto store = HistoryStore::build(world_->restored,
                                     world_->op_world.activity, end - 10, end);
    ASSERT_TRUE(store.ok()) << store.status().to_string();
    path_ = testing::TempDir() + "history_corruption.plhist";
    std::filesystem::remove(path_);
    ASSERT_TRUE(store->save(path_).ok());
    bytes_ = read_all(path_);
    ASSERT_GT(bytes_.size(), 100u);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static std::string read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void write_all(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Write a damaged variant and expect open() and inspect() to both
  /// refuse it as kDataLoss.
  void expect_rejected(const std::string& damaged, const std::string& what) {
    const std::string path = testing::TempDir() + "history_damaged.plhist";
    write_all(path, damaged);
    EXPECT_EQ(HistoryStore::open(path).status().code(),
              pl::StatusCode::kDataLoss)
        << what << " accepted by open()";
    EXPECT_EQ(inspect(path).status().code(), pl::StatusCode::kDataLoss)
        << what << " accepted by inspect()";
  }

  static pipeline::Result* world_;
  static std::string path_;
  static std::string bytes_;
};

pipeline::Result* HistoryFileCorruption::world_ = nullptr;
std::string HistoryFileCorruption::path_;
std::string HistoryFileCorruption::bytes_;

TEST_F(HistoryFileCorruption, IntactFileOpens) {
  auto store = HistoryStore::open(path_);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  auto latest = store->at(store->latest_day());
  EXPECT_TRUE(latest.ok()) << latest.status().to_string();
}

TEST_F(HistoryFileCorruption, TruncationIsDataLoss) {
  // Cut the file at a spread of points: inside the manifest, inside a
  // keyframe, inside a delta, mid-header, and one byte short.
  for (const double fraction : {0.01, 0.1, 0.4, 0.7, 0.95}) {
    const std::size_t len =
        static_cast<std::size_t>(bytes_.size() * fraction);
    expect_rejected(bytes_.substr(0, len),
                    "truncation to " + std::to_string(len) + " bytes");
  }
  expect_rejected(bytes_.substr(0, bytes_.size() - 1), "one byte short");
}

TEST_F(HistoryFileCorruption, BitFlipsAreDataLoss) {
  // Flipping any bit lands in some frame's CRC footprint or breaks the
  // frame walk itself. A spread of offsets covers the manifest, keyframes,
  // and deltas without 8×size decodes of full snapshots.
  for (std::size_t byte = 0; byte < bytes_.size();
       byte += bytes_.size() / 97 + 1) {
    std::string damaged = bytes_;
    damaged[byte] = static_cast<char>(damaged[byte] ^ 0x10);
    expect_rejected(damaged, "bit flip at byte " + std::to_string(byte));
  }
}

TEST_F(HistoryFileCorruption, ExtraTrailingFrameIsDataLoss) {
  // A whole valid frame appended past the manifest's promise: count
  // mismatch, refused — a history file is exact, not a WAL.
  serve::DayDelta delta;
  delta.day = 1;
  expect_rejected(bytes_ + encode_compact_delta(delta),
                  "extra trailing frame");
}

TEST_F(HistoryFileCorruption, EmptyAndGarbageAreDataLoss) {
  expect_rejected("", "empty file");
  expect_rejected("not a history file", "garbage file");
}

}  // namespace
}  // namespace pl::history
