#include <gtest/gtest.h>

#include <bitset>

#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace pl::util {
namespace {

TEST(DayInterval, Basics) {
  const DayInterval i{10, 20};
  EXPECT_EQ(i.length(), 11);
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.contains(10));
  EXPECT_TRUE(i.contains(20));
  EXPECT_FALSE(i.contains(21));
  EXPECT_TRUE(i.contains(DayInterval{12, 18}));
  EXPECT_FALSE(i.contains(DayInterval{12, 21}));

  const DayInterval empty{5, 4};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.length(), 0);
  EXPECT_FALSE(i.contains(empty));
}

TEST(DayInterval, OverlapAndIntersect) {
  const DayInterval a{0, 10};
  const DayInterval b{10, 20};
  const DayInterval c{11, 20};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_EQ(overlap_days(a, b), 1);
  EXPECT_EQ(overlap_days(a, c), 0);
  EXPECT_EQ(a.intersect(b), (DayInterval{10, 10}));
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(IntervalSet, AddCoalesces) {
  IntervalSet set;
  set.add(DayInterval{1, 5});
  set.add(DayInterval{7, 9});
  EXPECT_EQ(set.run_count(), 2u);
  set.add(6);  // bridges the two runs
  EXPECT_EQ(set.run_count(), 1u);
  EXPECT_EQ(set.total_days(), 9);
  EXPECT_EQ(set.span(), (DayInterval{1, 9}));
}

TEST(IntervalSet, AdjacentMerges) {
  IntervalSet set;
  set.add(DayInterval{1, 5});
  set.add(DayInterval{6, 8});  // adjacent, must merge
  EXPECT_EQ(set.run_count(), 1u);
}

TEST(IntervalSet, Subtract) {
  IntervalSet set;
  set.add(DayInterval{1, 10});
  set.subtract(DayInterval{4, 6});
  EXPECT_EQ(set.run_count(), 2u);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.contains(7));
  EXPECT_EQ(set.total_days(), 7);
}

TEST(IntervalSet, Gaps) {
  IntervalSet set;
  set.add(DayInterval{1, 5});
  set.add(DayInterval{10, 12});
  set.add(DayInterval{50, 60});
  const auto gaps = set.gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], 4);   // 6..9
  EXPECT_EQ(gaps[1], 37);  // 13..49
}

TEST(IntervalSet, CoalesceImplementsTimeout) {
  IntervalSet set;
  set.add(DayInterval{1, 5});
  set.add(DayInterval{10, 12});   // gap 4
  set.add(DayInterval{50, 60});   // gap 37
  const auto at30 = set.coalesce(30);
  ASSERT_EQ(at30.size(), 2u);
  EXPECT_EQ(at30[0], (DayInterval{1, 12}));
  EXPECT_EQ(at30[1], (DayInterval{50, 60}));
  const auto at37 = set.coalesce(37);
  ASSERT_EQ(at37.size(), 1u);
  EXPECT_EQ(at37[0], (DayInterval{1, 60}));
  const auto at0 = set.coalesce(0);
  EXPECT_EQ(at0.size(), 3u);
}

TEST(IntervalSet, CoveredDays) {
  IntervalSet set;
  set.add(DayInterval{10, 20});
  set.add(DayInterval{30, 40});
  EXPECT_EQ(set.covered_days(DayInterval{0, 100}), 22);
  EXPECT_EQ(set.covered_days(DayInterval{15, 35}), 12);
  EXPECT_EQ(set.covered_days(DayInterval{21, 29}), 0);
}

TEST(IntervalSet, UniteIntersect) {
  IntervalSet a(std::vector<DayInterval>{{1, 10}, {20, 30}});
  IntervalSet b(std::vector<DayInterval>{{5, 25}});
  const IntervalSet u = a.unite(b);
  EXPECT_EQ(u.run_count(), 1u);
  EXPECT_EQ(u.total_days(), 30);
  const IntervalSet i = a.intersect(b);
  EXPECT_EQ(i.total_days(), 6 + 6);  // 5..10 and 20..25
}

// Property test: IntervalSet must agree with a naive bitset model under
// random add/subtract sequences.
class IntervalSetModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetModel, MatchesBitsetModel) {
  constexpr int kUniverse = 400;
  Rng rng(GetParam());
  IntervalSet set;
  std::bitset<kUniverse> model;

  for (int step = 0; step < 200; ++step) {
    const Day lo = static_cast<Day>(rng.uniform(0, kUniverse - 1));
    const Day hi =
        static_cast<Day>(std::min<std::int64_t>(kUniverse - 1,
                                                lo + rng.uniform(0, 40)));
    if (rng.chance(0.6)) {
      set.add(DayInterval{lo, hi});
      for (Day d = lo; d <= hi; ++d) model.set(static_cast<std::size_t>(d));
    } else {
      set.subtract(DayInterval{lo, hi});
      for (Day d = lo; d <= hi; ++d)
        model.reset(static_cast<std::size_t>(d));
    }

    // Invariants: runs sorted, disjoint, separated by >= 1 day.
    const auto& runs = set.runs();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_LE(runs[i].first, runs[i].last);
      if (i > 0) {
        EXPECT_GT(runs[i].first, runs[i - 1].last + 1);
      }
    }
    // Membership matches model.
    ASSERT_EQ(set.total_days(), static_cast<std::int64_t>(model.count()));
  }
  for (Day d = 0; d < kUniverse; ++d)
    EXPECT_EQ(set.contains(d), model.test(static_cast<std::size_t>(d)))
        << "day " << d;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetModel,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: coalesce(t) produces exactly 1 + (number of gaps > t) runs.
class CoalesceProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoalesceProperty, RunCountMatchesGapCount) {
  Rng rng(99);
  IntervalSet set;
  Day cursor = 0;
  for (int i = 0; i < 30; ++i) {
    const Day len = static_cast<Day>(rng.uniform(1, 50));
    set.add(DayInterval{cursor, cursor + len - 1});
    cursor += len + static_cast<Day>(rng.uniform(1, 80));
  }
  const int timeout = GetParam();
  std::size_t expected = 1;
  for (const auto gap : set.gaps())
    if (gap > timeout) ++expected;
  EXPECT_EQ(set.coalesce(timeout).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, CoalesceProperty,
                         ::testing::Values(0, 1, 15, 30, 50, 100, 100000));

}  // namespace
}  // namespace pl::util
