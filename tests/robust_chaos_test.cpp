// Fault injection across the ingestion path: the FaultStream decorator must
// be deterministic and keep conservation-law books, the restorer's ingestion
// guard must quarantine what the transport mangles, and the full simulated
// pipeline must degrade gracefully — never crash — under uniform chaos.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "delegation/fault_stream.hpp"
#include "pipeline/pipeline.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "robust/chaos.hpp"

namespace pl::robust {
namespace {

using dele::DayObservation;
using dele::FaultStream;

constexpr double kScale = 0.01;
constexpr asn::Rir kRir = asn::Rir::kApnic;

const rirsim::GroundTruth& truth() {
  static const rirsim::GroundTruth world =
      rirsim::build_world(rirsim::WorldConfig::test_scale(23, kScale));
  return world;
}

std::unique_ptr<dele::ArchiveStream> pristine_stream() {
  rirsim::InjectorConfig config;
  config.seed = 11;
  config.scale = kScale;
  static const rirsim::SimulatedArchive archive(truth(), config);
  return archive.stream(kRir);
}

/// Drain a stream into (day, extended-condition) fingerprints.
std::vector<std::pair<util::Day, int>> drain(dele::ArchiveStream& stream) {
  std::vector<std::pair<util::Day, int>> out;
  while (auto observation = stream.next())
    out.emplace_back(observation->day,
                     static_cast<int>(observation->extended.condition));
  return out;
}

TEST(FaultStream, SameSeedSameFaults) {
  const ChaosConfig chaos = ChaosConfig::uniform(0.05, 1234);
  FaultStream a(pristine_stream(), chaos);
  FaultStream b(pristine_stream(), chaos);
  EXPECT_EQ(drain(a), drain(b));

  ChaosConfig other = chaos;
  other.seed = 1235;
  FaultStream c(pristine_stream(), other);
  EXPECT_NE(drain(a), drain(c)) << "different seed should differ";
}

TEST(FaultStream, TransportBooksBalance) {
  FaultStream stream(pristine_stream(), ChaosConfig::uniform(0.05, 7));
  const auto delivered = drain(stream);
  const RobustnessReport& stats = stream.counters();

  EXPECT_EQ(stats.days_delivered,
            static_cast<std::int64_t>(delivered.size()));
  EXPECT_TRUE(stats.transport_accounted())
      << "delivered=" << stats.days_delivered
      << " input=" << stats.days_input << " dropped=" << stats.days_dropped
      << " duplicated=" << stats.days_duplicated;
  // At 5% over thousands of days every fault class fires.
  EXPECT_GT(stats.days_dropped, 0);
  EXPECT_GT(stats.days_duplicated, 0);
  EXPECT_GT(stats.days_reordered, 0);
  EXPECT_GT(stats.channels_corrupted, 0);
  EXPECT_GT(stats.fetch_retries, 0);
}

TEST(FaultStream, ZeroRatesArePassThrough) {
  ChaosConfig silent;  // all rates default to 0
  FaultStream faulty(pristine_stream(), silent);
  const auto with = drain(faulty);
  const auto without = [&] {
    auto stream = pristine_stream();
    return drain(*stream);
  }();
  EXPECT_EQ(with, without);
  EXPECT_EQ(faulty.counters().days_dropped, 0);
  EXPECT_EQ(faulty.counters().days_input, faulty.counters().days_delivered);
}

TEST(FaultStream, DiagnosticsLandInSink) {
  ErrorSink sink;
  FaultStream stream(pristine_stream(), ChaosConfig::uniform(0.05, 7),
                     &sink);
  drain(stream);
  EXPECT_FALSE(sink.diagnostics().empty());
  EXPECT_GT(sink.counters().errors, 0);    // exhausted retries / outages
  EXPECT_GT(sink.counters().warnings, 0);  // duplicates, reorders
  EXPECT_GT(sink.counters().by_stage[static_cast<int>(Stage::kFetch)], 0);
  // With a sink attached, the stream's local block stays untouched.
  EXPECT_EQ(stream.counters().days_input, 0);
}

/// Restoration under reorder-only chaos: a wide-enough reorder window makes
/// the result identical to a clean run; without the window the late days are
/// quarantined but still accounted for.
TEST(ChaosRestore, ReorderWindowRecoversSwappedDays) {
  restore::RestoreConfig clean_config;
  const restore::RestoredRegistry clean = [&] {
    auto stream = pristine_stream();
    return restore::restore_registry(*stream, clean_config, &truth().erx);
  }();

  ChaosConfig chaos;
  chaos.seed = 404;
  chaos.reorder_rate = 0.10;

  // Window on: swapped pairs are reassembled, spans match the clean run.
  {
    ErrorSink sink;
    restore::RestoreConfig config;
    config.reorder_window_days = 2;
    FaultStream stream(pristine_stream(), chaos, &sink);
    const restore::RestoredRegistry restored = restore::restore_registry(
        stream, config, &truth().erx, nullptr, &sink);
    EXPECT_GT(sink.counters().days_reordered, 0);
    EXPECT_GT(restored.report.days_reorder_recovered, 0);
    EXPECT_EQ(restored.report.days_quarantined_late, 0);
    EXPECT_TRUE(sink.counters().delivery_accounted());
    EXPECT_EQ(clean.spans, restored.spans)
        << "reorder window should make chaos invisible";
  }

  // Window off: the same late days are quarantined, none vanish silently.
  {
    ErrorSink sink;
    FaultStream stream(pristine_stream(), chaos, &sink);
    const restore::RestoredRegistry restored = restore::restore_registry(
        stream, clean_config, &truth().erx, nullptr, &sink);
    EXPECT_GT(restored.report.days_quarantined_late, 0);
    EXPECT_EQ(restored.report.days_quarantined_late,
              sink.counters().days_reordered);
    EXPECT_TRUE(sink.counters().delivery_accounted());
  }
}

TEST(ChaosRestore, DuplicateDaysAreQuarantinedHarmlessly) {
  const restore::RestoreConfig config;
  const restore::RestoredRegistry clean = [&] {
    auto stream = pristine_stream();
    return restore::restore_registry(*stream, config, &truth().erx);
  }();

  ChaosConfig chaos;
  chaos.seed = 505;
  chaos.duplicate_day_rate = 0.10;
  ErrorSink sink;
  FaultStream stream(pristine_stream(), chaos, &sink);
  const restore::RestoredRegistry restored = restore::restore_registry(
      stream, config, &truth().erx, nullptr, &sink);

  EXPECT_GT(sink.counters().days_duplicated, 0);
  EXPECT_EQ(restored.report.days_quarantined_duplicate,
            sink.counters().days_duplicated);
  EXPECT_TRUE(sink.counters().delivery_accounted());
  EXPECT_EQ(clean.spans, restored.spans)
      << "a repeated day must not change the restoration";
}

TEST(ErrorSinkPolicy, StrictTripsLenientKeepsGoing) {
  ErrorSink lenient(Policy::kLenient);
  ErrorSink strict(Policy::kStrict);
  const Diagnostic warning{Stage::kParse, Severity::kWarning, "w", "", {},
                           {}};
  const Diagnostic error{Stage::kParse, Severity::kError, "e", "", {}, {}};
  EXPECT_TRUE(lenient.report(warning));
  EXPECT_TRUE(lenient.report(error));
  EXPECT_TRUE(lenient.ok());
  EXPECT_TRUE(strict.report(warning));
  EXPECT_FALSE(strict.report(error));
  EXPECT_FALSE(strict.ok());

  // Retention is bounded; counting is not.
  ErrorSink tiny(Policy::kLenient, 2);
  for (int i = 0; i < 10; ++i) tiny.report(warning);
  EXPECT_EQ(tiny.diagnostics().size(), 2u);
  EXPECT_EQ(tiny.overflowed(), 8u);
  EXPECT_EQ(tiny.counters().warnings, 10);
}

/// The acceptance gate: the full simulated pipeline at 5% uniform chaos
/// completes, and RobustnessReport proves nothing fell through the cracks.
TEST(ChaosPipeline, FivePercentChaosDegradesGracefully) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  config.inject_chaos = true;
  config.chaos = ChaosConfig::uniform(0.05);
  const pipeline::Result result = pipeline::run_simulated(config);

  const RobustnessReport& books = result.robustness;
  EXPECT_GT(books.days_input, 0);
  EXPECT_GT(books.days_dropped, 0);
  EXPECT_TRUE(books.transport_accounted())
      << "input=" << books.days_input << " delivered=" << books.days_delivered
      << " dropped=" << books.days_dropped
      << " duplicated=" << books.days_duplicated;
  EXPECT_TRUE(books.delivery_accounted())
      << "applied=" << books.days_applied
      << " dup=" << books.days_quarantined_duplicate
      << " late=" << books.days_quarantined_late
      << " delivered=" << books.days_delivered;

  // The study still comes out the other end.
  EXPECT_GT(result.admin.lifetimes.size(), 100u);
  EXPECT_GT(result.taxonomy.total_admin(), 0);

  // Chaos is deterministic end to end.
  const pipeline::Result again = pipeline::run_simulated(config);
  EXPECT_EQ(result.robustness.days_dropped, again.robustness.days_dropped);
  EXPECT_EQ(result.admin.lifetimes.size(), again.admin.lifetimes.size());
}

TEST(ChaosPipeline, ChaosOffLeavesBooksEmpty) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  const pipeline::Result result = pipeline::run_simulated(config);
  EXPECT_EQ(result.robustness.days_input, 0);
  EXPECT_EQ(result.robustness.days_dropped, 0);
}

}  // namespace
}  // namespace pl::robust
