// Differential determinism suite: the parallel pipeline must be
// bit-identical to the serial one — same lifetime vectors, same taxonomy,
// same restoration spans, same robustness books — at every thread count,
// including under transport chaos (same spirit as the PR-1 checkpoint
// bit-identity tests).
#include <gtest/gtest.h>

#include "exec/pool.hpp"
#include "pipeline/pipeline.hpp"

namespace pl::pipeline {
namespace {

void expect_admin_equal(const lifetimes::AdminDataset& a,
                        const lifetimes::AdminDataset& b) {
  ASSERT_EQ(a.lifetimes.size(), b.lifetimes.size());
  for (std::size_t i = 0; i < a.lifetimes.size(); ++i) {
    const lifetimes::AdminLifetime& x = a.lifetimes[i];
    const lifetimes::AdminLifetime& y = b.lifetimes[i];
    ASSERT_EQ(x.asn.value, y.asn.value) << "admin life " << i;
    ASSERT_EQ(x.registration_date, y.registration_date) << "admin life " << i;
    ASSERT_EQ(x.days.first, y.days.first) << "admin life " << i;
    ASSERT_EQ(x.days.last, y.days.last) << "admin life " << i;
    ASSERT_EQ(x.registry, y.registry) << "admin life " << i;
    ASSERT_EQ(x.country, y.country) << "admin life " << i;
    ASSERT_EQ(x.opaque_id, y.opaque_id) << "admin life " << i;
    ASSERT_EQ(x.open_ended, y.open_ended) << "admin life " << i;
    ASSERT_EQ(x.transferred, y.transferred) << "admin life " << i;
  }
  EXPECT_EQ(a.by_asn, b.by_asn);
}

void expect_op_equal(const lifetimes::OpDataset& a,
                     const lifetimes::OpDataset& b) {
  ASSERT_EQ(a.lifetimes.size(), b.lifetimes.size());
  for (std::size_t i = 0; i < a.lifetimes.size(); ++i) {
    ASSERT_EQ(a.lifetimes[i].asn.value, b.lifetimes[i].asn.value);
    ASSERT_EQ(a.lifetimes[i].days.first, b.lifetimes[i].days.first);
    ASSERT_EQ(a.lifetimes[i].days.last, b.lifetimes[i].days.last);
  }
  EXPECT_EQ(a.by_asn, b.by_asn);
}

void expect_taxonomy_equal(const joint::Taxonomy& a,
                           const joint::Taxonomy& b) {
  EXPECT_EQ(a.admin_counts, b.admin_counts);
  EXPECT_EQ(a.op_counts, b.op_counts);
  EXPECT_EQ(a.admin_category, b.admin_category);
  EXPECT_EQ(a.op_category, b.op_category);
  EXPECT_EQ(a.op_to_admin, b.op_to_admin);
  EXPECT_EQ(a.admin_to_ops, b.admin_to_ops);
}

void expect_restored_equal(const restore::RestoredArchive& a,
                           const restore::RestoredArchive& b) {
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    EXPECT_EQ(a.registries[r].rir, b.registries[r].rir);
    EXPECT_EQ(a.registries[r].spans, b.registries[r].spans)
        << "registry " << r;
    EXPECT_EQ(a.registries[r].report, b.registries[r].report)
        << "registry " << r;
  }
  EXPECT_EQ(a.cross.overlapping_asns, b.cross.overlapping_asns);
  EXPECT_EQ(a.cross.stale_spans_trimmed, b.cross.stale_spans_trimmed);
  EXPECT_EQ(a.cross.mistaken_spans_removed, b.cross.mistaken_spans_removed);
}

void expect_robustness_equal(const robust::RobustnessReport& a,
                             const robust::RobustnessReport& b) {
  EXPECT_EQ(a.infos, b.infos);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.fatals, b.fatals);
  for (std::size_t s = 0; s < robust::kStageCount; ++s)
    EXPECT_EQ(a.by_stage[s], b.by_stage[s]) << "stage " << s;
  EXPECT_EQ(a.days_input, b.days_input);
  EXPECT_EQ(a.days_delivered, b.days_delivered);
  EXPECT_EQ(a.days_dropped, b.days_dropped);
  EXPECT_EQ(a.days_duplicated, b.days_duplicated);
  EXPECT_EQ(a.days_reordered, b.days_reordered);
  EXPECT_EQ(a.days_applied, b.days_applied);
  EXPECT_EQ(a.days_quarantined_duplicate, b.days_quarantined_duplicate);
  EXPECT_EQ(a.days_quarantined_late, b.days_quarantined_late);
  EXPECT_EQ(a.days_reorder_recovered, b.days_reorder_recovered);
  EXPECT_EQ(a.records_salvaged, b.records_salvaged);
  EXPECT_EQ(a.records_skipped, b.records_skipped);
  EXPECT_EQ(a.bytes_discarded, b.bytes_discarded);
}

void expect_results_equal(const Result& a, const Result& b) {
  expect_restored_equal(a.restored, b.restored);
  expect_admin_equal(a.admin, b.admin);
  expect_op_equal(a.op, b.op);
  expect_taxonomy_equal(a.taxonomy, b.taxonomy);
  expect_robustness_equal(a.robustness, b.robustness);
}

TEST(PipelineParallel, ParallelRunMatchesSerialBitForBit) {
  Config config;
  config.seed = 11;
  config.scale = 0.02;

  config.threads = 0;
  const Result serial = run_simulated(config);
  for (const int threads : {1, 2, 4, 8}) {
    config.threads = threads;
    const Result parallel = run_simulated(config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_results_equal(serial, parallel);
  }
}

TEST(PipelineParallel, ParallelRunMatchesSerialUnderChaos) {
  Config config;
  config.seed = 23;
  config.scale = 0.02;
  config.inject_chaos = true;
  config.chaos = robust::ChaosConfig::uniform(0.05, 7);
  config.restore.reorder_window_days = 3;

  config.threads = 0;
  const Result serial = run_simulated(config);
  EXPECT_GT(serial.robustness.days_delivered, 0);
  EXPECT_TRUE(serial.robustness.delivery_accounted());
  EXPECT_TRUE(serial.robustness.transport_accounted());

  for (const int threads : {2, 8}) {
    config.threads = threads;
    const Result parallel = run_simulated(config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_results_equal(serial, parallel);
    EXPECT_TRUE(parallel.robustness.delivery_accounted());
    EXPECT_TRUE(parallel.robustness.transport_accounted());
  }
}

TEST(PipelineParallel, ProcessDefaultThreadsMatchPinnedSerial) {
  // Whatever PL_THREADS the harness set for this invocation (the ctest
  // suite runs this binary under both PL_THREADS=0 and PL_THREADS=4), the
  // default-threaded run must match an explicitly serial one.
  Config config;
  config.seed = 5;
  config.scale = 0.01;

  config.threads = -1;  // inherit PL_THREADS / hardware default
  const Result ambient = run_simulated(config);
  config.threads = 0;
  const Result serial = run_simulated(config);
  expect_results_equal(serial, ambient);
}

#ifndef PL_OBS_OFF
TEST(PipelineParallel, TimingsArePopulated) {
  Config config;
  config.seed = 3;
  config.scale = 0.01;
  const Result result = run_simulated(config);
  EXPECT_GT(result.timings.total_ms, 0.0);
  const double stage_sum =
      result.timings.world_ms + result.timings.op_world_ms +
      result.timings.render_ms + result.timings.restore_ms +
      result.timings.admin_ms + result.timings.op_ms +
      result.timings.taxonomy_ms;
  EXPECT_LE(stage_sum, result.timings.total_ms * 1.01);
}

TEST(PipelineParallel, MetricValuesBitIdenticalAcrossThreads) {
  // The observability determinism contract: every metric *value* (counter,
  // gauge, histogram bucket/sum/count — all integers) is bit-identical no
  // matter how the work was scheduled. Snapshot equality is exact; only
  // span timings are exempt (they are wall clock and live in the trace).
  Config config;
  config.seed = 11;
  config.scale = 0.02;

  config.threads = 0;
  const Result serial = run_simulated(config);
  EXPECT_FALSE(serial.report.metrics.counters.empty());
  for (const int threads : {1, 4}) {
    config.threads = threads;
    const Result parallel = run_simulated(config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.report.metrics, parallel.report.metrics);
  }
}

TEST(PipelineParallel, MetricValuesBitIdenticalAcrossThreadsUnderChaos) {
  Config config;
  config.seed = 23;
  config.scale = 0.02;
  config.inject_chaos = true;
  config.chaos = robust::ChaosConfig::uniform(0.05, 7);
  config.restore.reorder_window_days = 3;

  config.threads = 0;
  const Result serial = run_simulated(config);
  // Chaos publishes the fault books into the same registry.
  EXPECT_GT(serial.report.metrics.counter_value("pl_fault_days_delivered"),
            0);
  for (const int threads : {1, 4}) {
    config.threads = threads;
    const Result parallel = run_simulated(config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.report.metrics, parallel.report.metrics);
  }
}
#endif  // PL_OBS_OFF

}  // namespace
}  // namespace pl::pipeline
