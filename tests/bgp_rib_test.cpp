#include <gtest/gtest.h>

#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "bgp/roles.hpp"
#include "util/rng.hpp"

namespace pl::bgp {
namespace {

Element make(ElementType type, std::uint32_t peer, const char* prefix,
             std::initializer_list<std::uint32_t> path, util::Day day = 0) {
  Element e;
  e.day = day;
  e.type = type;
  e.collector = 3;
  e.peer = asn::Asn{peer};
  e.prefix = *Prefix::parse(prefix);
  e.path = AsPath(path);
  return e;
}

TEST(PeerRib, AnnounceReplaceWithdraw) {
  PeerRib rib;
  EXPECT_TRUE(rib.apply(make(ElementType::kAnnouncement, 900, "10.0.0.0/16",
                             {900, 65001})));
  EXPECT_EQ(rib.size(), 1u);
  ASSERT_NE(rib.route(*Prefix::parse("10.0.0.0/16")), nullptr);
  EXPECT_EQ(*rib.route(*Prefix::parse("10.0.0.0/16")),
            (AsPath{900, 65001}));

  // Implicit withdrawal: a new announcement replaces the old path.
  EXPECT_TRUE(rib.apply(make(ElementType::kAnnouncement, 900, "10.0.0.0/16",
                             {900, 3356, 65002})));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.route(*Prefix::parse("10.0.0.0/16"))->origin(),
            asn::Asn{65002});

  // Explicit withdrawal.
  EXPECT_TRUE(rib.apply(make(ElementType::kWithdrawal, 900, "10.0.0.0/16",
                             {})));
  EXPECT_EQ(rib.size(), 0u);
  EXPECT_EQ(rib.route(*Prefix::parse("10.0.0.0/16")), nullptr);
}

TEST(PeerRib, IgnoresForeignPeersAndPathlessAnnounce) {
  PeerRib rib;
  EXPECT_TRUE(rib.apply(make(ElementType::kRibEntry, 900, "10.0.0.0/16",
                             {900, 65001})));
  EXPECT_FALSE(rib.apply(make(ElementType::kRibEntry, 901, "11.0.0.0/16",
                              {901, 65001})));
  EXPECT_FALSE(rib.apply(make(ElementType::kAnnouncement, 900,
                              "12.0.0.0/16", {})));
  EXPECT_EQ(rib.size(), 1u);
}

TEST(PeerRib, SnapshotAndOrigins) {
  PeerRib rib;
  rib.apply(make(ElementType::kRibEntry, 900, "10.0.0.0/16", {900, 1}));
  rib.apply(make(ElementType::kRibEntry, 900, "11.0.0.0/16", {900, 2}));
  rib.apply(make(ElementType::kRibEntry, 900, "12.0.0.0/16", {900, 2, 2}));
  const auto snapshot = rib.snapshot(42);
  ASSERT_EQ(snapshot.size(), 3u);
  for (const Element& e : snapshot) {
    EXPECT_EQ(e.day, 42);
    EXPECT_EQ(e.type, ElementType::kRibEntry);
    EXPECT_EQ(e.peer, asn::Asn{900});
  }
  const auto origins = rib.origins();
  EXPECT_EQ(origins.size(), 2u);  // prepending dedupes to {1, 2}
}

TEST(RibReconstructor, MoasConflicts) {
  RibReconstructor reconstructor;
  // Two peers see the same prefix from different origins (MOAS).
  reconstructor.apply(make(ElementType::kRibEntry, 900, "10.0.0.0/16",
                           {900, 41933}));
  reconstructor.apply(make(ElementType::kRibEntry, 901, "10.0.0.0/16",
                           {901, 419333}));
  reconstructor.apply(make(ElementType::kRibEntry, 901, "11.0.0.0/16",
                           {901, 7}));
  EXPECT_EQ(reconstructor.total_routes(), 3u);
  const auto conflicts = reconstructor.moas_conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].prefix, *Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(conflicts[0].origins.size(), 2u);

  const auto by_41933 =
      reconstructor.prefixes_originated_by(asn::Asn{41933});
  ASSERT_EQ(by_41933.size(), 1u);
}

TEST(RibReconstructor, WithdrawalResolvesMoas) {
  RibReconstructor reconstructor;
  reconstructor.apply(make(ElementType::kRibEntry, 900, "10.0.0.0/16",
                           {900, 1}));
  reconstructor.apply(make(ElementType::kRibEntry, 901, "10.0.0.0/16",
                           {901, 2}));
  EXPECT_EQ(reconstructor.moas_conflicts().size(), 1u);
  reconstructor.apply(make(ElementType::kWithdrawal, 901, "10.0.0.0/16",
                           {}));
  EXPECT_TRUE(reconstructor.moas_conflicts().empty());
}

TEST(Roles, OriginVsTransit) {
  RoleTracker tracker;
  // 65001 originates; 3356 transits; peer 900 transits (first hop).
  tracker.observe(make(ElementType::kRibEntry, 900, "10.0.0.0/16",
                       {900, 3356, 65001}, 5));
  EXPECT_EQ(tracker.role_on(asn::Asn{65001}, 5), AsRole::kOriginOnly);
  EXPECT_EQ(tracker.role_on(asn::Asn{3356}, 5), AsRole::kTransitOnly);
  EXPECT_EQ(tracker.role_on(asn::Asn{65001}, 6), AsRole::kInactive);

  // 3356 also originates its own prefix the same day -> both.
  tracker.observe(make(ElementType::kRibEntry, 900, "11.0.0.0/16",
                       {900, 3356}, 5));
  EXPECT_EQ(tracker.role_on(asn::Asn{3356}, 5), AsRole::kBoth);

  const auto share = tracker.share_over(asn::Asn{3356},
                                        util::DayInterval{0, 10});
  EXPECT_EQ(share.both, 1);
  EXPECT_EQ(share.origin_only, 0);
  EXPECT_EQ(share.transit_only, 0);
  EXPECT_GE(tracker.asn_count(), 3u);
  EXPECT_EQ(role_name(AsRole::kBoth), "both");
}

TEST(Mrt, RoundTripsHandWrittenElements) {
  std::vector<Element> elements;
  elements.push_back(make(ElementType::kRibEntry, 900, "10.1.2.0/24",
                          {900, 3356, 65001}, 12345));
  elements.push_back(make(ElementType::kAnnouncement, 4000000000U,
                          "192.168.0.0/16", {4000000000U, 4294967290U}, 1));
  elements.push_back(make(ElementType::kWithdrawal, 901, "10.0.0.0/8", {},
                          9999));
  Element v6;
  v6.day = 777;
  v6.type = ElementType::kRibEntry;
  v6.collector = 12;
  v6.peer = asn::Asn{65010};
  v6.prefix = *Prefix::parse("2001:db8:1::/48");
  v6.path = AsPath({65010, 6939, 64496});
  elements.push_back(v6);

  const auto encoded = encode_elements(elements);
  const auto decoded = decode_elements(encoded);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ((*decoded)[i].day, elements[i].day);
    EXPECT_EQ((*decoded)[i].type, elements[i].type);
    EXPECT_EQ((*decoded)[i].collector, elements[i].collector);
    EXPECT_EQ((*decoded)[i].peer, elements[i].peer);
    EXPECT_EQ((*decoded)[i].prefix, elements[i].prefix);
    EXPECT_EQ((*decoded)[i].path, elements[i].path);
  }
}

TEST(Mrt, RejectsCorruptData) {
  // Truncated buffer.
  std::vector<Element> elements = {
      make(ElementType::kRibEntry, 900, "10.1.2.0/24", {900, 65001}, 1)};
  auto encoded = encode_elements(elements);
  encoded.resize(encoded.size() - 2);
  EXPECT_FALSE(decode_elements(encoded).has_value());

  // Bad record type.
  std::vector<std::uint8_t> junk = {0x77, 0x01};
  EXPECT_FALSE(decode_elements(junk).has_value());

  // Empty buffer decodes to an empty vector.
  const auto empty = decode_elements({});
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// Property: encode/decode is the identity over randomized batches.
class MrtRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrtRoundTrip, RandomBatches) {
  util::Rng rng(GetParam());
  std::vector<Element> elements;
  const int count = static_cast<int>(rng.uniform(1, 200));
  for (int i = 0; i < count; ++i) {
    Element e;
    e.day = static_cast<util::Day>(rng.uniform(0, 20000));
    e.type = static_cast<ElementType>(rng.uniform(0, 2));
    e.collector = static_cast<CollectorId>(rng.uniform(0, 100));
    e.peer = asn::Asn{static_cast<std::uint32_t>(rng())};
    if (rng.chance(0.8)) {
      e.prefix = Prefix::ipv4(static_cast<std::uint32_t>(rng()),
                              static_cast<std::uint8_t>(rng.uniform(8, 24)));
    } else {
      e.prefix = Prefix::ipv6(rng(), rng(),
                              static_cast<std::uint8_t>(rng.uniform(8, 64)));
    }
    if (e.type != ElementType::kWithdrawal) {
      std::vector<asn::Asn> hops;
      const int length = static_cast<int>(rng.uniform(1, 12));
      for (int h = 0; h < length; ++h)
        hops.push_back(asn::Asn{static_cast<std::uint32_t>(rng())});
      e.path = AsPath(std::move(hops));
    }
    elements.push_back(std::move(e));
  }
  const auto decoded = decode_elements(encode_elements(elements));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ((*decoded)[i].prefix, elements[i].prefix) << i;
    EXPECT_EQ((*decoded)[i].path, elements[i].path) << i;
    EXPECT_EQ((*decoded)[i].peer, elements[i].peer) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtRoundTrip,
                         ::testing::Values(3, 14, 159, 2653, 58979));

}  // namespace
}  // namespace pl::bgp
