// Compile-time guard for the PL_OBS_OFF kill switch. This translation unit
// is built twice by tests/CMakeLists.txt: once as-is (obs on) and once with
// -DPL_OBS_OFF=1 (obs compiled out). Both binaries must build and run; the
// static_asserts pin the no-op shells to actually being empty, and main()
// checks the behavioural contract of whichever variant was compiled.
//
// Deliberately a plain main (no gtest) including only the header-only obs
// core: the "off" variant must not need pl_obs (export.cpp) at link time,
// and the two variants must never be linked into one binary (ODR).
#include <cstdio>
#include <string>
#include <type_traits>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#ifdef PL_OBS_OFF
static_assert(!pl::obs::kEnabled, "PL_OBS_OFF build must disable obs");
// The no-op shells must stay stateless — an empty Counter/Gauge/Histogram
// is what lets the optimizer delete instrumented hot loops outright.
static_assert(std::is_empty_v<pl::obs::Counter>);
static_assert(std::is_empty_v<pl::obs::Gauge>);
static_assert(std::is_empty_v<pl::obs::Histogram>);
static_assert(std::is_empty_v<pl::obs::Span>);
#else
static_assert(pl::obs::kEnabled, "default build must enable obs");
#endif

int main() {
  pl::obs::Registry registry;
  registry.counter("check_counter").add(5);
  registry.gauge("check_gauge").set(9);
  registry.histogram("check_histogram", {10}).observe(3);

  pl::obs::Trace trace;
  {
    pl::obs::Span root = trace.root("check");
    root.note("value", 1);
    pl::obs::Span child = root.child("child");
    child.note("depth", 2);
  }

  const pl::obs::Snapshot snapshot = registry.snapshot();
  const pl::obs::TraceNode tree = trace.tree();

#ifdef PL_OBS_OFF
  const bool ok = snapshot.counters.empty() && snapshot.gauges.empty() &&
                  snapshot.histograms.empty() && tree.name.empty() &&
                  tree.children.empty();
#else
  const bool ok = snapshot.counter_value("check_counter") == 5 &&
                  snapshot.gauges.at("check_gauge") == 9 &&
                  snapshot.histograms.at("check_histogram").count == 1 &&
                  tree.name == "check" && tree.children.size() == 1 &&
                  tree.children[0].note_value("depth") == 2;
#endif

  if (!ok) {
    std::fprintf(stderr, "obs_off_check: contract violated (PL_OBS_OFF %s)\n",
#ifdef PL_OBS_OFF
                 "on"
#else
                 "off"
#endif
    );
    return 1;
  }
  return 0;
}
