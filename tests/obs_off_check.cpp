// Compile-time guard for the PL_OBS_OFF kill switch. This translation unit
// is built twice by tests/CMakeLists.txt: once as-is (obs on) and once with
// -DPL_OBS_OFF=1 (obs compiled out). Both binaries must build and run; the
// static_asserts pin the no-op shells to actually being empty, and main()
// checks the behavioural contract of whichever variant was compiled.
//
// Deliberately a plain main (no gtest) including only the header-only obs
// core: the "off" variant must not need pl_obs (export.cpp) at link time,
// and the two variants must never be linked into one binary (ODR).
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

#ifdef PL_OBS_OFF
static_assert(!pl::obs::kEnabled, "PL_OBS_OFF build must disable obs");
// The no-op shells must stay stateless — an empty Counter/Gauge/Histogram
// is what lets the optimizer delete instrumented hot loops outright.
static_assert(std::is_empty_v<pl::obs::Counter>);
static_assert(std::is_empty_v<pl::obs::Gauge>);
static_assert(std::is_empty_v<pl::obs::Histogram>);
static_assert(std::is_empty_v<pl::obs::Span>);
static_assert(std::is_empty_v<pl::obs::LatencyHisto>);
static_assert(std::is_empty_v<pl::obs::ScopedLatency>);
static_assert(std::is_empty_v<pl::obs::FlightRecorder>);
#else
static_assert(pl::obs::kEnabled, "default build must enable obs");
#endif

// The wire-facing pieces stay real in BOTH builds: request-id derivation is
// pure integer math, and the event/slot value types are what readers of
// dumps from instrumented builds decode.
static_assert(pl::obs::derive_request_id(pl::obs::kQueryStream, 1, 2) ==
              pl::obs::derive_request_id(pl::obs::kQueryStream, 1, 2));
static_assert(pl::obs::derive_request_id(pl::obs::kQueryStream, 1, 2).value !=
              pl::obs::derive_request_id(pl::obs::kQueryStream, 1, 3).value);
static_assert(sizeof(pl::obs::FlightEvent) == 32);
static_assert(pl::obs::detail_shard(pl::obs::query_detail(
                  pl::obs::kCacheHit, 7, 3, true)) == 7);
static_assert(pl::obs::detail_status(pl::obs::query_detail(
                  pl::obs::kCacheMiss, 7, 3, false)) == 3);
static_assert(pl::obs::latency_slot_bound(pl::obs::latency_slot(1000)) >=
              1000);

int main() {
  pl::obs::Registry registry;
  registry.counter("check_counter").add(5);
  registry.gauge("check_gauge").set(9);
  registry.histogram("check_histogram", {10}).observe(3);

  pl::obs::Trace trace;
  {
    pl::obs::Span root = trace.root("check");
    root.note("value", 1);
    pl::obs::Span child = root.child("child");
    child.note("depth", 2);
  }

  {
    pl::obs::ScopedLatency timer(registry.latency("check_latency"));
  }
  registry.latency("check_latency").observe(100);

  pl::obs::FlightRecorder flight;
  flight.record(pl::obs::FlightEvent{
      pl::obs::derive_request_id(pl::obs::kQueryStream, 0, 0).value,
      static_cast<std::uint32_t>(pl::obs::EventKind::kLookup),
      pl::obs::query_detail(pl::obs::kCacheMiss, 1, 0, true), 7, 0});

  const pl::obs::Snapshot snapshot = registry.snapshot();
  const pl::obs::TraceNode tree = trace.tree();
  const std::vector<pl::obs::FlightEvent> events = flight.events();

#ifdef PL_OBS_OFF
  const bool ok = snapshot.counters.empty() && snapshot.gauges.empty() &&
                  snapshot.histograms.empty() && snapshot.latencies.empty() &&
                  tree.name.empty() && tree.children.empty() &&
                  events.empty() && flight.total_recorded() == 0;
#else
  const bool ok = snapshot.counter_value("check_counter") == 5 &&
                  snapshot.gauges.at("check_gauge") == 9 &&
                  snapshot.histograms.at("check_histogram").count == 1 &&
                  snapshot.latencies.at("check_latency").count == 2 &&
                  tree.name == "check" && tree.children.size() == 1 &&
                  tree.children[0].note_value("depth") == 2 &&
                  events.size() == 1 && flight.total_recorded() == 1 &&
                  pl::obs::detail_found(events[0].detail);
#endif

  if (!ok) {
    std::fprintf(stderr, "obs_off_check: contract violated (PL_OBS_OFF %s)\n",
#ifdef PL_OBS_OFF
                 "on"
#else
                 "off"
#endif
    );
    return 1;
  }
  return 0;
}
