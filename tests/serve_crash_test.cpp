// The crash matrix: kill advance_day() at EVERY injected crash point, then
// reopen from disk and prove the recovered service is bit-identical to a
// run that never crashed.
//
// Structure per scenario: one extended pipeline run (the world E), a
// durable directory bootstrapped at day end-N, then daily advances with a
// robust::CrashPoints armed at one site. When the crash fires, the service
// instance is dead; a fresh DurableService::open() over the same directory
// must recover (snapshot + WAL replay), resume the remaining days, and land
// on a snapshot that compares equal — rows, indexes, working set — to the
// full rebuild. Runs over two seeds and two crash timings per site, 35/31
// chaos-free days (the advance-vs-rebuild equivalence under transport chaos
// is covered by serve_advance_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/durable.hpp"
#include "serve/snapshot.hpp"
#include "util/crc32.hpp"

namespace pl::serve {
namespace {

struct World {
  pipeline::Result extended;
  util::Day start = 0;
  util::Day end = 0;
  Snapshot base;  ///< built at `start`; copied into every scenario
  Snapshot full;  ///< built at `end`; the never-crashed fingerprint
};

World make_world(std::uint64_t seed, double scale, int days_back) {
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  World world;
  world.extended = pipeline::run_simulated(config);
  world.end = world.extended.truth.archive_end;
  world.start = world.end - days_back;
  world.base = Snapshot::build(
      truncate_archive(world.extended.restored, world.start),
      truncate_activity(world.extended.op_world.activity, world.start),
      world.start);
  world.full = Snapshot::build(world.extended.restored,
                               world.extended.op_world.activity, world.end);
  return world;
}

const World& world_99() {
  static const World world = make_world(99, 0.02, 35);
  return world;
}

const World& world_7() {
  static const World world = make_world(7, 0.01, 31);
  return world;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

DayDelta day_of(const World& world, util::Day day) {
  return slice_day(world.extended.restored,
                   world.extended.op_world.activity, day);
}

/// Drive one crash/recover cycle: advance until the armed crash fires,
/// reopen, resume, compare against the never-crashed fingerprint.
void crash_and_recover(const World& world, std::string_view site,
                       int countdown, const std::string& dir_name) {
  SCOPED_TRACE(std::string(site) + " countdown " + std::to_string(countdown));
  const std::string dir = fresh_dir(dir_name);
  robust::CrashPoints crash;

  DurableConfig durable;
  durable.dir = dir;
  durable.checkpoint_every_days = 5;  // checkpoint sites fire mid-stretch
  durable.crash = &crash;

  bool crashed = false;
  {
    auto service = DurableService::open(world.base, durable);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    crash.arm(std::string(site), countdown);
    for (util::Day day = world.start + 1; day <= world.end; ++day) {
      const pl::Status status = service->advance_day(day_of(world, day));
      if (crash.fired()) {
        EXPECT_FALSE(status.ok());
        EXPECT_NE(status.message().find("crash injected"), std::string::npos)
            << status.to_string();
        // The instance is dead from here on; only reopen brings it back.
        EXPECT_EQ(service->advance_day(day_of(world, day)).code(),
                  pl::StatusCode::kFailedPrecondition);
        crashed = true;
        break;
      }
      ASSERT_TRUE(status.ok()) << status.to_string();
    }
  }
  ASSERT_TRUE(crashed) << "site " << site << " never fired — is the "
                       << "countdown reachable within the stretch?";

  // The kill must have left a valid flight-recorder dump behind, and (when
  // recording is compiled in) its timeline must name the crash site: the
  // last kCrash event carries crc32(site) as its detail.
  const std::string flight_file = dir + "/flight.plflight";
  ASSERT_TRUE(std::filesystem::exists(flight_file))
      << "no flight dump after a crash at " << site;
  const obs::FlightRead flight = obs::read_flight(flight_file);
  ASSERT_TRUE(flight.ok()) << "flight dump unparseable after " << site;
  if constexpr (obs::kEnabled) {
    const auto is_crash = [](const obs::FlightEvent& event) {
      return event.kind ==
             static_cast<std::uint32_t>(obs::EventKind::kCrash);
    };
    const auto crash_event = std::find_if(flight.events.rbegin(),
                                          flight.events.rend(), is_crash);
    ASSERT_NE(crash_event, flight.events.rend())
        << "flight dump carries no kCrash event for " << site;
    EXPECT_EQ(crash_event->detail, util::crc32(site))
        << "flight kCrash event does not identify site " << site;
  } else {
    EXPECT_TRUE(flight.events.empty());
  }

  // Recovery: open the directory again (bootstrap empty on purpose — disk
  // must carry everything) and finish the stretch.
  durable.crash = nullptr;
  auto recovered = DurableService::open(Snapshot{}, durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  const HealthReport health = recovered->health();
  EXPECT_FALSE(health.degraded) << health.last_error;
  EXPECT_TRUE(health.quarantined_days.empty());
  ASSERT_GE(recovered->archive_end(), world.start);
  ASSERT_LE(recovered->archive_end(), world.end);

  for (util::Day day = recovered->archive_end() + 1; day <= world.end; ++day)
    ASSERT_TRUE(recovered->advance_day(day_of(world, day)).ok());

  EXPECT_TRUE(recovered->snapshot() == world.full)
      << "recovered state diverged from the never-crashed run after a "
         "crash at "
      << site;
  EXPECT_FALSE(recovered->health().degraded);
}

TEST(ServeCrash, AdvanceCrashSiteListIsExactlyWhatExecutionVisits) {
  // Discovery guard: run a full stretch with an unarmed hook and require
  // the visited-site set to equal kAdvanceCrashSites — adding a site to
  // the code without adding it to the matrix (or vice versa) fails here.
  const World& world = world_99();
  robust::CrashPoints observer;
  DurableConfig durable;
  durable.dir = fresh_dir("crash_discovery");
  durable.checkpoint_every_days = 5;
  durable.crash = &observer;
  auto service = DurableService::open(world.base, durable);
  ASSERT_TRUE(service.ok());
  for (util::Day day = world.start + 1; day <= world.end; ++day)
    ASSERT_TRUE(service->advance_day(day_of(world, day)).ok());

  std::vector<std::string> visited = observer.visited();
  std::vector<std::string> expected;
  for (const std::string_view site : kAdvanceCrashSites)
    expected.emplace_back(site);
  std::sort(visited.begin(), visited.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(visited, expected);
  EXPECT_FALSE(observer.fired());
}

TEST(ServeCrash, EverySiteRecoversBitIdentically_Seed99) {
  const World& world = world_99();
  int scenario = 0;
  for (const std::string_view site : kAdvanceCrashSites) {
    // Two timings per site: early in the stretch and deep into it. The
    // checkpoint sites are visited once per checkpoint (every 5 days), the
    // advance/WAL sites once per day.
    const bool checkpoint_site =
        site.find("checkpoint") != std::string_view::npos;
    for (const int countdown :
         (checkpoint_site ? std::vector<int>{2, 4}
                          : std::vector<int>{10, 23})) {
      crash_and_recover(world, site, countdown,
                        "crash99_" + std::to_string(scenario++));
    }
  }
}

TEST(ServeCrash, EverySiteRecoversBitIdentically_Seed7) {
  const World& world = world_7();
  int scenario = 0;
  for (const std::string_view site : kAdvanceCrashSites) {
    const bool checkpoint_site =
        site.find("checkpoint") != std::string_view::npos;
    crash_and_recover(world, site, checkpoint_site ? 3 : 17,
                      "crash7_" + std::to_string(scenario++));
  }
}

TEST(ServeCrash, RepeatedCrashesAtTheSameSiteStillConverge) {
  // Crash, recover, crash again at the same site a few days later, recover
  // again — accumulating WAL/snapshot generations must not drift.
  const World& world = world_99();
  const std::string dir = fresh_dir("crash_repeat");
  robust::CrashPoints crash;
  DurableConfig durable;
  durable.dir = dir;
  durable.checkpoint_every_days = 5;
  durable.crash = &crash;

  util::Day resume_from = world.start + 1;
  for (int round = 0; round < 3; ++round) {
    Snapshot bootstrap = round == 0 ? world.base : Snapshot{};
    auto service = DurableService::open(std::move(bootstrap), durable);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    resume_from = service->archive_end() + 1;
    crash.arm("durable.wal.torn_append", 7);
    bool fired = false;
    for (util::Day day = resume_from; day <= world.end; ++day) {
      const pl::Status status = service->advance_day(day_of(world, day));
      if (crash.fired()) {
        fired = true;
        break;
      }
      ASSERT_TRUE(status.ok());
    }
    if (!fired) break;  // stretch finished before the countdown
  }

  durable.crash = nullptr;
  auto final_service = DurableService::open(Snapshot{}, durable);
  ASSERT_TRUE(final_service.ok());
  for (util::Day day = final_service->archive_end() + 1; day <= world.end;
       ++day)
    ASSERT_TRUE(final_service->advance_day(day_of(world, day)).ok());
  EXPECT_TRUE(final_service->snapshot() == world.full);
  EXPECT_FALSE(final_service->health().degraded);
}

}  // namespace
}  // namespace pl::serve
