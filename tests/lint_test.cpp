// Fixture-driven coverage for every pl-lint rule (tools/pl-lint).
//
// Each rule owns a directory under tests/lint_fixtures/ with a must-flag and
// a must-pass snippet; the suite feeds them through lint_source() with a
// virtual repo path chosen to engage the rule's path policy. Suppression
// scoping (line, block, file-wide, unused budget) and the JSON report
// round-trip are locked in alongside.

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using pl::lint::Finding;
using pl::lint::Report;
using pl::lint::lint_source;

std::string read_fixture(const std::string& relative) {
  const std::string path = std::string(PL_LINT_FIXTURES) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int count_rule(const Report& report, const std::string& rule) {
  int n = 0;
  for (const Finding& finding : report.findings)
    if (finding.rule == rule) ++n;
  return n;
}

/// Per-rule fixture wiring: file names plus the virtual repo-relative path
/// each snippet is linted under (the path selects which rules apply).
struct FixtureCase {
  std::string flag_file;
  std::string flag_path;
  std::string pass_file;
  std::string pass_path;
};

const std::map<std::string, FixtureCase>& fixture_cases() {
  static const std::map<std::string, FixtureCase> cases = {
      {"nondet-rand",
       {"nondet-rand/flag.cpp", "tests/fixture.cpp", "nondet-rand/pass.cpp",
        "tests/fixture.cpp"}},
      {"nondet-time",
       {"nondet-time/flag.cpp", "tests/fixture.cpp", "nondet-time/pass.cpp",
        "tests/fixture.cpp"}},
      {"unordered-drain",
       {"unordered-drain/flag.cpp", "tests/fixture.cpp",
        "unordered-drain/pass.cpp", "tests/fixture.cpp"}},
      {"using-namespace-header",
       {"using-namespace-header/flag.hpp", "tests/fixture.hpp",
        "using-namespace-header/pass.hpp", "tests/fixture.hpp"}},
      {"missing-pragma-once",
       {"missing-pragma-once/flag.hpp", "tests/fixture.hpp",
        "missing-pragma-once/pass.hpp", "tests/fixture.hpp"}},
      {"naked-new",
       {"naked-new/flag.cpp", "src/widget/flag.cpp", "naked-new/pass.cpp",
        "src/widget/pass.cpp"}},
      {"metric-name",
       {"metric-name/flag.cpp", "src/widget/flag.cpp", "metric-name/pass.cpp",
        "src/widget/pass.cpp"}},
      {"span-name",
       {"span-name/flag.cpp", "src/widget/flag.cpp", "span-name/pass.cpp",
        "src/widget/pass.cpp"}},
      {"self-include-first",
       {"self-include-first/flag.cpp", "src/widget/flag.cpp",
        "self-include-first/pass.cpp", "src/widget/pass.cpp"}},
      {"status-ignored",
       {"status-ignored/flag.cpp", "src/widget/flag.cpp",
        "status-ignored/pass.cpp", "src/widget/pass.cpp"}},
      {"hot-path-alloc",
       {"hot-path-alloc/flag.cpp", "src/restore/flag.cpp",
        "hot-path-alloc/pass.cpp", "src/restore/pass.cpp"}},
      {"query-path-untraced",
       {"query-path-untraced/flag.cpp", "src/serve/flag.cpp",
        "query-path-untraced/pass.cpp", "src/serve/pass.cpp"}},
  };
  return cases;
}

TEST(LintFixtures, EveryCatalogRuleHasAFixturePair) {
  std::set<std::string> covered;
  for (const auto& [rule, unused] : fixture_cases()) covered.insert(rule);
  for (const pl::lint::RuleInfo& rule : pl::lint::rule_catalog())
    EXPECT_TRUE(covered.contains(std::string(rule.id)))
        << "rule without fixtures: " << rule.id;
  EXPECT_EQ(covered.size(), pl::lint::rule_catalog().size())
      << "fixture map names a rule the catalog does not";
}

TEST(LintFixtures, FlagSnippetsAreFlaggedAndOnlyByTheirOwnRule) {
  for (const auto& [rule, fixture] : fixture_cases()) {
    const Report report =
        lint_source(fixture.flag_path, read_fixture(fixture.flag_file));
    EXPECT_GE(count_rule(report, rule), 1)
        << rule << " flag fixture produced no " << rule << " finding";
    for (const Finding& finding : report.findings)
      EXPECT_EQ(finding.rule, rule)
          << rule << " flag fixture leaked a foreign finding (" << finding.rule
          << " at line " << finding.line << "); keep fixtures single-rule";
  }
}

TEST(LintFixtures, PassSnippetsAreCompletelyClean) {
  for (const auto& [rule, fixture] : fixture_cases()) {
    const Report report =
        lint_source(fixture.pass_path, read_fixture(fixture.pass_file));
    EXPECT_TRUE(report.clean())
        << rule << " pass fixture flagged: " << report.findings[0].rule << " ("
        << report.findings[0].message << ")";
  }
}

TEST(LintFixtures, FindingsCarryFileLineAndMessage) {
  const Report report = lint_source(
      "src/widget/flag.cpp", read_fixture("self-include-first/flag.cpp"));
  ASSERT_EQ(report.findings.size(), 1u);
  const Finding& finding = report.findings[0];
  EXPECT_EQ(finding.file, "src/widget/flag.cpp");
  EXPECT_GT(finding.line, 1);
  EXPECT_EQ(finding.rule, "self-include-first");
  EXPECT_NE(finding.message.find("widget/flag.hpp"), std::string::npos);
}

TEST(LintSuppressions, JustifiedAllowSilencesAndCountsAsUsedBudget) {
  const Report report = lint_source("tests/suppressed.cpp",
                                    read_fixture("suppression/suppressed.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("unordered-drain"));
  EXPECT_EQ(report.suppressions.at("unordered-drain").declared, 1);
  EXPECT_EQ(report.suppressions.at("unordered-drain").used, 1);
}

TEST(LintSuppressions, MultiLineJustificationStillReachesTheStatement) {
  // The allow() sits two comment lines above the loop; the suppression must
  // extend through the contiguous comment block to the code underneath.
  const std::string source =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int, int>& m) {\n"
      "  int sum = 0;\n"
      "  // pl-lint: allow(unordered-drain) a justification that\n"
      "  // needs a second line\n"
      "  // and a third one\n"
      "  for (const auto& [k, v] : m) sum += v;\n"
      "  return sum;\n"
      "}\n";
  EXPECT_TRUE(lint_source("tests/multi.cpp", source).clean());
}

TEST(LintSuppressions, AllowFileCoversEveryFindingOfThatRule) {
  const Report report = lint_source("tests/file_wide.cpp",
                                    read_fixture("suppression/file_wide.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("nondet-rand"));
  EXPECT_EQ(report.suppressions.at("nondet-rand").declared, 1);
  EXPECT_EQ(report.suppressions.at("nondet-rand").used, 2)
      << "both rand() call sites should burn the file-wide budget";
}

TEST(LintSuppressions, UnusedAllowStaysVisibleInTheBudget) {
  const Report report = lint_source(
      "tests/unused.cpp", read_fixture("suppression/unused_budget.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("naked-new"));
  EXPECT_EQ(report.suppressions.at("naked-new").declared, 1);
  EXPECT_EQ(report.suppressions.at("naked-new").used, 0);
}

TEST(LintSuppressions, AllowForOneRuleDoesNotSilenceAnother) {
  const std::string source =
      "#include <cstdlib>\n"
      "// pl-lint: allow(naked-new) wrong rule on purpose\n"
      "int f() { return std::rand(); }\n";
  const Report report = lint_source("tests/wrong_rule.cpp", source);
  EXPECT_EQ(count_rule(report, "nondet-rand"), 1);
}

TEST(LintReport, MergeAccumulatesFindingsAndBudgets) {
  Report merged = lint_source("tests/file_wide.cpp",
                              read_fixture("suppression/file_wide.cpp"));
  merged.merge(lint_source("src/widget/flag.cpp",
                           read_fixture("self-include-first/flag.cpp")));
  EXPECT_EQ(merged.files_scanned, 2);
  EXPECT_EQ(count_rule(merged, "self-include-first"), 1);
  EXPECT_EQ(merged.suppressions.at("nondet-rand").used, 2);
}

TEST(LintReport, JsonRoundTripPreservesTheReport) {
  Report report = lint_source("src/widget/flag.cpp",
                              read_fixture("self-include-first/flag.cpp"));
  report.merge(lint_source("tests/suppressed.cpp",
                           read_fixture("suppression/suppressed.cpp")));
  const std::string json = pl::lint::report_json(report, "/virtual/root");

  const auto parsed = pl::lint::report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->findings, report.findings);
  EXPECT_EQ(parsed->suppressions, report.suppressions);
  EXPECT_EQ(parsed->files_scanned, report.files_scanned);
  EXPECT_EQ(parsed->clean(), report.clean());
}

TEST(LintReport, JsonParserRejectsGarbageAndForeignSchemas) {
  EXPECT_FALSE(pl::lint::report_from_json("not json").has_value());
  EXPECT_FALSE(
      pl::lint::report_from_json("{\"schema\": \"other/9\"}").has_value());
}

}  // namespace
