// Fixture-driven coverage for every pl-lint rule (tools/pl-lint).
//
// Each rule owns a directory under tests/lint_fixtures/ with a must-flag and
// a must-pass snippet; the suite feeds them through lint_source() with a
// virtual repo path chosen to engage the rule's path policy. Suppression
// scoping (line, block, file-wide, unused budget) and the JSON report
// round-trip are locked in alongside.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"
#include "model.hpp"

namespace {

using pl::lint::FileModel;
using pl::lint::Finding;
using pl::lint::LayerManifest;
using pl::lint::ProgramAnalysis;
using pl::lint::Report;
using pl::lint::analyze_program;
using pl::lint::extract_file_model;
using pl::lint::lint_source;
using pl::lint::parse_layers;

std::string read_fixture(const std::string& relative) {
  const std::string path = std::string(PL_LINT_FIXTURES) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int count_rule(const Report& report, const std::string& rule) {
  int n = 0;
  for (const Finding& finding : report.findings)
    if (finding.rule == rule) ++n;
  return n;
}

/// Per-rule fixture wiring: file names plus the virtual repo-relative path
/// each snippet is linted under (the path selects which rules apply).
struct FixtureCase {
  std::string flag_file;
  std::string flag_path;
  std::string pass_file;
  std::string pass_path;
};

const std::map<std::string, FixtureCase>& fixture_cases() {
  static const std::map<std::string, FixtureCase> cases = {
      {"nondet-rand",
       {"nondet-rand/flag.cpp", "tests/fixture.cpp", "nondet-rand/pass.cpp",
        "tests/fixture.cpp"}},
      {"nondet-time",
       {"nondet-time/flag.cpp", "tests/fixture.cpp", "nondet-time/pass.cpp",
        "tests/fixture.cpp"}},
      {"unordered-drain",
       {"unordered-drain/flag.cpp", "tests/fixture.cpp",
        "unordered-drain/pass.cpp", "tests/fixture.cpp"}},
      {"using-namespace-header",
       {"using-namespace-header/flag.hpp", "tests/fixture.hpp",
        "using-namespace-header/pass.hpp", "tests/fixture.hpp"}},
      {"missing-pragma-once",
       {"missing-pragma-once/flag.hpp", "tests/fixture.hpp",
        "missing-pragma-once/pass.hpp", "tests/fixture.hpp"}},
      {"naked-new",
       {"naked-new/flag.cpp", "src/widget/flag.cpp", "naked-new/pass.cpp",
        "src/widget/pass.cpp"}},
      {"metric-name",
       {"metric-name/flag.cpp", "src/widget/flag.cpp", "metric-name/pass.cpp",
        "src/widget/pass.cpp"}},
      {"span-name",
       {"span-name/flag.cpp", "src/widget/flag.cpp", "span-name/pass.cpp",
        "src/widget/pass.cpp"}},
      {"self-include-first",
       {"self-include-first/flag.cpp", "src/widget/flag.cpp",
        "self-include-first/pass.cpp", "src/widget/pass.cpp"}},
      {"status-ignored",
       {"status-ignored/flag.cpp", "src/widget/flag.cpp",
        "status-ignored/pass.cpp", "src/widget/pass.cpp"}},
      {"hot-path-alloc",
       {"hot-path-alloc/flag.cpp", "src/restore/flag.cpp",
        "hot-path-alloc/pass.cpp", "src/restore/pass.cpp"}},
      {"query-path-untraced",
       {"query-path-untraced/flag.cpp", "src/serve/flag.cpp",
        "query-path-untraced/pass.cpp", "src/serve/pass.cpp"}},
  };
  return cases;
}

/// The whole-program rules are exercised through extract_file_model +
/// analyze_program below rather than lint_source, so they carry their own
/// fixture directories outside fixture_cases().
const std::set<std::string>& model_rule_fixtures() {
  static const std::set<std::string> rules = {
      "layer-violation", "include-cycle", "determinism-taint",
      "dead-public-api"};
  return rules;
}

TEST(LintFixtures, EveryCatalogRuleHasAFixturePair) {
  std::set<std::string> covered = model_rule_fixtures();
  for (const auto& [rule, unused] : fixture_cases()) covered.insert(rule);
  for (const pl::lint::RuleInfo& rule : pl::lint::rule_catalog())
    EXPECT_TRUE(covered.contains(std::string(rule.id)))
        << "rule without fixtures: " << rule.id;
  EXPECT_EQ(covered.size(), pl::lint::rule_catalog().size())
      << "fixture map names a rule the catalog does not";
}

TEST(LintFixtures, FlagSnippetsAreFlaggedAndOnlyByTheirOwnRule) {
  for (const auto& [rule, fixture] : fixture_cases()) {
    const Report report =
        lint_source(fixture.flag_path, read_fixture(fixture.flag_file));
    EXPECT_GE(count_rule(report, rule), 1)
        << rule << " flag fixture produced no " << rule << " finding";
    for (const Finding& finding : report.findings)
      EXPECT_EQ(finding.rule, rule)
          << rule << " flag fixture leaked a foreign finding (" << finding.rule
          << " at line " << finding.line << "); keep fixtures single-rule";
  }
}

TEST(LintFixtures, PassSnippetsAreCompletelyClean) {
  for (const auto& [rule, fixture] : fixture_cases()) {
    const Report report =
        lint_source(fixture.pass_path, read_fixture(fixture.pass_file));
    EXPECT_TRUE(report.clean())
        << rule << " pass fixture flagged: " << report.findings[0].rule << " ("
        << report.findings[0].message << ")";
  }
}

TEST(LintFixtures, FindingsCarryFileLineAndMessage) {
  const Report report = lint_source(
      "src/widget/flag.cpp", read_fixture("self-include-first/flag.cpp"));
  ASSERT_EQ(report.findings.size(), 1u);
  const Finding& finding = report.findings[0];
  EXPECT_EQ(finding.file, "src/widget/flag.cpp");
  EXPECT_GT(finding.line, 1);
  EXPECT_EQ(finding.rule, "self-include-first");
  EXPECT_NE(finding.message.find("widget/flag.hpp"), std::string::npos);
}

TEST(LintSuppressions, JustifiedAllowSilencesAndCountsAsUsedBudget) {
  const Report report = lint_source("tests/suppressed.cpp",
                                    read_fixture("suppression/suppressed.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("unordered-drain"));
  EXPECT_EQ(report.suppressions.at("unordered-drain").declared, 1);
  EXPECT_EQ(report.suppressions.at("unordered-drain").used, 1);
}

TEST(LintSuppressions, MultiLineJustificationStillReachesTheStatement) {
  // The allow() sits two comment lines above the loop; the suppression must
  // extend through the contiguous comment block to the code underneath.
  const std::string source =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int, int>& m) {\n"
      "  int sum = 0;\n"
      "  // pl-lint: allow(unordered-drain) a justification that\n"
      "  // needs a second line\n"
      "  // and a third one\n"
      "  for (const auto& [k, v] : m) sum += v;\n"
      "  return sum;\n"
      "}\n";
  EXPECT_TRUE(lint_source("tests/multi.cpp", source).clean());
}

TEST(LintSuppressions, AllowFileCoversEveryFindingOfThatRule) {
  const Report report = lint_source("tests/file_wide.cpp",
                                    read_fixture("suppression/file_wide.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("nondet-rand"));
  EXPECT_EQ(report.suppressions.at("nondet-rand").declared, 1);
  EXPECT_EQ(report.suppressions.at("nondet-rand").used, 2)
      << "both rand() call sites should burn the file-wide budget";
}

TEST(LintSuppressions, UnusedAllowStaysVisibleInTheBudget) {
  const Report report = lint_source(
      "tests/unused.cpp", read_fixture("suppression/unused_budget.cpp"));
  EXPECT_TRUE(report.clean());
  ASSERT_TRUE(report.suppressions.contains("naked-new"));
  EXPECT_EQ(report.suppressions.at("naked-new").declared, 1);
  EXPECT_EQ(report.suppressions.at("naked-new").used, 0);
}

TEST(LintSuppressions, AllowForOneRuleDoesNotSilenceAnother) {
  const std::string source =
      "#include <cstdlib>\n"
      "// pl-lint: allow(naked-new) wrong rule on purpose\n"
      "int f() { return std::rand(); }\n";
  const Report report = lint_source("tests/wrong_rule.cpp", source);
  EXPECT_EQ(count_rule(report, "nondet-rand"), 1);
}

TEST(LintReport, MergeAccumulatesFindingsAndBudgets) {
  Report merged = lint_source("tests/file_wide.cpp",
                              read_fixture("suppression/file_wide.cpp"));
  merged.merge(lint_source("src/widget/flag.cpp",
                           read_fixture("self-include-first/flag.cpp")));
  EXPECT_EQ(merged.files_scanned, 2);
  EXPECT_EQ(count_rule(merged, "self-include-first"), 1);
  EXPECT_EQ(merged.suppressions.at("nondet-rand").used, 2);
}

TEST(LintReport, JsonRoundTripPreservesTheReport) {
  Report report = lint_source("src/widget/flag.cpp",
                              read_fixture("self-include-first/flag.cpp"));
  report.merge(lint_source("tests/suppressed.cpp",
                           read_fixture("suppression/suppressed.cpp")));
  const std::string json = pl::lint::report_json(report, "/virtual/root");

  const auto parsed = pl::lint::report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->findings, report.findings);
  EXPECT_EQ(parsed->suppressions, report.suppressions);
  EXPECT_EQ(parsed->files_scanned, report.files_scanned);
  EXPECT_EQ(parsed->clean(), report.clean());
}

TEST(LintReport, JsonParserRejectsGarbageAndForeignSchemas) {
  EXPECT_FALSE(pl::lint::report_from_json("not json").has_value());
  EXPECT_FALSE(
      pl::lint::report_from_json("{\"schema\": \"other/9\"}").has_value());
}

TEST(LintReport, TimingBlockLandsInTheJsonReport) {
  const Report report = lint_source(
      "src/widget/pass.cpp", read_fixture("naked-new/pass.cpp"));
  const std::map<std::string, double> timing = {{"analyze", 1.25},
                                                {"extract", 12.5}};
  const std::string json =
      pl::lint::report_json(report, "/virtual/root", &timing);
  EXPECT_NE(json.find("\"timing_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"extract\""), std::string::npos);
  EXPECT_NE(json.find("12.5"), std::string::npos);
  // Omitting the block keeps the report schema identical to older readers.
  EXPECT_EQ(pl::lint::report_json(report, "/virtual/root")
                .find("\"timing_ms\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Whole-program passes, driven through extract_file_model + analyze_program
// over small virtual projects assembled from fixture files.

FileModel model_of(const std::string& fixture, const std::string& virt) {
  return extract_file_model(virt, read_fixture(fixture));
}

int analysis_count(const ProgramAnalysis& analysis, const std::string& rule) {
  return count_rule(analysis.report, rule);
}

TEST(LintLayers, UpwardIncludeFlagsDownwardIncludePasses) {
  const auto manifest = parse_layers("low < high");
  ASSERT_TRUE(manifest.has_value());

  std::vector<FileModel> flagged;
  flagged.push_back(
      model_of("layer-violation/flag.hpp", "src/low/widget.hpp"));
  flagged.push_back(
      model_of("layer-violation/high_util.hpp", "src/high/util.hpp"));
  const ProgramAnalysis bad = analyze_program(flagged, *manifest);
  ASSERT_EQ(analysis_count(bad, "layer-violation"), 1);
  const Finding& finding = bad.report.findings[0];
  EXPECT_EQ(finding.file, "src/low/widget.hpp");
  EXPECT_NE(finding.message.find("must not include src/high"),
            std::string::npos);

  std::vector<FileModel> clean;
  clean.push_back(
      model_of("layer-violation/pass.hpp", "src/high/widget.hpp"));
  clean.push_back(
      model_of("layer-violation/low_base.hpp", "src/low/base.hpp"));
  EXPECT_EQ(analysis_count(analyze_program(clean, *manifest),
                           "layer-violation"),
            0);
}

TEST(LintLayers, JustifiedAllowAbsorbsTheViolationIntoTheBudget) {
  const auto manifest = parse_layers("low < high");
  ASSERT_TRUE(manifest.has_value());
  std::vector<FileModel> models;
  models.push_back(
      model_of("layer-violation/suppressed.hpp", "src/low/widget.hpp"));
  models.push_back(
      model_of("layer-violation/high_util.hpp", "src/high/util.hpp"));
  const ProgramAnalysis analysis = analyze_program(models, *manifest);
  EXPECT_EQ(analysis_count(analysis, "layer-violation"), 0);
  ASSERT_TRUE(analysis.report.suppressions.contains("layer-violation"));
  EXPECT_EQ(analysis.report.suppressions.at("layer-violation").used, 1);
}

TEST(LintLayers, SubsystemMissingFromManifestIsItselfAFinding) {
  const auto manifest = parse_layers("low < high");
  ASSERT_TRUE(manifest.has_value());
  std::vector<FileModel> models;
  // The flag fixture linted under an unlisted subsystem name.
  models.push_back(
      model_of("layer-violation/flag.hpp", "src/mystery/widget.hpp"));
  models.push_back(
      model_of("layer-violation/high_util.hpp", "src/high/util.hpp"));
  const ProgramAnalysis analysis = analyze_program(models, *manifest);
  ASSERT_EQ(analysis_count(analysis, "layer-violation"), 1);
  EXPECT_NE(analysis.report.findings[0].message.find("not listed"),
            std::string::npos);
}

TEST(LintCycles, MutualIncludeFlagsOnceAnchoredAtSmallestMember) {
  std::vector<FileModel> models;
  models.push_back(model_of("include-cycle/cyc_a.hpp", "src/util/cyc_a.hpp"));
  models.push_back(model_of("include-cycle/cyc_b.hpp", "src/util/cyc_b.hpp"));
  const ProgramAnalysis analysis = analyze_program(models, LayerManifest{});
  ASSERT_EQ(analysis_count(analysis, "include-cycle"), 1);
  const Finding& finding = analysis.report.findings[0];
  EXPECT_EQ(finding.file, "src/util/cyc_a.hpp");
  EXPECT_NE(finding.message.find("src/util/cyc_a.hpp -> src/util/cyc_b.hpp"),
            std::string::npos);
}

TEST(LintCycles, AcyclicChainPassesAndAllowAbsorbs) {
  std::vector<FileModel> chain;
  chain.push_back(
      model_of("include-cycle/chain_a.hpp", "src/util/chain_a.hpp"));
  chain.push_back(
      model_of("include-cycle/chain_b.hpp", "src/util/chain_b.hpp"));
  EXPECT_EQ(analysis_count(analyze_program(chain, LayerManifest{}),
                           "include-cycle"),
            0);

  std::vector<FileModel> suppressed;
  suppressed.push_back(
      model_of("include-cycle/sup_a.hpp", "src/util/sup_a.hpp"));
  suppressed.push_back(
      model_of("include-cycle/sup_b.hpp", "src/util/sup_b.hpp"));
  const ProgramAnalysis analysis =
      analyze_program(suppressed, LayerManifest{});
  EXPECT_EQ(analysis_count(analysis, "include-cycle"), 0);
  ASSERT_TRUE(analysis.report.suppressions.contains("include-cycle"));
  EXPECT_EQ(analysis.report.suppressions.at("include-cycle").used, 1);
}

TEST(LintTaint, SinkAndTransitiveCallerFlagUntilDetOkDeclaresTheBoundary) {
  std::vector<FileModel> flagged;
  flagged.push_back(
      model_of("determinism-taint/flag.cpp", "src/util/stamp.cpp"));
  const ProgramAnalysis bad = analyze_program(flagged, LayerManifest{});
  EXPECT_EQ(analysis_count(bad, "determinism-taint"), 2)
      << "both the sink function and its caller must taint";
  ASSERT_EQ(bad.taint.size(), 2u);
  for (const pl::lint::TaintWitness& witness : bad.taint) {
    EXPECT_EQ(witness.sink.kind, "clock");
    EXPECT_EQ(witness.path.back(), "pl::util::stamp_ms");
  }

  std::vector<FileModel> clean;
  clean.push_back(
      model_of("determinism-taint/pass.cpp", "src/util/stamp.cpp"));
  const ProgramAnalysis good = analyze_program(clean, LayerManifest{});
  EXPECT_EQ(analysis_count(good, "determinism-taint"), 0);
  EXPECT_EQ(good.det_ok_used, 1)
      << "the boundary annotation must count as used";
}

TEST(LintDeadApi, UnreferencedHeaderHelperFlagsCrossTuReferenceClears) {
  std::vector<FileModel> flagged;
  flagged.push_back(
      model_of("dead-public-api/flag.hpp", "src/widget/api.hpp"));
  const ProgramAnalysis bad = analyze_program(flagged, LayerManifest{});
  ASSERT_EQ(analysis_count(bad, "dead-public-api"), 1);
  EXPECT_NE(
      bad.report.findings[0].message.find("pl::widget::helper_answer"),
      std::string::npos);
  ASSERT_EQ(bad.dead.size(), 1u);
  EXPECT_EQ(bad.dead[0].qname, "pl::widget::helper_answer");

  // The two-file mini-project: a consumer in another TU keeps it alive.
  std::vector<FileModel> alive;
  alive.push_back(model_of("dead-public-api/flag.hpp", "src/widget/api.hpp"));
  alive.push_back(
      model_of("dead-public-api/consumer.cpp", "src/other/use.cpp"));
  EXPECT_EQ(analysis_count(analyze_program(alive, LayerManifest{}),
                           "dead-public-api"),
            0);
}

TEST(LintDeadApi, JustifiedAllowAbsorbsTheFinding) {
  std::vector<FileModel> models;
  models.push_back(
      model_of("dead-public-api/suppressed.hpp", "src/widget/api.hpp"));
  const ProgramAnalysis analysis = analyze_program(models, LayerManifest{});
  EXPECT_EQ(analysis_count(analysis, "dead-public-api"), 0);
  ASSERT_TRUE(analysis.report.suppressions.contains("dead-public-api"));
  EXPECT_EQ(analysis.report.suppressions.at("dead-public-api").used, 1);
}

TEST(LintGraph, GoldenRoundTripPreservesTheProgramModel) {
  const auto manifest = parse_layers("util < low < high");
  ASSERT_TRUE(manifest.has_value());
  std::vector<FileModel> models;
  models.push_back(
      model_of("layer-violation/flag.hpp", "src/low/widget.hpp"));
  models.push_back(
      model_of("layer-violation/high_util.hpp", "src/high/util.hpp"));
  models.push_back(
      model_of("determinism-taint/flag.cpp", "src/util/stamp.cpp"));
  const ProgramAnalysis analysis = analyze_program(models, *manifest);
  ASSERT_FALSE(analysis.edges.empty());
  ASSERT_FALSE(analysis.taint.empty());

  const std::string json =
      pl::lint::graph_json(analysis, *manifest, models, "/virtual/root");
  EXPECT_NE(json.find("\"pl-graph/1\""), std::string::npos);

  const auto doc = pl::lint::graph_from_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->edges, analysis.edges);
  EXPECT_EQ(doc->taint, analysis.taint);
  EXPECT_EQ(doc->dead, analysis.dead);
  EXPECT_EQ(doc->functions, analysis.functions);
  EXPECT_EQ(doc->calls, analysis.calls);
  const std::vector<std::vector<std::string>> levels = {
      {"util"}, {"low"}, {"high"}};
  EXPECT_EQ(doc->levels, levels);
  bool saw_stamp = false;
  for (const auto& [file, subsystem] : doc->nodes)
    if (file == "src/util/stamp.cpp") {
      EXPECT_EQ(subsystem, "util");
      saw_stamp = true;
    }
  EXPECT_TRUE(saw_stamp);

  EXPECT_FALSE(pl::lint::graph_from_json("{\"schema\": \"other/9\"}")
                   .has_value());
}

// ---------------------------------------------------------------------------
// Performance contract: re-linting an unchanged tree through the cache must
// stay within 2x the old single-pass (per-file rules only) time — the
// whole-program model cannot make the warm gate feel slower than the
// pre-model linter.

TEST(LintTiming, WarmCacheStaysWithinTwiceTheSinglePassTime) {
  namespace fs = std::filesystem;
  const fs::path root = PL_REPO_ROOT;
  std::vector<std::pair<std::string, std::string>> files;
  for (const char* top : {"src", "tools"}) {
    for (fs::recursive_directory_iterator it(root / top), end; it != end;
         ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream content;
      content << in.rdbuf();
      files.emplace_back(
          fs::relative(it->path(), root).generic_string(), content.str());
    }
  }
  ASSERT_GT(files.size(), 50u) << "repo scan came up implausibly short";

  // pl-lint: allow(nondet-time) wall-clock measurement is the point of this
  // timing-contract test
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  // Pre-PR behaviour: per-file rules only, no model, no cache.
  const auto single_start = Clock::now();
  for (const auto& [relpath, content] : files)
    lint_source(relpath, content);
  const double single_ms = ms_since(single_start);

  // Cold: full model extraction (includes the per-file rules).
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [relpath, content] : files)
    models.push_back(extract_file_model(relpath, content));

  // Warm: hash-check every file against the cached model, then rerun only
  // the whole-program analysis — what `pl_lint_tree` does on a no-change
  // rebuild.
  const auto warm_start = Clock::now();
  int reused = 0;
  for (std::size_t i = 0; i < files.size(); ++i)
    if (pl::lint::content_hash(files[i].second) == models[i].hash) ++reused;
  const ProgramAnalysis analysis = analyze_program(models, LayerManifest{});
  const double warm_ms = ms_since(warm_start);

  EXPECT_EQ(reused, static_cast<int>(files.size()));
  EXPECT_GT(analysis.functions, 0);
  EXPECT_LE(warm_ms, 2.0 * single_ms + 20.0)
      << "warm relint took " << warm_ms << "ms vs single-pass " << single_ms
      << "ms";
}

}  // namespace
