#include <gtest/gtest.h>

#include "asn/asn.hpp"
#include "asn/country.hpp"
#include "asn/rir.hpp"

namespace pl::asn {
namespace {

TEST(Asn, WidthClassification) {
  EXPECT_TRUE(Asn{1}.is_16bit());
  EXPECT_TRUE(Asn{65535}.is_16bit());
  EXPECT_FALSE(Asn{65536}.is_16bit());
  EXPECT_TRUE(Asn{131072}.is_32bit_only());
}

TEST(Asn, SpecialUseRanges) {
  EXPECT_EQ(special_use(Asn{0}), SpecialUse::kAs0);
  EXPECT_EQ(special_use(Asn{23456}), SpecialUse::kTransition);
  EXPECT_EQ(special_use(Asn{64496}), SpecialUse::kDocumentation);
  EXPECT_EQ(special_use(Asn{64511}), SpecialUse::kDocumentation);
  EXPECT_EQ(special_use(Asn{65536}), SpecialUse::kDocumentation);
  EXPECT_EQ(special_use(Asn{65551}), SpecialUse::kDocumentation);
  EXPECT_EQ(special_use(Asn{64512}), SpecialUse::kPrivateUse);
  EXPECT_EQ(special_use(Asn{65534}), SpecialUse::kPrivateUse);
  EXPECT_EQ(special_use(Asn{4200000000U}), SpecialUse::kPrivateUse);
  EXPECT_EQ(special_use(Asn{4294967294U}), SpecialUse::kPrivateUse);
  EXPECT_EQ(special_use(Asn{65535}), SpecialUse::kLastAsn);
  EXPECT_EQ(special_use(Asn{4294967295U}), SpecialUse::kLastAsn);
  EXPECT_EQ(special_use(Asn{3356}), SpecialUse::kNone);
  EXPECT_EQ(special_use(Asn{65552}), SpecialUse::kNone);
}

TEST(Asn, Bogons) {
  EXPECT_TRUE(is_bogon(Asn{0}));
  EXPECT_TRUE(is_bogon(Asn{64512}));
  EXPECT_FALSE(is_bogon(Asn{701}));
  EXPECT_FALSE(is_bogon(Asn{290012147}));  // large but valid (paper 6.4)
}

TEST(Asn, DigitCount) {
  EXPECT_EQ(digit_count(Asn{0}), 1);
  EXPECT_EQ(digit_count(Asn{9}), 1);
  EXPECT_EQ(digit_count(Asn{10}), 2);
  EXPECT_EQ(digit_count(Asn{999999}), 6);
  EXPECT_EQ(digit_count(Asn{4294967295U}), 10);
}

TEST(Asn, Parse) {
  EXPECT_EQ(parse_asn("32026"), Asn{32026});
  EXPECT_EQ(parse_asn("4294967295"), Asn{4294967295U});
  EXPECT_FALSE(parse_asn("4294967296").has_value());
  EXPECT_FALSE(parse_asn("").has_value());
  EXPECT_FALSE(parse_asn("12x").has_value());
  EXPECT_FALSE(parse_asn("-1").has_value());
  EXPECT_FALSE(parse_asn("99999999999").has_value());
}

TEST(Asn, DoubledSpelling) {
  // The paper's AS3202632026 = AS32026 prepending typo.
  EXPECT_TRUE(is_doubled_spelling(Asn{3202632026U}, Asn{32026}));
  EXPECT_FALSE(is_doubled_spelling(Asn{3202632027U}, Asn{32026}));
  EXPECT_TRUE(is_doubled_spelling(Asn{1212}, Asn{12}));
  EXPECT_FALSE(is_doubled_spelling(Asn{1213}, Asn{12}));
}

TEST(Asn, SpellingDistance) {
  // The paper's AS419333 vs AS41933 one-digit cases.
  EXPECT_EQ(spelling_distance(Asn{419333}, Asn{41933}), 1);
  EXPECT_EQ(spelling_distance(Asn{363690}, Asn{393690}), 1);
  EXPECT_EQ(spelling_distance(Asn{12345}, Asn{12345}), 0);
  EXPECT_EQ(spelling_distance(Asn{111}, Asn{999}), 3);
}

TEST(Rir, Tokens) {
  EXPECT_EQ(file_token(Rir::kRipeNcc), "ripencc");
  EXPECT_EQ(display_name(Rir::kRipeNcc), "RIPE NCC");
  EXPECT_EQ(parse_rir("apnic"), Rir::kApnic);
  EXPECT_EQ(parse_rir("RIPENCC"), Rir::kRipeNcc);
  EXPECT_EQ(parse_rir("ripe"), Rir::kRipeNcc);
  EXPECT_EQ(parse_rir(" arin "), Rir::kArin);
  EXPECT_FALSE(parse_rir("internic").has_value());
}

TEST(Rir, PaperFacts) {
  // Table 1 anchors.
  EXPECT_EQ(util::format_iso(facts(Rir::kApnic).first_regular_file),
            "2003-10-09");
  EXPECT_EQ(util::format_iso(facts(Rir::kAfrinic).first_regular_file),
            "2005-02-18");
  EXPECT_EQ(util::format_iso(facts(Rir::kRipeNcc).first_extended_file),
            "2010-04-22");
  ASSERT_TRUE(facts(Rir::kArin).last_regular_file.has_value());
  EXPECT_EQ(util::format_iso(*facts(Rir::kArin).last_regular_file),
            "2013-08-12");
  EXPECT_FALSE(facts(Rir::kRipeNcc).last_regular_file.has_value());
  EXPECT_EQ(util::format_iso(archive_begin_day()), "2003-10-09");
  EXPECT_EQ(util::format_iso(archive_end_day()), "2021-03-01");
}

TEST(Country, Parse) {
  const auto us = CountryCode::parse("US");
  ASSERT_TRUE(us.has_value());
  EXPECT_EQ(us->to_string(), "US");
  EXPECT_EQ(CountryCode::parse("us")->to_string(), "US");
  EXPECT_FALSE(CountryCode::parse("U").has_value());
  EXPECT_FALSE(CountryCode::parse("USA").has_value());
  EXPECT_FALSE(CountryCode::parse("U1").has_value());
  EXPECT_TRUE(kUnknownCountry.unknown());
  EXPECT_EQ(kUnknownCountry.to_string(), "ZZ");
}

TEST(Country, PoolsMatchPaperShapes) {
  // ARIN dominated by the US.
  const auto arin = country_pool(Rir::kArin, 2020);
  ASSERT_FALSE(arin.empty());
  EXPECT_EQ(arin.front().country.to_string(), "US");
  EXPECT_GT(arin.front().weight, 90);

  // APNIC leadership changes era to era (Table 4): AU -> IN.
  EXPECT_EQ(country_pool(Rir::kApnic, 2010).front().country.to_string(),
            "AU");
  EXPECT_EQ(country_pool(Rir::kApnic, 2021).front().country.to_string(),
            "IN");

  // LACNIC led by Brazil, RIPE by Russia, AfriNIC by South Africa.
  EXPECT_EQ(country_pool(Rir::kLacnic, 2020).front().country.to_string(),
            "BR");
  EXPECT_EQ(country_pool(Rir::kRipeNcc, 2020).front().country.to_string(),
            "RU");
  EXPECT_EQ(country_pool(Rir::kAfrinic, 2020).front().country.to_string(),
            "ZA");
}

}  // namespace
}  // namespace pl::asn
