// Seed-robustness sweep: the full pipeline must satisfy its structural
// invariants — and stay within coarse calibration bands — for any seed, not
// just the tuned defaults. Catches calibration fragility.
#include <gtest/gtest.h>

#include "bgpsim/route_gen.hpp"
#include "joint/taxonomy.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"

namespace pl {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PipelineInvariantsHoldForAnySeed) {
  const std::uint64_t seed = GetParam();
  constexpr double kScale = 0.03;

  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(seed, kScale));
  ASSERT_GT(truth.lives.size(), 1000u);

  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed * 3 + 1;
  op_config.attacks.seed = seed * 5 + 2;
  op_config.attacks.scale = kScale;
  op_config.misconfigs.seed = seed * 7 + 3;
  op_config.misconfigs.scale = kScale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);

  rirsim::InjectorConfig injector;
  injector.seed = seed * 11 + 4;
  injector.scale = kScale;
  const rirsim::SimulatedArchive archive(truth, injector);
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir rir : asn::kAllRirs)
    streams[asn::index_of(rir)] = archive.stream(rir);
  const restore::RestoredArchive restored = restore::restore_archive(
      std::move(streams), restore::RestoreConfig{}, &truth.erx,
      [&](asn::Asn a) { return truth.iana.owner(a); }, truth.archive_begin,
      &op_world.activity);

  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(op_world.activity);
  const joint::Taxonomy taxonomy = joint::classify(admin, op);

  // Structural invariants.
  EXPECT_EQ(taxonomy.total_admin(),
            static_cast<std::int64_t>(admin.lifetimes.size()));
  EXPECT_EQ(taxonomy.total_op(),
            static_cast<std::int64_t>(op.lifetimes.size()));
  for (const auto& [asn_value, indices] : admin.by_asn)
    for (std::size_t k = 1; k < indices.size(); ++k)
      ASSERT_LT(admin.lifetimes[indices[k - 1]].days.last,
                admin.lifetimes[indices[k]].days.first)
          << "seed " << seed << " asn " << asn_value;

  // Coarse calibration bands (wider than the tuned-seed integration test).
  const double total = static_cast<double>(taxonomy.total_admin());
  EXPECT_NEAR(static_cast<double>(taxonomy.admin_counts[0]) / total, 0.786,
              0.08);
  EXPECT_NEAR(static_cast<double>(taxonomy.admin_counts[1]) / total, 0.034,
              0.03);
  EXPECT_NEAR(static_cast<double>(taxonomy.admin_counts[2]) / total, 0.179,
              0.07);
  EXPECT_GT(taxonomy.op_counts[3], 0);

  // The recovered lifetime count tracks the observable truth within 5%.
  std::size_t observable = 0;
  for (const rirsim::TrueAdminLife& life : truth.lives)
    for (const rirsim::RegistrySegment& segment : life.segments) {
      const asn::RirFacts& facts = asn::facts(segment.rir);
      if (segment.days.last >= facts.first_regular_file &&
          segment.days.first <= truth.archive_end) {
        ++observable;
        break;
      }
    }
  EXPECT_NEAR(static_cast<double>(admin.lifetimes.size()),
              static_cast<double>(observable),
              0.05 * static_cast<double>(observable));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(2026, 777, 31415));

}  // namespace
}  // namespace pl
