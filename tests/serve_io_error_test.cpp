// Error paths of serve::load_snapshot and the Listing-1 dataset loaders:
// malformed JSON, missing fields, reversed intervals, and duplicate /
// overlapping per-ASN lifetimes must come back as precise Status codes —
// never as a snapshot quietly built from default-constructed rows.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lifetimes/dataset_io.hpp"
#include "serve/io.hpp"

namespace pl::serve {
namespace {

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

constexpr const char* kGoodAdmin =
    R"({"ASN":65001,"regDate":"2005-03-01","startdate":"2005-03-01","enddate":"2009-12-31","status":"allocated","registry":"ripencc"})"
    "\n"
    R"({"ASN":65002,"regDate":"2006-01-15","startdate":"2006-01-15","enddate":"2010-06-30","status":"allocated","registry":"arin"})"
    "\n";

constexpr const char* kGoodOp =
    R"({"ASN":65001,"startdate":"2005-04-01","enddate":"2009-11-30"})"
    "\n";

TEST(ServeIoError, LoadsTheWellFormedBaseline) {
  // Guard: the fixture itself is loadable, so every failure below is caused
  // by the specific defect each case injects.
  const std::string admin = write_temp("io_ok_admin.jsonl", kGoodAdmin);
  const std::string op = write_temp("io_ok_op.jsonl", kGoodOp);
  auto snapshot = load_snapshot(admin, op);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().to_string();
  EXPECT_EQ(snapshot->asn_count(), 2u);
  EXPECT_FALSE(snapshot->can_advance());
}

TEST(ServeIoError, MissingFilesAreUnavailable) {
  const std::string missing = testing::TempDir() + "io_no_such_file.jsonl";
  const std::string op = write_temp("io_files_op.jsonl", kGoodOp);
  EXPECT_EQ(load_snapshot(missing, op).status().code(),
            pl::StatusCode::kUnavailable);
  const std::string admin = write_temp("io_files_admin.jsonl", kGoodAdmin);
  EXPECT_EQ(load_snapshot(admin, missing).status().code(),
            pl::StatusCode::kUnavailable);
}

TEST(ServeIoError, MalformedJsonLineIsDataLossNamingTheLine) {
  const std::string admin = write_temp(
      "io_malformed_admin.jsonl",
      std::string(kGoodAdmin) + "this is not a Listing-1 record\n");
  const std::string op = write_temp("io_malformed_op.jsonl", kGoodOp);
  const auto status = load_snapshot(admin, op).status();
  EXPECT_EQ(status.code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.to_string();
}

TEST(ServeIoError, MissingFieldIsDataLoss) {
  // A record without its enddate: structurally JSON, semantically short.
  const std::string admin = write_temp(
      "io_nofield_admin.jsonl",
      R"({"ASN":65001,"regDate":"2005-03-01","startdate":"2005-03-01","registry":"ripencc"})"
      "\n");
  const std::string op = write_temp("io_nofield_op.jsonl", kGoodOp);
  EXPECT_EQ(load_snapshot(admin, op).status().code(),
            pl::StatusCode::kDataLoss);

  const std::string admin_ok = write_temp("io_nofield2_admin.jsonl", kGoodAdmin);
  const std::string op_bad = write_temp(
      "io_nofield2_op.jsonl", R"({"ASN":65001,"startdate":"2005-04-01"})"
                              "\n");
  EXPECT_EQ(load_snapshot(admin_ok, op_bad).status().code(),
            pl::StatusCode::kDataLoss);
}

TEST(ServeIoError, UnparsableDateOrRegistryIsDataLoss) {
  const std::string admin = write_temp(
      "io_baddate_admin.jsonl",
      R"({"ASN":65001,"regDate":"2005-13-77","startdate":"2005-03-01","enddate":"2009-12-31","status":"allocated","registry":"ripencc"})"
      "\n");
  const std::string op = write_temp("io_baddate_op.jsonl", kGoodOp);
  EXPECT_EQ(load_snapshot(admin, op).status().code(),
            pl::StatusCode::kDataLoss);

  const std::string admin_badrir = write_temp(
      "io_badrir_admin.jsonl",
      R"({"ASN":65001,"regDate":"2005-03-01","startdate":"2005-03-01","enddate":"2009-12-31","status":"allocated","registry":"notarir"})"
      "\n");
  EXPECT_EQ(load_snapshot(admin_badrir, op).status().code(),
            pl::StatusCode::kDataLoss);
}

TEST(ServeIoError, DuplicateAdminLifetimesAreDataLossNamingTheAsn) {
  // The same ASN twice with overlapping intervals — the builder never
  // emits this, so a file carrying it is damaged or hand-edited.
  const std::string admin = write_temp(
      "io_dup_admin.jsonl",
      std::string(kGoodAdmin) +
          R"({"ASN":65001,"regDate":"2005-03-01","startdate":"2007-01-01","enddate":"2011-01-01","status":"allocated","registry":"ripencc"})"
          "\n");
  const std::string op = write_temp("io_dup_op.jsonl", kGoodOp);
  const auto status = load_snapshot(admin, op).status();
  EXPECT_EQ(status.code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("AS65001"), std::string::npos)
      << status.to_string();
}

TEST(ServeIoError, ExactDuplicateOpRecordIsDataLoss) {
  const std::string admin = write_temp("io_dupop_admin.jsonl", kGoodAdmin);
  const std::string op = write_temp(
      "io_dupop_op.jsonl", std::string(kGoodOp) + std::string(kGoodOp));
  const auto status = load_snapshot(admin, op).status();
  EXPECT_EQ(status.code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("AS65001"), std::string::npos);
}

TEST(ServeIoError, DisjointLifetimesForOneAsnAreFine) {
  // Multiple lives per ASN are the paper's whole point — only OVERLAP is
  // damage. Two disjoint admin lives and two disjoint op lives load.
  const std::string admin = write_temp(
      "io_disjoint_admin.jsonl",
      std::string(kGoodAdmin) +
          R"({"ASN":65001,"regDate":"2012-01-01","startdate":"2012-01-01","enddate":"2014-01-01","status":"allocated","registry":"ripencc"})"
          "\n");
  const std::string op = write_temp(
      "io_disjoint_op.jsonl",
      std::string(kGoodOp) +
          R"({"ASN":65001,"startdate":"2012-02-01","enddate":"2013-06-30"})"
          "\n");
  auto snapshot = load_snapshot(admin, op);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().to_string();
  const AsnRow* row = snapshot->find(asn::Asn{65001});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->admin_count, 2u);
  EXPECT_EQ(row->op_count, 2u);
}

TEST(ServeIoError, StreamLoadersRejectOverlapToo) {
  // The stream-level API (no file indirection) reports the same codes.
  std::stringstream admin;
  admin << R"({"ASN":7,"regDate":"2001-01-01","startdate":"2001-01-01","enddate":"2003-01-01","status":"allocated","registry":"arin"})"
        << '\n'
        << R"({"ASN":7,"regDate":"2001-01-01","startdate":"2002-06-01","enddate":"2004-01-01","status":"allocated","registry":"arin"})"
        << '\n';
  const auto loaded = lifetimes::load_admin_json(admin);
  EXPECT_EQ(loaded.status().code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("AS7"), std::string::npos);
}

}  // namespace
}  // namespace pl::serve
