// The serving layer: Status plumbing, dataset round-trips, snapshot
// queries, the QueryService cache ledger, and the pipeline post_stage hook.
#include <gtest/gtest.h>

#include <sstream>

#include "lifetimes/dataset_io.hpp"
#include "obs/export.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/io.hpp"
#include "serve/query.hpp"
#include "serve/serving.hpp"
#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::serve {
namespace {

pipeline::Result small_pipeline() {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.02;
  return pipeline::run_simulated(config);
}

Snapshot small_snapshot(const pipeline::Result& result) {
  return Snapshot::build(result.restored, result.op_world.activity,
                         result.truth.archive_end);
}

TEST(Status, DefaultIsOkAndFactoriesCarryCodes) {
  pl::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");

  const pl::Status bad = pl::invalid_argument_error("day out of order");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), pl::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.to_string(), "invalid-argument: day out of order");
  EXPECT_NE(ok, bad);
}

TEST(Status, StatusOrHoldsValueOrError) {
  pl::StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);

  pl::StatusOr<int> error = pl::not_found_error("no such asn");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), pl::StatusCode::kNotFound);
}

TEST(DatasetIo, AdminJsonRoundTripsListingFields) {
  const pipeline::Result result = small_pipeline();
  std::stringstream stream;
  ASSERT_TRUE(lifetimes::save_admin_json(stream, result.admin).ok());

  pl::StatusOr<lifetimes::AdminDataset> loaded =
      lifetimes::load_admin_json(stream);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->lifetimes.size(), result.admin.lifetimes.size());
  for (std::size_t i = 0; i < loaded->lifetimes.size(); ++i) {
    const lifetimes::AdminLifetime& in = result.admin.lifetimes[i];
    const lifetimes::AdminLifetime& out = loaded->lifetimes[i];
    EXPECT_EQ(out.asn, in.asn);
    EXPECT_EQ(out.registration_date, in.registration_date);
    EXPECT_EQ(out.days, in.days);
    EXPECT_EQ(out.registry, in.registry);
  }
  EXPECT_EQ(loaded->by_asn.size(), result.admin.by_asn.size());
}

TEST(DatasetIo, OpJsonRoundTripsExactly) {
  const pipeline::Result result = small_pipeline();
  std::stringstream stream;
  ASSERT_TRUE(lifetimes::save_op_json(stream, result.op).ok());

  pl::StatusOr<lifetimes::OpDataset> loaded = lifetimes::load_op_json(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->lifetimes, result.op.lifetimes);
  EXPECT_EQ(loaded->by_asn, result.op.by_asn);
}

TEST(DatasetIo, MalformedLineFailsWithDataLossNamingTheLine) {
  std::stringstream stream;
  stream << R"({"ASN":65000,"startdate":"2010-01-01","enddate":"2010-02-01"})"
         << '\n'
         << "this is not a record\n";
  const pl::StatusOr<lifetimes::OpDataset> loaded =
      lifetimes::load_op_json(stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetIo, RejectsReversedInterval) {
  std::stringstream stream;
  stream << R"({"ASN":65000,"startdate":"2010-02-01","enddate":"2010-01-01"})"
         << '\n';
  EXPECT_EQ(lifetimes::load_op_json(stream).status().code(),
            pl::StatusCode::kDataLoss);
}

TEST(DatasetIo, StatusSaversProduceRecords) {
  const pipeline::Result result = small_pipeline();
  std::stringstream json;
  ASSERT_TRUE(lifetimes::save_op_json(json, result.op).ok());
  EXPECT_NE(json.str().find("\"ASN\":"), std::string::npos);
  std::stringstream csv;
  ASSERT_TRUE(lifetimes::save_admin_csv(csv, result.admin).ok());
  EXPECT_NE(csv.str().find("asn,reg_date"), std::string::npos);
}

TEST(Snapshot, AgreesWithPipelineDatasets) {
  const pipeline::Result result = small_pipeline();
  const Snapshot snapshot = small_snapshot(result);

  EXPECT_EQ(snapshot.archive_end(), result.truth.archive_end);
  EXPECT_EQ(snapshot.admin_life_count(), result.admin.lifetimes.size());
  EXPECT_EQ(snapshot.op_life_count(), result.op.lifetimes.size());
  EXPECT_TRUE(snapshot.can_advance());

  // Every admin life of every ASN appears on its row in dataset order, and
  // the row's taxonomy classes match the global classification.
  for (const auto& [asn_value, indices] : result.admin.by_asn) {
    const AsnRow* row = snapshot.find(asn::Asn{asn_value});
    ASSERT_NE(row, nullptr);
    const auto lives = snapshot.admin_lives(*row);
    ASSERT_EQ(lives.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(lives[i].life, result.admin.lifetimes[indices[i]]);
      EXPECT_EQ(lives[i].category,
                result.taxonomy.admin_category[indices[i]]);
    }
  }
  for (const auto& [asn_value, indices] : result.op.by_asn) {
    const AsnRow* row = snapshot.find(asn::Asn{asn_value});
    ASSERT_NE(row, nullptr);
    const auto lives = snapshot.op_lives(*row);
    ASSERT_EQ(lives.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(lives[i].life, result.op.lifetimes[indices[i]]);
      EXPECT_EQ(lives[i].category, result.taxonomy.op_category[indices[i]]);
    }
  }
}

TEST(Snapshot, CensusMatchesLinearCount) {
  const pipeline::Result result = small_pipeline();
  const Snapshot snapshot = small_snapshot(result);

  const util::Day mid =
      (result.truth.archive_begin + result.truth.archive_end) / 2;
  for (const util::Day day :
       {result.truth.archive_begin, mid, result.truth.archive_end}) {
    std::int64_t admin_alive = 0;
    for (const lifetimes::AdminLifetime& life : result.admin.lifetimes)
      if (life.days.contains(day)) ++admin_alive;
    std::int64_t op_alive = 0;
    for (const lifetimes::OpLifetime& life : result.op.lifetimes)
      if (life.days.contains(day)) ++op_alive;
    const AliveCensus census = snapshot.alive_census(day);
    EXPECT_EQ(census.admin_alive, admin_alive) << "day " << day;
    EXPECT_EQ(census.op_alive, op_alive) << "day " << day;
  }
}

TEST(Snapshot, FindMissesUnknownAsn) {
  const pipeline::Result result = small_pipeline();
  const Snapshot snapshot = small_snapshot(result);
  EXPECT_EQ(snapshot.find(asn::Asn{4294967295u}), nullptr);
}

TEST(QueryService, SecondIdenticalBatchIsAllHits) {
  const pipeline::Result result = small_pipeline();
  QueryService service(small_snapshot(result));

  std::vector<asn::Asn> batch;
  for (const auto& [asn_value, indices] : result.admin.by_asn) {
    batch.push_back(asn::Asn{asn_value});
    if (batch.size() == 64) break;
  }
  const std::vector<AsnAnswer> first = service.lookup_batch(batch);
  const std::vector<AsnAnswer> second = service.lookup_batch(batch);
  EXPECT_EQ(first, second);

  if (obs::kEnabled) {
    const obs::Snapshot metrics = service.report().metrics;
    EXPECT_EQ(metrics.counter_value("pl_serve_cache_misses"),
              static_cast<std::int64_t>(batch.size()));
    EXPECT_EQ(metrics.counter_value("pl_serve_cache_hits"),
              static_cast<std::int64_t>(batch.size()));
  }
}

TEST(QueryService, TinyCacheEvicts) {
  const pipeline::Result result = small_pipeline();
  QueryConfig config;
  config.cache_capacity = 8;
  QueryService service(small_snapshot(result), config);

  std::vector<asn::Asn> batch;
  for (const auto& [asn_value, indices] : result.admin.by_asn)
    batch.push_back(asn::Asn{asn_value});
  (void)service.lookup_batch(batch);
  if (obs::kEnabled) {
    EXPECT_GT(
        service.report().metrics.counter_value("pl_serve_cache_evictions"),
        0);
  }
}

TEST(QueryService, ReportCarriesServeSpansAndExports) {
  const pipeline::Result result = small_pipeline();
  QueryService service(small_snapshot(result));
  (void)service.lookup_batch({asn::Asn{1}, asn::Asn{2}});
  (void)service.scan(ScanQuery{});
  if (!obs::kEnabled) return;  // obs-off: report is empty by design

  const obs::Report report = service.report();
  EXPECT_EQ(report.trace.name, "serve");
  EXPECT_NE(report.trace.child("serve.lookup_batch"), nullptr);
  EXPECT_NE(report.trace.child("serve.scan"), nullptr);

  const std::string json = obs::to_json(report);
  EXPECT_NE(json.find("pl-obs/2"), std::string::npos);
  EXPECT_NE(json.find("pl_serve_cache_hits"), std::string::npos);
  const std::string prom = obs::to_prometheus(report.metrics);
  EXPECT_NE(prom.find("pl_serve_cache_hits"), std::string::npos);
  EXPECT_NE(prom.find("pl_serve_snapshot_asns"), std::string::npos);
}

TEST(QueryService, ScanFiltersCompose) {
  const pipeline::Result result = small_pipeline();
  QueryService service(small_snapshot(result));

  ScanQuery by_registry;
  by_registry.registry = asn::Rir::kRipeNcc;
  const std::vector<AsnAnswer> ripe = service.scan(by_registry);
  EXPECT_GT(ripe.size(), 0u);
  for (std::size_t i = 1; i < ripe.size(); ++i)
    EXPECT_LT(ripe[i - 1].asn, ripe[i].asn);

  ScanQuery limited = by_registry;
  limited.limit = 5;
  EXPECT_EQ(service.scan(limited).size(), 5u);

  ScanQuery alive = by_registry;
  alive.admin_alive_on = result.truth.archive_end;
  for (const AsnAnswer& answer : service.scan(alive))
    EXPECT_TRUE(answer.currently_allocated);
}

TEST(QueryService, QueryOnlySnapshotRefusesAdvance) {
  const pipeline::Result result = small_pipeline();
  Snapshot snapshot = Snapshot::from_datasets(result.admin, result.op);
  EXPECT_FALSE(snapshot.can_advance());
  QueryService service(std::move(snapshot));
  const pl::Status status = service.advance_day(DayDelta{});
  EXPECT_EQ(status.code(), pl::StatusCode::kFailedPrecondition);
}

TEST(QueryService, WrongDayAdvanceIsInvalidArgument) {
  const pipeline::Result result = small_pipeline();
  QueryService service(small_snapshot(result));
  DayDelta delta;
  delta.day = result.truth.archive_end + 7;  // not the next day
  EXPECT_EQ(service.advance_day(delta).code(),
            pl::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.version(), 0u);
}

TEST(QueryService, AdvanceClearsCachesAndBumpsVersion) {
  const pipeline::Result result = small_pipeline();
  QueryService service(small_snapshot(result));

  const asn::Asn probe{result.admin.lifetimes.front().asn.value};
  (void)service.lookup(probe);
  DayDelta delta = slice_day(result.restored, result.op_world.activity,
                             result.truth.archive_end);
  delta.day = result.truth.archive_end + 1;
  ASSERT_TRUE(service.advance_day(delta).ok());
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.snapshot().archive_end(), result.truth.archive_end + 1);
  if (obs::kEnabled) {
    EXPECT_GT(
        service.report().metrics.counter_value("pl_serve_advance_days"), 0);
  }
}

TEST(ServeIo, LoadSnapshotRoundTripsThroughListingJson) {
  const pipeline::Result result = small_pipeline();
  const std::string admin_path =
      testing::TempDir() + "/serve_admin.jsonl";
  const std::string op_path = testing::TempDir() + "/serve_op.jsonl";
  ASSERT_TRUE(lifetimes::save_admin_json(admin_path, result.admin).ok());
  ASSERT_TRUE(lifetimes::save_op_json(op_path, result.op).ok());

  pl::StatusOr<Snapshot> loaded = load_snapshot(admin_path, op_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->asn_count(),
            small_snapshot(result).asn_count());
  EXPECT_EQ(loaded->op_life_count(), result.op.lifetimes.size());
  EXPECT_FALSE(loaded->can_advance());

  EXPECT_EQ(load_snapshot("/nonexistent/admin.jsonl", op_path).status().code(),
            pl::StatusCode::kUnavailable);
}

TEST(Serving, PostStageHookTracesSnapshotBuild) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.02;
  const ServingWorld world = run_simulated_serving(config);

  if (obs::kEnabled) {
    // The eighth stage shows up in the trace and the flat timings...
    const obs::TraceNode* stage =
        world.result.report.trace.child("serve.build_snapshot");
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->note_value("asns"),
              static_cast<std::int64_t>(world.snapshot.asn_count()));
    EXPECT_GT(world.result.timings.build_snapshot_ms, 0.0);
    // ...and the snapshot census landed in the run's own metrics.
    EXPECT_EQ(world.result.report.metrics.gauges.at("pl_serve_snapshot_asns"),
              static_cast<std::int64_t>(world.snapshot.asn_count()));
  }

  // The hook-built snapshot equals one built from the result directly.
  const Snapshot rebuilt = small_snapshot(world.result);
  EXPECT_TRUE(world.snapshot == rebuilt);
}

TEST(Serving, DefaultRunsKeepSevenStageChildren) {
  pipeline::Config config;
  config.seed = 7;
  config.scale = 0.01;
  const pipeline::Result result = pipeline::run_simulated(config);
  if (obs::kEnabled) {
    EXPECT_EQ(result.report.trace.children.size(), 7u);
  }
  EXPECT_EQ(result.timings.build_snapshot_ms, 0.0);
}

}  // namespace
}  // namespace pl::serve
