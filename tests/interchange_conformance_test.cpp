// Interchange conformance: the text (`pl-dlg-txt/1`) and binary
// (`pl-dlg-bin/1`) wire formats must carry the exact same day-observation
// model, so a pipeline run is bit-identical regardless of
// `pipeline::Config::interchange` — for any seed and scale, with and without
// transport chaos, and across a checkpoint/resume split driven from the
// decoded binary stream.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "delegation/interchange.hpp"
#include "pipeline/pipeline.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"

namespace pl {
namespace {

using dele::Interchange;

/// FNV-1a over the run-defining outputs — the same notion of "bit-identical"
/// the perf harness (bench_pipeline_e2e) reports, kept in sync with it.
std::uint64_t fingerprint_of(const pipeline::Result& result) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;
  };
  mix(result.admin.lifetimes.size());
  for (const lifetimes::AdminLifetime& life : result.admin.lifetimes) {
    mix(life.asn.value);
    mix(static_cast<std::uint64_t>(life.days.first));
    mix(static_cast<std::uint64_t>(life.days.last));
    mix(static_cast<std::uint64_t>(life.registration_date));
    mix(static_cast<std::uint64_t>(life.registry));
    mix(life.opaque_id);
    mix(life.open_ended ? 1 : 0);
    mix(life.transferred ? 1 : 0);
  }
  mix(result.op.lifetimes.size());
  for (const lifetimes::OpLifetime& life : result.op.lifetimes) {
    mix(life.asn.value);
    mix(static_cast<std::uint64_t>(life.days.first));
    mix(static_cast<std::uint64_t>(life.days.last));
  }
  for (const std::int64_t count : result.taxonomy.admin_counts)
    mix(static_cast<std::uint64_t>(count));
  for (const std::int64_t count : result.taxonomy.op_counts)
    mix(static_cast<std::uint64_t>(count));
  for (const std::int64_t link : result.taxonomy.op_to_admin)
    mix(static_cast<std::uint64_t>(link));
  mix(static_cast<std::uint64_t>(result.robustness.days_applied));
  mix(static_cast<std::uint64_t>(result.robustness.days_delivered));
  return hash;
}

/// Field-by-field comparison of everything downstream of the interchange
/// boundary. The fingerprint already folds most of this, but on mismatch
/// these assertions point at the first diverging field instead of a hash.
void expect_identical_results(const pipeline::Result& text,
                              const pipeline::Result& binary) {
  for (asn::Rir rir : asn::kAllRirs) {
    const restore::RestoredRegistry& t = text.restored.registry(rir);
    const restore::RestoredRegistry& b = binary.restored.registry(rir);
    ASSERT_EQ(t.spans.size(), b.spans.size()) << asn::display_name(rir);
    auto t_it = t.spans.begin();
    auto b_it = b.spans.begin();
    for (; t_it != t.spans.end(); ++t_it, ++b_it) {
      ASSERT_EQ(t_it->first, b_it->first) << asn::display_name(rir);
      ASSERT_EQ(t_it->second, b_it->second)
          << asn::display_name(rir) << " asn " << t_it->first;
    }
    EXPECT_EQ(t.report, b.report) << asn::display_name(rir);
  }
  ASSERT_EQ(text.admin.lifetimes, binary.admin.lifetimes);
  ASSERT_EQ(text.op.lifetimes, binary.op.lifetimes);
  EXPECT_EQ(text.taxonomy.admin_counts, binary.taxonomy.admin_counts);
  EXPECT_EQ(text.taxonomy.op_counts, binary.taxonomy.op_counts);
  EXPECT_EQ(text.taxonomy.op_to_admin, binary.taxonomy.op_to_admin);
  EXPECT_EQ(text.robustness.days_applied, binary.robustness.days_applied);
  EXPECT_EQ(text.robustness.days_delivered, binary.robustness.days_delivered);
  EXPECT_EQ(fingerprint_of(text), fingerprint_of(binary));
}

pipeline::Result run_with(Interchange format, std::uint64_t seed,
                          double scale, bool chaos) {
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  config.threads = 0;
  config.interchange = format;
  config.inject_chaos = chaos;
  if (chaos) config.chaos.seed = seed * 13 + 5;
  return pipeline::run_simulated(config);
}

class InterchangeSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(InterchangeSweep, TextAndBinaryPipelinesAreBitIdentical) {
  const auto [seed, scale] = GetParam();
  const pipeline::Result text =
      run_with(Interchange::kText, seed, scale, /*chaos=*/false);
  const pipeline::Result binary =
      run_with(Interchange::kBinary, seed, scale, /*chaos=*/false);
  expect_identical_results(text, binary);
}

TEST_P(InterchangeSweep, ChaoticPipelinesAreBitIdentical) {
  const auto [seed, scale] = GetParam();
  const pipeline::Result text =
      run_with(Interchange::kText, seed, scale, /*chaos=*/true);
  const pipeline::Result binary =
      run_with(Interchange::kBinary, seed, scale, /*chaos=*/true);
  // Chaos must actually have exercised the fault path for the comparison to
  // mean anything.
  EXPECT_GT(text.robustness.days_delivered, 0);
  expect_identical_results(text, binary);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByScales, InterchangeSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(42, 7, 2026),
                       ::testing::Values(0.02, 0.05)));

/// Round-trip at the wire level: every day observation decoded from the
/// binary archive equals its text-decoded counterpart, channel by channel.
TEST(InterchangeConformance, DecodedObservationsMatchAcrossFormats) {
  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(42, 0.02));
  rirsim::InjectorConfig injector;
  injector.scale = 0.02;
  const rirsim::SimulatedArchive archive(truth, injector);

  for (asn::Rir rir : asn::kAllRirs) {
    const dele::EncodedArchive text =
        dele::encode_archive(*archive.stream(rir), Interchange::kText);
    const dele::EncodedArchive binary =
        dele::encode_archive(*archive.stream(rir), Interchange::kBinary);
    auto text_days = dele::decode_archive(text);
    auto binary_days = dele::decode_archive(binary);
    ASSERT_TRUE(text_days.ok()) << text_days.status().message();
    ASSERT_TRUE(binary_days.ok()) << binary_days.status().message();
    ASSERT_EQ(text_days->size(), binary_days->size())
        << asn::display_name(rir);
    for (std::size_t i = 0; i < text_days->size(); ++i) {
      const dele::DayObservation& t = (*text_days)[i];
      const dele::DayObservation& b = (*binary_days)[i];
      ASSERT_EQ(t.day, b.day);
      const auto expect_channel_eq = [&](const dele::ChannelDelta& tc,
                                         const dele::ChannelDelta& bc) {
        EXPECT_EQ(tc.condition, bc.condition);
        EXPECT_EQ(tc.publish_minute, bc.publish_minute);
        ASSERT_EQ(tc.changes, bc.changes) << "day " << t.day;
        ASSERT_EQ(tc.duplicates, bc.duplicates) << "day " << t.day;
      };
      expect_channel_eq(t.extended, b.extended);
      expect_channel_eq(t.regular, b.regular);
    }
  }
}

/// Checkpoint/resume driven from the decoded *binary* stream must land on
/// the same restored registry as an uninterrupted text-driven restore.
TEST(InterchangeConformance, CheckpointResumeOverBinaryStream) {
  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(42, 0.02));
  rirsim::InjectorConfig injector;
  injector.scale = 0.02;
  const rirsim::SimulatedArchive archive(truth, injector);
  const restore::RestoreConfig config;

  for (asn::Rir rir : asn::kAllRirs) {
    const dele::EncodedArchive text =
        dele::encode_archive(*archive.stream(rir), Interchange::kText);
    const dele::EncodedArchive binary =
        dele::encode_archive(*archive.stream(rir), Interchange::kBinary);

    auto text_reader = dele::open_archive(text);
    ASSERT_TRUE(text_reader.ok()) << text_reader.status().message();
    const restore::RestoredRegistry baseline =
        restore::restore_registry(**text_reader, config, &truth.erx);

    auto binary_reader = dele::open_archive(binary);
    ASSERT_TRUE(binary_reader.ok()) << binary_reader.status().message();
    restore::StreamingRestorer first(rir, config, &truth.erx);
    const std::int64_t split = baseline.report.days_processed / 2;
    std::int64_t consumed = 0;
    const dele::DayObservationView* view = nullptr;
    while (consumed < split &&
           (view = (*binary_reader)->next_view()) != nullptr) {
      first.consume(*view);
      ++consumed;
    }
    ASSERT_TRUE((*binary_reader)->status().ok())
        << (*binary_reader)->status().message();

    // Simulated crash: the first restorer is abandoned mid-archive and a
    // fresh one resumes from its checkpoint over the rest of the stream.
    auto resumed = restore::StreamingRestorer::from_checkpoint(
        first.checkpoint(), config, &truth.erx);
    ASSERT_TRUE(resumed.has_value()) << asn::display_name(rir);
    while ((view = (*binary_reader)->next_view()) != nullptr)
      resumed->consume(*view);
    ASSERT_TRUE((*binary_reader)->status().ok())
        << (*binary_reader)->status().message();

    const restore::RestoredRegistry rebuilt = std::move(*resumed).finalize();
    ASSERT_EQ(baseline.spans.size(), rebuilt.spans.size())
        << asn::display_name(rir);
    auto base_it = baseline.spans.begin();
    auto rebuilt_it = rebuilt.spans.begin();
    for (; base_it != baseline.spans.end(); ++base_it, ++rebuilt_it) {
      ASSERT_EQ(base_it->first, rebuilt_it->first) << asn::display_name(rir);
      ASSERT_EQ(base_it->second, rebuilt_it->second)
          << asn::display_name(rir) << " asn " << base_it->first;
    }
    EXPECT_EQ(baseline.report, rebuilt.report) << asn::display_name(rir);
  }
}

}  // namespace
}  // namespace pl
