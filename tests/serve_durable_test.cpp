// Durable serving: snapshot persistence round-trips bit-identically,
// corruption in every flavor is rejected (never silently loaded), the WAL
// append/replay cycle reconstructs exact state, retries are deterministic,
// and the DurableService surfaces an accurate HealthReport.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "pipeline/pipeline.hpp"
#include "robust/checkpoint.hpp"
#include "serve/durable.hpp"
#include "serve/serving.hpp"
#include "serve/snapshot.hpp"

namespace pl::serve {
namespace {

pipeline::Config small_config() {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  return config;
}

const pipeline::Result& small_pipeline() {
  static const pipeline::Result result = pipeline::run_simulated(small_config());
  return result;
}

Snapshot small_snapshot() {
  const pipeline::Result& result = small_pipeline();
  return Snapshot::build(result.restored, result.op_world.activity,
                         result.truth.archive_end);
}

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(DurableSnapshot, RoundTripsBitIdentically) {
  const std::string dir = temp_dir("durable_roundtrip");
  const std::string path = dir + "/snap.plsnap";
  const Snapshot original = small_snapshot();
  ASSERT_TRUE(original.can_advance());

  ASSERT_TRUE(save_snapshot(original, path).ok());
  auto reopened = open_snapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  // Deep equality: rows, config, derived indexes AND the working set, so
  // the reopened snapshot can keep advancing.
  EXPECT_TRUE(*reopened == original);
  EXPECT_TRUE(reopened->can_advance());
}

TEST(DurableSnapshot, QueryOnlySnapshotRoundTrips) {
  const pipeline::Result& result = small_pipeline();
  SnapshotConfig config;
  config.keep_working_set = false;
  const Snapshot original =
      Snapshot::build(result.restored, result.op_world.activity,
                      result.truth.archive_end, config);
  const std::string dir = temp_dir("durable_queryonly");
  const std::string path = dir + "/snap.plsnap";
  ASSERT_TRUE(save_snapshot(original, path).ok());
  auto reopened = open_snapshot(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(*reopened == original);
  EXPECT_FALSE(reopened->can_advance());
}

TEST(DurableSnapshot, MissingFileIsNotFound) {
  EXPECT_EQ(open_snapshot(testing::TempDir() + "no_such_snap").status().code(),
            pl::StatusCode::kNotFound);
}

TEST(DurableSnapshot, TruncationIsRejectedAtEveryPrefix) {
  const std::string dir = temp_dir("durable_truncate");
  const std::string path = dir + "/snap.plsnap";
  ASSERT_TRUE(save_snapshot(small_snapshot(), path).ok());
  const std::string bytes = read_all(path);
  ASSERT_GT(bytes.size(), 64u);

  // A sweep of prefix lengths, including the header-only and mid-payload
  // cases a torn write would leave behind.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{15}, std::size_t{16},
        std::size_t{64}, bytes.size() / 2, bytes.size() - 1}) {
    write_all(path, bytes.substr(0, keep));
    const auto status = open_snapshot(path).status();
    EXPECT_EQ(status.code(), pl::StatusCode::kDataLoss)
        << "prefix " << keep << " loaded: " << status.to_string();
  }
}

TEST(DurableSnapshot, BitFlipsAreRejected) {
  const std::string dir = temp_dir("durable_bitflip");
  const std::string path = dir + "/snap.plsnap";
  ASSERT_TRUE(save_snapshot(small_snapshot(), path).ok());
  const std::string bytes = read_all(path);

  for (const std::size_t at :
       {std::size_t{0}, std::size_t{8}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    write_all(path, flipped);
    EXPECT_EQ(open_snapshot(path).status().code(), pl::StatusCode::kDataLoss)
        << "flip at " << at << " was not detected";
  }
}

TEST(DurableSnapshot, PayloadVersionSkewIsRejected) {
  // A frame with a VALID checksum but a future payload schema version:
  // the frame layer passes, the codec must still refuse to interpret it.
  robust::CheckpointWriter writer;
  writer.u32(kSnapshotFormatVersion + 1);
  writer.i32(123);
  const std::string dir = temp_dir("durable_skew");
  const std::string path = dir + "/snap.plsnap";
  write_all(path, std::move(writer).finish());

  const auto status = open_snapshot(path).status();
  EXPECT_EQ(status.code(), pl::StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("version skew"), std::string::npos);
}

TEST(DurableSnapshot, SaveIsAtomicOverExistingFile) {
  const std::string dir = temp_dir("durable_atomic");
  const std::string path = dir + "/snap.plsnap";
  const Snapshot original = small_snapshot();
  ASSERT_TRUE(save_snapshot(original, path).ok());

  // A crash halfway through the NEXT save must leave the previous bytes
  // untouched (the torn write lands in the .tmp sibling).
  robust::CrashPoints crash;
  crash.arm("durable.checkpoint.torn_tmp");
  EXPECT_FALSE(save_snapshot(original, path, &crash).ok());
  EXPECT_TRUE(crash.fired());
  auto reopened = open_snapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_TRUE(*reopened == original);
}

TEST(DurableWal, AppendReplayRoundTrips) {
  const pipeline::Result& result = small_pipeline();
  const util::Day end = result.truth.archive_end;
  const std::string dir = temp_dir("wal_roundtrip");
  const std::string path = dir + "/days.plwal";

  std::vector<DayDelta> days;
  for (util::Day day = end - 4; day <= end; ++day) {
    days.push_back(slice_day(result.restored, result.op_world.activity, day));
    ASSERT_TRUE(append_wal(path, days.back()).ok());
  }
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->valid_records, 5);
  EXPECT_EQ(replay->corrupt_records, 0);
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->deltas.size(), days.size());
  for (std::size_t i = 0; i < days.size(); ++i)
    EXPECT_EQ(replay->deltas[i], days[i]) << "record " << i;
}

TEST(DurableWal, TornTailIsDroppedNotFatal) {
  const pipeline::Result& result = small_pipeline();
  const util::Day end = result.truth.archive_end;
  const std::string dir = temp_dir("wal_torn");
  const std::string path = dir + "/days.plwal";

  const DayDelta first =
      slice_day(result.restored, result.op_world.activity, end - 1);
  ASSERT_TRUE(append_wal(path, first).ok());
  robust::CrashPoints crash;
  crash.arm("durable.wal.torn_append");
  const DayDelta second =
      slice_day(result.restored, result.op_world.activity, end);
  EXPECT_FALSE(append_wal(path, second, &crash).ok());

  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->valid_records, 1);
  ASSERT_EQ(replay->deltas.size(), 1u);
  EXPECT_EQ(replay->deltas[0], first);
  EXPECT_TRUE(replay->torn_tail);
  EXPECT_GT(replay->dropped_bytes, 0);
}

TEST(DurableWal, CorruptMiddleRecordIsSkippedWithAccounting) {
  const pipeline::Result& result = small_pipeline();
  const util::Day end = result.truth.archive_end;
  const std::string dir = temp_dir("wal_corrupt_mid");
  const std::string path = dir + "/days.plwal";

  std::vector<std::size_t> sizes;
  for (util::Day day = end - 2; day <= end; ++day) {
    const DayDelta delta =
        slice_day(result.restored, result.op_world.activity, day);
    ASSERT_TRUE(append_wal(path, delta).ok());
    sizes.push_back(read_all(path).size());
  }
  // Flip one byte inside the SECOND record's payload; frame boundaries
  // stay parseable, so replay should skip exactly that record.
  std::string bytes = read_all(path);
  bytes[sizes[0] + 24] = static_cast<char>(bytes[sizes[0] + 24] ^ 0x01);
  write_all(path, bytes);

  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->valid_records, 2);
  EXPECT_EQ(replay->corrupt_records, 1);
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->deltas.size(), 2u);
  EXPECT_EQ(replay->deltas[0].day, end - 2);
  EXPECT_EQ(replay->deltas[1].day, end);
}

TEST(DurableRetry, TransientUnavailableIsRetriedDeterministically) {
  int calls = 0;
  const SnapshotLoader loader = [&calls]() -> pl::StatusOr<Snapshot> {
    ++calls;
    if (calls < 3) return pl::unavailable_error("transient");
    return Snapshot{};
  };
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 50;
  policy.max_delay_ms = 2000;
  int attempts = 0;
  auto loaded = load_with_retry(loader, policy, clock, &attempts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  // Virtual backoff: 50ms then 100ms — exact, no wall clock involved.
  EXPECT_EQ(clock.now_ms(), 150);
}

TEST(DurableRetry, GivesUpAfterMaxAttemptsAndCapsBackoff) {
  int calls = 0;
  const SnapshotLoader loader = [&calls]() -> pl::StatusOr<Snapshot> {
    ++calls;
    return pl::unavailable_error("still down");
  };
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 800;
  policy.max_delay_ms = 1000;
  auto loaded = load_with_retry(loader, policy, clock);
  EXPECT_EQ(loaded.status().code(), pl::StatusCode::kUnavailable);
  EXPECT_EQ(calls, 5);
  // 800 + 1000 + 1000 + 1000: the cap kicks in after the first doubling.
  EXPECT_EQ(clock.now_ms(), 3800);
}

TEST(DurableRetry, PermanentErrorsAreNotRetried) {
  int calls = 0;
  const SnapshotLoader loader = [&calls]() -> pl::StatusOr<Snapshot> {
    ++calls;
    return pl::data_loss_error("corrupt");
  };
  VirtualClock clock;
  auto loaded = load_with_retry(loader, RetryPolicy{}, clock);
  EXPECT_EQ(loaded.status().code(), pl::StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.now_ms(), 0);
}

TEST(DurableService, AdvancesAndRecoversAcrossReopen) {
  const pipeline::Config config = small_config();
  const pipeline::Result extended = pipeline::run_simulated(config);
  const util::Day end = extended.truth.archive_end;
  const util::Day start = end - 10;

  Snapshot base = Snapshot::build(truncate_archive(extended.restored, start),
                                  truncate_activity(extended.op_world.activity, start),
                                  start);
  const std::string dir = temp_dir("durable_service");
  DurableConfig durable;
  durable.dir = dir;
  durable.checkpoint_every_days = 4;

  {
    auto service = DurableService::open(std::move(base), durable);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    for (util::Day day = start + 1; day <= end - 5; ++day) {
      const DayDelta delta =
          slice_day(extended.restored, extended.op_world.activity, day);
      ASSERT_TRUE(service->advance_day(delta).ok());
    }
    EXPECT_EQ(service->archive_end(), end - 5);
    const HealthReport health = service->health();
    EXPECT_FALSE(health.degraded);
    EXPECT_EQ(health.last_durable_day, end - 5);
    // checkpoint_every_days = 4 over 5 folded days: one checkpoint fired,
    // one day still rides the WAL.
    EXPECT_EQ(health.wal_records, 1);
  }

  // Reopen from disk only (bootstrap deliberately empty) and keep going.
  auto reopened = DurableService::open(Snapshot{}, durable);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened->archive_end(), end - 5);
  EXPECT_FALSE(reopened->health().degraded);
  for (util::Day day = end - 4; day <= end; ++day) {
    const DayDelta delta =
        slice_day(extended.restored, extended.op_world.activity, day);
    ASSERT_TRUE(reopened->advance_day(delta).ok());
  }
  const Snapshot full = Snapshot::build(extended.restored,
                                        extended.op_world.activity, end);
  EXPECT_TRUE(reopened->snapshot() == full);
}

TEST(DurableService, MisSequencedDayNeverLandsInTheWal) {
  const std::string dir = temp_dir("durable_missequence");
  DurableConfig durable;
  durable.dir = dir;
  auto service = DurableService::open(small_snapshot(), durable);
  ASSERT_TRUE(service.ok());
  const util::Day end = service->archive_end();

  DayDelta wrong;
  wrong.day = end + 7;
  EXPECT_EQ(service->advance_day(wrong).code(),
            pl::StatusCode::kInvalidArgument);
  // Nothing was acknowledged, so nothing may be durable: the WAL is absent
  // or empty and health is clean.
  auto replay = replay_wal(service->wal_path());
  if (replay.ok()) {
    EXPECT_EQ(replay->valid_records, 0);
  }
  EXPECT_FALSE(service->health().degraded);
}

TEST(DurableService, QuarantinedDayDegradesButKeepsServing) {
  const pipeline::Config config = small_config();
  const pipeline::Result extended = pipeline::run_simulated(config);
  const util::Day end = extended.truth.archive_end;
  const std::string dir = temp_dir("durable_quarantine");

  DurableConfig durable;
  durable.dir = dir;
  Snapshot base = Snapshot::build(truncate_archive(extended.restored, end - 2),
                                  truncate_activity(extended.op_world.activity, end - 2),
                                  end - 2);
  auto service = DurableService::open(std::move(base), durable);
  ASSERT_TRUE(service.ok());

  // A delta with the right day number but a duplicate (registry, ASN) fact
  // appends to the WAL, then fails the fold — exactly the quarantine path.
  DayDelta poisoned =
      slice_day(extended.restored, extended.op_world.activity, end - 1);
  ASSERT_FALSE(poisoned.delegation.empty());
  poisoned.delegation.push_back(poisoned.delegation.front());
  EXPECT_FALSE(service->advance_day(poisoned).ok());

  const HealthReport health = service->health();
  EXPECT_TRUE(health.degraded);
  ASSERT_EQ(health.quarantined_days.size(), 1u);
  EXPECT_EQ(health.quarantined_days[0], end - 1);
  EXPECT_EQ(health.last_durable_day, end - 2);
  EXPECT_FALSE(health.last_error.empty());

  // Still answering queries from the last good state.
  EXPECT_EQ(service->archive_end(), end - 2);
  EXPECT_EQ(service->queries().census(end - 2).day, end - 2);

  // Reopen replays the poisoned record, quarantines it again, and reports
  // the same degradation — deterministic recovery, no silent skip.
  auto reopened = DurableService::open(Snapshot{}, durable);
  ASSERT_TRUE(reopened.ok());
  const HealthReport after = reopened->health();
  EXPECT_TRUE(after.degraded);
  ASSERT_EQ(after.quarantined_days.size(), 1u);
  EXPECT_EQ(after.quarantined_days[0], end - 1);
  EXPECT_EQ(reopened->archive_end(), end - 2);
}

TEST(DurableService, CorruptSnapshotFallsBackToBootstrapAndReports) {
  const std::string dir = temp_dir("durable_snapcorrupt");
  DurableConfig durable;
  durable.dir = dir;
  const Snapshot bootstrap = small_snapshot();
  {
    auto service = DurableService::open(bootstrap, durable);
    ASSERT_TRUE(service.ok());
  }
  // Flip a payload byte: the next open must reject the file, fall back to
  // the bootstrap snapshot, and say so in health + metrics.
  const std::string path = dir + "/snapshot.plsnap";
  std::string bytes = read_all(path);
  bytes[bytes.size() / 2] ^= 0x10;
  write_all(path, bytes);

  auto reopened = DurableService::open(bootstrap, durable);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  const HealthReport health = reopened->health();
  EXPECT_TRUE(health.degraded);
  EXPECT_TRUE(health.snapshot_rejected);
  EXPECT_FALSE(health.last_error.empty());
  EXPECT_TRUE(reopened->snapshot() == bootstrap);
#ifndef PL_OBS_OFF
  const obs::Report report = reopened->report();
  EXPECT_EQ(report.metrics.counter_value("pl_serve_snapshot_rejected"), 1);
  ASSERT_EQ(report.metrics.gauges.count("pl_serve_degraded"), 1u);
  EXPECT_EQ(report.metrics.gauges.at("pl_serve_degraded"), 1);
#endif
}

TEST(DurableService, TransientLoaderErrorsAreRetriedOnOpen) {
  const std::string dir = temp_dir("durable_loader_retry");
  const Snapshot bootstrap = small_snapshot();
  int calls = 0;
  DurableConfig durable;
  durable.dir = dir;
  durable.loader = [&calls, &bootstrap]() -> pl::StatusOr<Snapshot> {
    ++calls;
    if (calls < 3) return pl::unavailable_error("nfs flake");
    return bootstrap;
  };
  auto service = DurableService::open(Snapshot{}, durable);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(service->health().load_attempts, 3);
  EXPECT_TRUE(service->snapshot() == bootstrap);
  EXPECT_FALSE(service->health().degraded);
}

TEST(ServingWrapper, PersistsTheSnapshotAsATracedStage) {
  const std::string dir = temp_dir("serving_persist");
  const std::string path = dir + "/snap.plsnap";
  pipeline::Config config = small_config();
  const ServingWorld world = run_simulated_serving(config, {}, path);
  ASSERT_TRUE(world.save_status.ok()) << world.save_status.to_string();

  auto reopened = open_snapshot(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(*reopened == world.snapshot);
#ifndef PL_OBS_OFF
  EXPECT_GT(world.result.timings.save_snapshot_ms, 0.0);
  const obs::TraceNode* stage = world.result.report.trace.child("serve.save_snapshot");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->note_value("ok"), 1);
#endif
}

}  // namespace
}  // namespace pl::serve
