#include <gtest/gtest.h>

#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"

namespace pl::restore {
namespace {

using asn::Rir;
using rirsim::GroundTruth;
using rirsim::TrueAdminLife;
using util::Day;
using util::DayInterval;

class RestoreTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.02;

  static const GroundTruth& truth() {
    static const GroundTruth world =
        rirsim::build_world(rirsim::WorldConfig::test_scale(31, kScale));
    return world;
  }

  static const rirsim::SimulatedArchive& archive() {
    static const rirsim::SimulatedArchive instance(truth(), [] {
      rirsim::InjectorConfig config;
      config.seed = 3;
      config.scale = kScale;
      return config;
    }());
    return instance;
  }

  static const RestoredArchive& restored() {
    static const RestoredArchive instance = [] {
      std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount>
          streams;
      for (Rir rir : asn::kAllRirs)
        streams[asn::index_of(rir)] = archive().stream(rir);
      return restore_archive(
          std::move(streams), RestoreConfig{}, &truth().erx,
          [](asn::Asn a) { return truth().iana.owner(a); },
          truth().archive_begin);
    }();
    return instance;
  }

  /// Truth-side delegated days of an ASN within the archive window,
  /// restricted to days the registry had already published its first file.
  static util::IntervalSet observable_truth_days(const TrueAdminLife& life) {
    util::IntervalSet days;
    for (const rirsim::RegistrySegment& segment : life.segments) {
      const asn::RirFacts& facts = asn::facts(segment.rir);
      const Day first_file = std::min(facts.first_regular_file,
                                      facts.first_extended_file);
      DayInterval clipped = segment.days.intersect(
          DayInterval{std::max(truth().archive_begin, first_file),
                      truth().archive_end});
      if (!clipped.empty()) days.add(clipped);
    }
    for (const rirsim::Interruption& gap : life.interruptions)
      days.subtract(gap.days);
    return days;
  }

  /// Restored delegated days of an ASN, across registries.
  static util::IntervalSet restored_delegated_days(asn::Asn target) {
    util::IntervalSet days;
    for (const RestoredRegistry& registry : restored().registries) {
      const auto it = registry.spans.find(target.value);
      if (it == registry.spans.end()) continue;
      for (const StateSpan& span : it->second)
        if (dele::is_delegated(span.state.status)) days.add(span.days);
    }
    return days;
  }
};

TEST_F(RestoreTest, ReportsShowEachStepFired) {
  bool any_missing = false;
  bool any_recovered = false;
  for (const RestoredRegistry& registry : restored().registries) {
    EXPECT_EQ(registry.report.days_processed,
              truth().archive_end - truth().archive_begin + 1);
    if (registry.report.files_missing > 0) any_missing = true;
    if (registry.report.recovered_from_regular > 0) any_recovered = true;
  }
  EXPECT_TRUE(any_missing);
  EXPECT_TRUE(any_recovered);
  EXPECT_GT(restored()
                .registries[asn::index_of(Rir::kRipeNcc)]
                .report.placeholder_dates_restored,
            0);
  EXPECT_GT(restored()
                .registries[asn::index_of(Rir::kAfrinic)]
                .report.duplicates_resolved,
            0);
  EXPECT_GT(restored().cross.mistaken_spans_removed, 0);
  EXPECT_GT(restored().cross.stale_spans_trimmed, 0);
}

TEST_F(RestoreTest, DelegatedDaysMatchTruthForSampledLives) {
  // For a deterministic sample of lives, the restored delegated day set
  // must match truth almost exactly (publish delays shift starts by <= 3
  // days; everything else must be repaired).
  std::size_t checked = 0;
  std::int64_t total_error_days = 0;
  std::int64_t total_days = 0;
  for (std::size_t i = 0; i < truth().lives.size(); i += 7) {
    const TrueAdminLife& life = truth().lives[i];
    const util::IntervalSet expected = observable_truth_days(life);
    if (expected.empty()) continue;
    const util::IntervalSet actual = restored_delegated_days(life.asn);
    // Error = symmetric difference restricted to this life's span.
    const DayInterval span = expected.span();
    const std::int64_t expected_days = expected.total_days();
    const std::int64_t common =
        expected.intersect(actual).covered_days(span);
    const std::int64_t actual_in_span = actual.covered_days(span);
    total_error_days += (expected_days - common) +
                        (actual_in_span - common);
    total_days += expected_days;
    ++checked;
  }
  ASSERT_GT(checked, 50u);
  ASSERT_GT(total_days, 0);
  // Restoration is near-exact: < 0.5% residual day error.
  EXPECT_LT(static_cast<double>(total_error_days) /
                static_cast<double>(total_days),
            0.005)
      << total_error_days << " / " << total_days;
}

TEST_F(RestoreTest, MissingFilesDoNotEndSpans) {
  // Spans continue across scheduled missing days (step i): no restored
  // delegated span may end exactly where a missing-day run starts unless
  // truth ends there too.
  const RestoredRegistry& ripe =
      restored().registries[asn::index_of(Rir::kRipeNcc)];
  const auto& missing = archive().schedule(Rir::kRipeNcc).missing_days[0];
  for (const auto& [asn_value, spans] : ripe.spans) {
    for (const StateSpan& span : spans) {
      if (!dele::is_delegated(span.state.status)) continue;
      if (span.days.last >= truth().archive_end) continue;
      if (!missing.contains(span.days.last + 1)) continue;
      // The day after the span end is a missing-file day; verify truth also
      // ends the life near here (within the grace window).
      const auto lives_it = truth().lives_by_asn.find(asn_value);
      if (lives_it == truth().lives_by_asn.end()) continue;
      bool truth_ends_near = false;
      for (const std::size_t index : lives_it->second) {
        const TrueAdminLife& life = truth().lives[index];
        if (std::abs(life.days.last - span.days.last) <= 10)
          truth_ends_near = true;
        for (const rirsim::Interruption& gap : life.interruptions)
          if (std::abs(gap.days.first - 1 - span.days.last) <= 10)
            truth_ends_near = true;
      }
      EXPECT_TRUE(truth_ends_near) << asn_value << " span ends at "
                                   << util::format_iso(span.days.last);
    }
  }
}

TEST_F(RestoreTest, PlaceholderDatesRepaired) {
  // Every RIPE placeholder override must be gone from the restored spans.
  const Day placeholder = util::make_day(1993, 9, 1);
  const auto& schedule = archive().schedule(Rir::kRipeNcc);
  const RestoredRegistry& ripe =
      restored().registries[asn::index_of(Rir::kRipeNcc)];
  std::size_t verified = 0;
  for (const auto& override_entry : schedule.date_overrides) {
    if (override_entry.shown != placeholder) continue;
    const auto it = ripe.spans.find(override_entry.asn.value);
    if (it == ripe.spans.end()) continue;
    for (const StateSpan& span : it->second) {
      if (!dele::is_delegated(span.state.status)) continue;
      ASSERT_TRUE(span.state.registration_date.has_value());
      EXPECT_NE(*span.state.registration_date, placeholder)
          << asn::to_string(override_entry.asn);
      // Restored to the ERX original date.
      const auto erx_it = truth().erx.find(override_entry.asn.value);
      if (erx_it != truth().erx.end() &&
          span.days.first > override_entry.from) {
        EXPECT_EQ(*span.state.registration_date, erx_it->second);
      }
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

TEST_F(RestoreTest, MistakenAllocationsRemoved) {
  // Extras injected as wrong-RIR allocations must be absent from the
  // restored delegated spans of the injecting registry.
  std::size_t checked = 0;
  for (Rir rir : asn::kAllRirs) {
    const RestoredRegistry& registry =
        restored().registries[asn::index_of(rir)];
    for (const auto& extra : archive().schedule(rir).extras) {
      if (extra.stale_transfer) continue;
      const auto it = registry.spans.find(extra.asn.value);
      if (it == registry.spans.end()) {
        ++checked;
        continue;
      }
      for (const StateSpan& span : it->second)
        if (dele::is_delegated(span.state.status)) {
          EXPECT_LE(util::overlap_days(span.days, extra.days), 0)
              << asn::display_name(rir) << " kept mistaken "
              << asn::to_string(extra.asn);
        }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(RestoreTest, StaleTransferTailsTrimmed) {
  // After reconciliation, no ASN has two registries simultaneously
  // reporting it delegated.
  std::map<std::uint32_t, std::vector<DayInterval>> delegated;
  for (const RestoredRegistry& registry : restored().registries)
    for (const auto& [asn_value, spans] : registry.spans)
      for (const StateSpan& span : spans)
        if (dele::is_delegated(span.state.status))
          delegated[asn_value].push_back(span.days);
  for (auto& [asn_value, intervals] : delegated) {
    std::sort(intervals.begin(), intervals.end(),
              [](const DayInterval& a, const DayInterval& b) {
                return a.first < b.first;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i)
      EXPECT_FALSE(intervals[i].overlaps(intervals[i - 1]))
          << asn_value;
  }
}

TEST_F(RestoreTest, DuplicateResolutionKeepsDelegatedInterpretation) {
  const auto& schedule = archive().schedule(Rir::kAfrinic);
  const RestoredRegistry& afrinic =
      restored().registries[asn::index_of(Rir::kAfrinic)];
  for (const auto& episode : schedule.duplicates) {
    const auto it = afrinic.spans.find(episode.asn.value);
    if (it == afrinic.spans.end()) continue;
    // Throughout the duplicate window, the ASN stays delegated (history +
    // BGP hint both say the allocated record is the right one). The hint
    // was not passed here, so history alone must resolve it.
    std::int64_t delegated_days = 0;
    for (const StateSpan& span : it->second)
      if (dele::is_delegated(span.state.status))
        delegated_days += util::overlap_days(span.days, episode.days);
    EXPECT_GT(delegated_days, episode.days.length() / 2)
        << asn::to_string(episode.asn);
  }
}

TEST_F(RestoreTest, AblationFlagsChangeBehaviour) {
  // With regular-file recovery disabled, extended-channel suppressions are
  // taken at face value: the restorer reports no recoveries and more
  // fragmented spans.
  RestoreConfig no_recovery;
  no_recovery.recover_from_regular = false;
  auto stream = archive().stream(Rir::kRipeNcc);
  const RestoredRegistry without =
      restore_registry(*stream, no_recovery, &truth().erx);
  EXPECT_EQ(without.report.recovered_from_regular, 0);
  const RestoredRegistry& with =
      restored().registries[asn::index_of(Rir::kRipeNcc)];
  EXPECT_GT(with.report.recovered_from_regular, 0);

  // With date repair disabled, placeholder dates survive into the spans.
  RestoreConfig no_repair;
  no_repair.repair_dates = false;
  auto stream2 = archive().stream(Rir::kRipeNcc);
  const RestoredRegistry unrepaired =
      restore_registry(*stream2, no_repair, &truth().erx);
  EXPECT_EQ(unrepaired.report.placeholder_dates_restored, 0);
  bool saw_placeholder = false;
  for (const auto& [asn_value, spans] : unrepaired.spans)
    for (const StateSpan& span : spans)
      if (span.state.registration_date == util::make_day(1993, 9, 1))
        saw_placeholder = true;
  EXPECT_TRUE(saw_placeholder);
}

TEST_F(RestoreTest, DuplicateAblationSkipsResolution) {
  RestoreConfig no_duplicates;
  no_duplicates.resolve_duplicates = false;
  auto stream = archive().stream(Rir::kAfrinic);
  const RestoredRegistry without =
      restore_registry(*stream, no_duplicates, &truth().erx);
  EXPECT_EQ(without.report.duplicates_resolved, 0);
}

}  // namespace
}  // namespace pl::restore
