// Adversarial coverage for the `pl-dlg-bin/1` decoder: truncation at every
// framing boundary class, random bit-flips, version skew, and raw garbage
// must all land in a precise pl::Status (kDataLoss for damage,
// kInvalidArgument for version skew) — never a crash, never an unbounded
// decode loop, never a silently wrong success where a checksum applies.
// All randomness flows from util::Rng seeds, so a failure replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "delegation/interchange.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace pl::dele {
namespace {

using util::Rng;

/// Wire-layout cursor positions recovered by a minimal test-side parse
/// (format documented at the encoder and in DESIGN.md §13):
///   "PLDB" | version:u32 | day_count:u32 | table_count:u32
///   | table_count x (len:varint | bytes) | rir:varint
///   | day_count x (payload_len:u32 | payload | crc:u32)
struct WireMap {
  std::uint32_t day_count = 0;
  std::size_t table_begin = 0;     ///< first string-table byte
  std::size_t frames_begin = 0;    ///< first frame's payload_len byte
  std::vector<std::size_t> frame_offsets;  ///< one per frame
};

std::uint32_t read_u32(const std::string& bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(bytes[at + i]))
             << (8 * i);
  return value;
}

WireMap map_archive(const std::string& bytes) {
  WireMap map;
  std::size_t at = 4;  // "PLDB"
  at += 4;             // version
  map.day_count = read_u32(bytes, at);
  at += 4;
  const std::uint32_t table_count = read_u32(bytes, at);
  at += 4;
  map.table_begin = at;
  const auto read_varint = [&bytes, &at]() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      const auto byte = static_cast<std::uint8_t>(bytes[at++]);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  };
  for (std::uint32_t i = 0; i < table_count; ++i) at += read_varint();
  read_varint();  // registry id
  map.frames_begin = at;
  for (std::uint32_t day = 0; day < map.day_count; ++day) {
    map.frame_offsets.push_back(at);
    at += 4 + read_u32(bytes, at) + 4;
  }
  EXPECT_EQ(at, bytes.size()) << "test-side wire map out of sync";
  return map;
}

EncodedArchive small_binary_archive() {
  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(42, 0.01));
  rirsim::InjectorConfig injector;
  injector.scale = 0.01;
  const rirsim::SimulatedArchive archive(truth, injector);
  return encode_archive(*archive.stream(asn::Rir::kRipeNcc),
                        Interchange::kBinary);
}

/// Open and drain, checking the decode loop is bounded. Returns the final
/// latched status (open failure or stream status).
pl::Status drain(const EncodedArchive& archive, std::uint64_t* days = nullptr) {
  auto reader = open_archive(archive);
  if (!reader.ok()) return reader.status();
  std::uint64_t decoded = 0;
  const std::uint64_t bound =
      2 * static_cast<std::uint64_t>(archive.bytes.size()) + 64;
  while ((*reader)->next_view() != nullptr) {
    ++decoded;
    EXPECT_LE(decoded, bound) << "decode loop did not terminate";
    if (decoded > bound) break;
  }
  if (days != nullptr) *days = decoded;
  return (*reader)->status();
}

class BinaryDecoderFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pristine_ = new EncodedArchive(small_binary_archive());
    map_ = new WireMap(map_archive(pristine_->bytes));
  }
  static void TearDownTestSuite() {
    delete map_;
    delete pristine_;
    map_ = nullptr;
    pristine_ = nullptr;
  }

  static EncodedArchive damaged(std::string bytes) {
    EncodedArchive copy;
    copy.rir = pristine_->rir;
    copy.format = Interchange::kBinary;
    copy.bytes = std::move(bytes);
    return copy;
  }

  static EncodedArchive* pristine_;
  static WireMap* map_;
};

EncodedArchive* BinaryDecoderFuzz::pristine_ = nullptr;
WireMap* BinaryDecoderFuzz::map_ = nullptr;

TEST_F(BinaryDecoderFuzz, PristineArchiveDrainsClean) {
  std::uint64_t days = 0;
  const pl::Status status = drain(*pristine_, &days);
  EXPECT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(days, map_->day_count);
}

TEST_F(BinaryDecoderFuzz, TruncationAtEveryBoundaryClassFailsPrecisely) {
  // One cut point per structural boundary class, plus every byte of the
  // fixed header and a seeded sample of interior cuts: a truncated archive
  // must always latch kDataLoss — a prefix can never pass for a whole
  // archive because the day count is promised up front.
  const std::string& bytes = pristine_->bytes;
  std::vector<std::size_t> cuts;
  for (std::size_t at = 0; at < 16 && at < bytes.size(); ++at)
    cuts.push_back(at);                       // magic + header fields
  cuts.push_back(map_->table_begin + 1);      // inside the string table
  cuts.push_back(map_->frames_begin);         // before the first frame
  for (const std::size_t frame : map_->frame_offsets) {
    cuts.push_back(frame + 2);                // inside payload_len
    cuts.push_back(frame + 4 + 1);            // inside the payload
    const std::size_t next = frame + 4 + read_u32(bytes, frame) + 4;
    cuts.push_back(next - 2);                 // inside the trailing CRC
    cuts.push_back(next);                     // clean inter-frame boundary
  }
  Rng rng(4242);
  for (int i = 0; i < 64; ++i)
    cuts.push_back(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1)));

  for (const std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    const pl::Status latched = drain(damaged(bytes.substr(0, cut)));
    EXPECT_FALSE(latched.ok()) << "cut at " << cut;
    EXPECT_EQ(latched.code(), StatusCode::kDataLoss)
        << "cut at " << cut << ": " << latched.to_string();
    EXPECT_FALSE(latched.message().empty()) << "cut at " << cut;
  }
}

TEST_F(BinaryDecoderFuzz, BitFlipsNeverCrashAndLatchPreciseStatus) {
  const std::string& bytes = pristine_->bytes;
  Rng rng(1337);
  int silent_ok = 0;
  for (int round = 0; round < 200; ++round) {
    std::string copy = bytes;
    const auto at = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(copy.size()) - 1));
    copy[at] = static_cast<char>(static_cast<std::uint8_t>(copy[at]) ^
                                 (1u << rng.uniform(0, 7)));
    const pl::Status status = drain(damaged(std::move(copy)));
    if (status.ok()) {
      // A flip inside an uncheck-summed header token can legitimately decode
      // as a different-but-valid archive; everything inside a frame is CRC'd.
      ++silent_ok;
      continue;
    }
    EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kInvalidArgument)
        << "round " << round << ": " << status.to_string();
    EXPECT_FALSE(status.message().empty()) << "round " << round;
  }
  // The overwhelming share of the byte stream is CRC-framed payload, so
  // silent successes must stay the rare exception.
  EXPECT_LT(silent_ok, 40);
}

TEST_F(BinaryDecoderFuzz, PayloadCorruptionIsCaughtByTheFrameCrc) {
  const std::string& bytes = pristine_->bytes;
  Rng rng(99);
  for (int round = 0; round < 32; ++round) {
    const std::size_t frame = map_->frame_offsets[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(map_->frame_offsets.size()) -
                           1))];
    const std::uint32_t payload_len = read_u32(bytes, frame);
    if (payload_len == 0) continue;
    std::string copy = bytes;
    const std::size_t at =
        frame + 4 + static_cast<std::size_t>(rng.uniform(
                        0, static_cast<std::int64_t>(payload_len) - 1));
    copy[at] = static_cast<char>(static_cast<std::uint8_t>(copy[at]) + 1);
    const pl::Status status = drain(damaged(std::move(copy)));
    ASSERT_FALSE(status.ok()) << "frame at " << frame;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss);
    EXPECT_NE(status.message().find("CRC"), std::string::npos)
        << status.to_string();
  }
}

TEST_F(BinaryDecoderFuzz, VersionSkewIsInvalidArgument) {
  for (const std::uint32_t version : {0u, 2u, 99u, 0xFFFFFFFFu}) {
    std::string copy = pristine_->bytes;
    for (int i = 0; i < 4; ++i)
      copy[4 + i] = static_cast<char>((version >> (8 * i)) & 0xFF);
    const auto reader = open_archive(damaged(std::move(copy)));
    ASSERT_FALSE(reader.ok()) << "version " << version;
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(reader.status().message().find("version"), std::string::npos)
        << reader.status().to_string();
  }
}

TEST_F(BinaryDecoderFuzz, BadMagicIsDataLoss) {
  std::string copy = pristine_->bytes;
  copy[0] = 'Q';
  const auto reader = open_archive(damaged(std::move(copy)));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST_F(BinaryDecoderFuzz, RandomBytesNeverCrashTheDecoder) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    std::string junk(static_cast<std::size_t>(rng.uniform(0, 512)), '\0');
    for (char& byte : junk)
      byte = static_cast<char>(rng.uniform(0, 255));
    const pl::Status status = drain(damaged(std::move(junk)));
    if (!status.ok()) {
      EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                  status.code() == StatusCode::kInvalidArgument)
          << "round " << round << ": " << status.to_string();
    }
  }
}

}  // namespace
}  // namespace pl::dele
