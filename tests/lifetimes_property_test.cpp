// Property tests for the administrative lifetime builder: randomized
// restored-archive inputs, structural invariants as oracles.
#include <gtest/gtest.h>

#include "lifetimes/admin.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace pl::lifetimes {
namespace {

using dele::RecordState;
using dele::Status;
using restore::RestoredArchive;
using restore::StateSpan;
using util::Day;
using util::DayInterval;
using util::Rng;

const Day kEnd = util::make_day(2021, 3, 1);
const Day kBegin = util::make_day(2003, 10, 9);

/// Generate a random, structurally-plausible restored archive: per ASN, a
/// sorted sequence of non-overlapping spans with random statuses and dates.
RestoredArchive random_archive(Rng& rng, int asns) {
  RestoredArchive archive;
  for (std::size_t r = 0; r < asn::kRirCount; ++r)
    archive.registries[r].rir = asn::kAllRirs[r];

  for (int i = 0; i < asns; ++i) {
    const std::uint32_t asn_value = static_cast<std::uint32_t>(100 + i);
    const std::size_t registry =
        static_cast<std::size_t>(rng.uniform(0, asn::kRirCount - 1));
    std::vector<StateSpan> spans;
    Day cursor = kBegin + static_cast<Day>(rng.uniform(0, 2000));
    const int span_count = static_cast<int>(rng.uniform(1, 6));
    Day current_regdate = cursor - static_cast<Day>(rng.uniform(0, 3000));
    for (int s = 0; s < span_count && cursor < kEnd - 10; ++s) {
      StateSpan span;
      const Day length = static_cast<Day>(rng.uniform(5, 1500));
      span.days = DayInterval{cursor,
                              std::min<Day>(kEnd, cursor + length)};
      const double roll = rng.uniform01();
      if (roll < 0.6) {
        span.state.status = Status::kAllocated;
        if (rng.chance(0.3))
          current_regdate = span.days.first -
                            static_cast<Day>(rng.uniform(0, 100));
        span.state.registration_date = current_regdate;
        span.state.opaque_id = static_cast<std::uint64_t>(rng.uniform(1,
                                                                      50));
      } else if (roll < 0.8) {
        span.state.status = Status::kReserved;
      } else {
        span.state.status = Status::kAvailable;
      }
      spans.push_back(span);
      cursor = span.days.last + 1 +
               (rng.chance(0.5) ? 0 : static_cast<Day>(rng.uniform(1, 400)));
    }
    if (!spans.empty())
      archive.registries[registry].spans[asn_value] = std::move(spans);
  }
  return archive;
}

class AdminBuilderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AdminBuilderProperty, InvariantsHold) {
  Rng rng(GetParam());
  const RestoredArchive archive = random_archive(rng, 200);
  const AdminDataset dataset = build_admin_lifetimes(archive, kEnd);

  // Collect the delegated day set per ASN from the input.
  std::map<std::uint32_t, util::IntervalSet> delegated;
  std::map<std::uint32_t, Day> earliest_regdate;
  for (const auto& registry : archive.registries)
    for (const auto& [asn_value, spans] : registry.spans)
      for (const StateSpan& span : spans)
        if (dele::is_delegated(span.state.status)) {
          delegated[asn_value].add(span.days);
          const Day regdate = span.state.registration_date.value_or(
              span.days.first);
          const auto it = earliest_regdate.find(asn_value);
          if (it == earliest_regdate.end() || regdate < it->second)
            earliest_regdate[asn_value] = regdate;
        }

  // 1. Every ASN with delegated spans produces at least one lifetime and
  //    vice versa.
  EXPECT_EQ(dataset.by_asn.size(), delegated.size());

  std::map<std::uint32_t, util::IntervalSet> covered;
  for (const AdminLifetime& life : dataset.lifetimes) {
    // 2. Lifetimes are non-empty and within bounds.
    EXPECT_FALSE(life.days.empty());
    EXPECT_LE(life.days.last, kEnd);
    // 3. open_ended iff the life reaches the archive end.
    EXPECT_EQ(life.open_ended, life.days.last >= kEnd);
    // 4. The registration date never postdates... the life's start may be
    //    later than regdate (backdating only applies at first-file), but a
    //    regdate after the life's end is impossible.
    EXPECT_LE(life.registration_date, life.days.last);
    covered[life.asn.value].add(life.days);
  }

  for (const auto& [asn_value, days] : delegated) {
    // 5. Lifetimes cover every delegated day (they may extend further:
    //    merges bridge reserved interruptions; backdating extends starts).
    const util::IntervalSet& cover = covered[asn_value];
    EXPECT_EQ(days.intersect(cover).total_days(), days.total_days())
        << "asn " << asn_value;
  }

  // 6. Per-ASN lifetimes are disjoint and ordered.
  for (const auto& [asn_value, indices] : dataset.by_asn)
    for (std::size_t k = 1; k < indices.size(); ++k)
      EXPECT_LT(dataset.lifetimes[indices[k - 1]].days.last,
                dataset.lifetimes[indices[k]].days.first)
          << "asn " << asn_value;

  // 7. Determinism: rebuilding yields the identical dataset.
  const AdminDataset again = build_admin_lifetimes(archive, kEnd);
  ASSERT_EQ(again.lifetimes.size(), dataset.lifetimes.size());
  for (std::size_t i = 0; i < dataset.lifetimes.size(); ++i) {
    EXPECT_EQ(again.lifetimes[i].asn, dataset.lifetimes[i].asn);
    EXPECT_EQ(again.lifetimes[i].days, dataset.lifetimes[i].days);
    EXPECT_EQ(again.lifetimes[i].registration_date,
              dataset.lifetimes[i].registration_date);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdminBuilderProperty,
                         ::testing::Values(11, 222, 3333, 44444, 555555,
                                           6666666));

}  // namespace
}  // namespace pl::lifetimes
