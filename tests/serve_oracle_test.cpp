// Oracle fuzz for the serving layer: every query answered by the
// QueryService is checked against a naive linear scan over the pipeline's
// own datasets, with the cache on and off — and the whole suite runs under
// both PL_THREADS extremes via the _serial/_mt ctest variants. Any
// divergence (cache state, thread count, snapshot indexing) fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "joint/squat.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace pl::serve {
namespace {

struct Oracle {
  pipeline::Result result;
  std::set<std::uint32_t> dormant_asns;   ///< ASNs with a dormant-squat life
  std::set<std::uint32_t> outside_asns;   ///< ever-allocated, outside life

  explicit Oracle(const pipeline::Config& config)
      : result(pipeline::run_simulated(config)) {
    for (const joint::SquatCandidate& candidate :
         joint::detect_dormant_squats(result.taxonomy, result.admin,
                                      result.op))
      dormant_asns.insert(candidate.asn.value);
    for (const joint::SquatCandidate& candidate :
         joint::detect_outside_delegation_activity(result.taxonomy,
                                                   result.admin, result.op))
      outside_asns.insert(candidate.asn.value);
  }

  /// Linear-scan answer for one ASN — no index, no cache, no snapshot.
  AsnAnswer lookup(asn::Asn asn) const {
    AsnAnswer answer;
    answer.asn = asn;
    std::vector<std::size_t> admin_indices;
    for (std::size_t i = 0; i < result.admin.lifetimes.size(); ++i)
      if (result.admin.lifetimes[i].asn == asn) admin_indices.push_back(i);
    std::vector<std::size_t> op_indices;
    for (std::size_t i = 0; i < result.op.lifetimes.size(); ++i)
      if (result.op.lifetimes[i].asn == asn) op_indices.push_back(i);
    if (admin_indices.empty() && op_indices.empty()) return answer;

    answer.known = true;
    answer.admin_life_count = static_cast<std::uint32_t>(admin_indices.size());
    answer.op_life_count = static_cast<std::uint32_t>(op_indices.size());
    const util::Day end = result.truth.archive_end;
    if (!admin_indices.empty()) {
      const lifetimes::AdminLifetime& first =
          result.admin.lifetimes[admin_indices.front()];
      const lifetimes::AdminLifetime& latest =
          result.admin.lifetimes[admin_indices.back()];
      answer.admin_span = util::DayInterval{first.days.first,
                                            latest.days.last};
      answer.latest_registry = latest.registry;
      answer.latest_country = latest.country;
      answer.latest_registration = latest.registration_date;
      answer.latest_admin_category =
          result.taxonomy.admin_category[admin_indices.back()];
      for (const std::size_t i : admin_indices) {
        const lifetimes::AdminLifetime& life = result.admin.lifetimes[i];
        if (life.days.contains(end)) answer.currently_allocated = true;
        if (life.transferred) answer.transferred = true;
      }
    }
    if (!op_indices.empty()) {
      answer.op_span = util::DayInterval{
          result.op.lifetimes[op_indices.front()].days.first,
          result.op.lifetimes[op_indices.back()].days.last};
      for (const std::size_t i : op_indices)
        if (result.op.lifetimes[i].days.contains(end))
          answer.currently_active = true;
    }
    answer.dormant_squat = dormant_asns.contains(asn.value);
    answer.outside_activity = outside_asns.contains(asn.value);
    return answer;
  }

  AliveAnswer alive(asn::Asn asn, util::Day day) const {
    AliveAnswer answer;
    answer.asn = asn;
    for (const lifetimes::AdminLifetime& life : result.admin.lifetimes)
      if (life.asn == asn && life.days.contains(day))
        answer.admin_alive = true;
    for (const lifetimes::OpLifetime& life : result.op.lifetimes)
      if (life.asn == asn && life.days.contains(day)) answer.op_alive = true;
    return answer;
  }
};

class ServeOracleTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline::Config config;
    config.seed = 99;
    config.scale = 0.02;
    oracle_ = new Oracle(config);
    snapshot_ = new Snapshot(Snapshot::build(
        oracle_->result.restored, oracle_->result.op_world.activity,
        oracle_->result.truth.archive_end));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete oracle_;
    snapshot_ = nullptr;
    oracle_ = nullptr;
  }

  /// Mix of ASNs the study knows and ASNs it never saw.
  static std::vector<asn::Asn> random_asns(util::Rng& rng, std::size_t count) {
    const auto& rows = snapshot_->rows();
    std::vector<asn::Asn> asns;
    asns.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!rows.empty() && rng.uniform(0, 3) != 0) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(rows.size()) - 1));
        asns.push_back(rows[pick].asn);
      } else {
        asns.push_back(
            asn::Asn{static_cast<std::uint32_t>(rng.uniform(1, 500000))});
      }
    }
    return asns;
  }

  static Oracle* oracle_;
  static Snapshot* snapshot_;
};

Oracle* ServeOracleTest::oracle_ = nullptr;
Snapshot* ServeOracleTest::snapshot_ = nullptr;

TEST_F(ServeOracleTest, PointAndBatchLookupsMatchLinearScan) {
  for (const bool enable_cache : {true, false}) {
    QueryConfig config;
    config.enable_cache = enable_cache;
    QueryService service(*snapshot_, config);

    util::Rng rng(0xF00D);
    for (int round = 0; round < 4; ++round) {
      const std::vector<asn::Asn> asns = random_asns(rng, 200);
      const std::vector<AsnAnswer> batch = service.lookup_batch(asns);
      ASSERT_EQ(batch.size(), asns.size());
      for (std::size_t i = 0; i < asns.size(); ++i) {
        const AsnAnswer expected = oracle_->lookup(asns[i]);
        EXPECT_EQ(batch[i], expected)
            << "asn " << asns[i].value << " cache=" << enable_cache;
        // Point path answers identically to the batch path (and, second
        // time around, from the cache).
        EXPECT_EQ(service.lookup(asns[i]), expected);
      }
    }
  }
}

TEST_F(ServeOracleTest, AliveQueriesMatchLinearScan) {
  const util::Day begin = oracle_->result.truth.archive_begin;
  const util::Day end = oracle_->result.truth.archive_end;
  for (const bool enable_cache : {true, false}) {
    QueryConfig config;
    config.enable_cache = enable_cache;
    QueryService service(*snapshot_, config);

    util::Rng rng(0xBEEF);
    for (int round = 0; round < 3; ++round) {
      const std::vector<asn::Asn> asns = random_asns(rng, 100);
      const util::Day day = begin + rng.uniform(0, end - begin);
      const std::vector<AliveAnswer> batch = service.alive_on_batch(asns, day);
      ASSERT_EQ(batch.size(), asns.size());
      for (std::size_t i = 0; i < asns.size(); ++i) {
        const AliveAnswer expected = oracle_->alive(asns[i], day);
        EXPECT_EQ(batch[i], expected)
            << "asn " << asns[i].value << " day " << day;
        EXPECT_EQ(service.alive_on(asns[i], day), expected);
      }
    }
  }
}

TEST_F(ServeOracleTest, ScansMatchLinearFilter) {
  QueryService service(*snapshot_);
  util::Rng rng(0xCAFE);
  const util::Day begin = oracle_->result.truth.archive_begin;
  const util::Day end = oracle_->result.truth.archive_end;

  for (int round = 0; round < 6; ++round) {
    ScanQuery query;
    const std::uint32_t a =
        static_cast<std::uint32_t>(rng.uniform(0, 400000));
    const std::uint32_t b =
        static_cast<std::uint32_t>(rng.uniform(0, 400000));
    query.first = asn::Asn{std::min(a, b)};
    query.last = asn::Asn{std::max(a, b)};
    if (rng.uniform(0, 1) == 0)
      query.registry = asn::kAllRirs[static_cast<std::size_t>(
          rng.uniform(0, asn::kRirCount - 1))];
    if (rng.uniform(0, 1) == 0)
      query.admin_alive_on = begin + rng.uniform(0, end - begin);

    const std::vector<AsnAnswer> got = service.scan(query);

    // Expected ASNs by linear scan over the admin/op datasets.
    std::set<std::uint32_t> expected;
    const auto consider = [&](asn::Asn asn) {
      if (asn < query.first || query.last < asn) return;
      if (query.registry || query.admin_alive_on) {
        bool registry_ok = !query.registry;
        bool alive_ok = !query.admin_alive_on;
        for (const lifetimes::AdminLifetime& life :
             oracle_->result.admin.lifetimes) {
          if (life.asn != asn) continue;
          if (query.registry && life.registry == *query.registry)
            registry_ok = true;
          if (query.admin_alive_on &&
              life.days.contains(*query.admin_alive_on))
            alive_ok = true;
        }
        if (!registry_ok || !alive_ok) return;
      }
      expected.insert(asn.value);
    };
    for (const lifetimes::AdminLifetime& life :
         oracle_->result.admin.lifetimes)
      consider(life.asn);
    for (const lifetimes::OpLifetime& life : oracle_->result.op.lifetimes)
      consider(life.asn);

    ASSERT_EQ(got.size(), expected.size()) << "round " << round;
    std::size_t i = 0;
    for (const std::uint32_t value : expected) {
      EXPECT_EQ(got[i].asn.value, value);
      ++i;
    }
  }
}

TEST_F(ServeOracleTest, CensusMatchesLinearCountEverywhere) {
  QueryService service(*snapshot_);
  util::Rng rng(0xD1CE);
  const util::Day begin = oracle_->result.truth.archive_begin;
  const util::Day end = oracle_->result.truth.archive_end;
  for (int round = 0; round < 8; ++round) {
    const util::Day day = begin + rng.uniform(-5, end - begin + 5);
    std::int64_t admin_alive = 0;
    for (const lifetimes::AdminLifetime& life :
         oracle_->result.admin.lifetimes)
      if (life.days.contains(day)) ++admin_alive;
    std::int64_t op_alive = 0;
    for (const lifetimes::OpLifetime& life : oracle_->result.op.lifetimes)
      if (life.days.contains(day)) ++op_alive;
    const CensusAnswer census = service.census(day);
    EXPECT_EQ(census.admin_alive, admin_alive) << "day " << day;
    EXPECT_EQ(census.op_alive, op_alive) << "day " << day;
  }
}

TEST_F(ServeOracleTest, SnapshotFlagsAgreeWithGlobalDetectors) {
  // Per-row detector flags vs the global detectors' candidate sets: the two
  // implementations are independent by design, so this is a real
  // cross-check, not a tautology.
  std::set<std::uint32_t> row_dormant;
  std::set<std::uint32_t> row_outside;
  for (const AsnRow& row : snapshot_->rows()) {
    if (row.flags & kFlagDormantSquat) row_dormant.insert(row.asn.value);
    if (row.flags & kFlagOutsideActivity) row_outside.insert(row.asn.value);
  }
  EXPECT_EQ(row_dormant, oracle_->dormant_asns);
  EXPECT_EQ(row_outside, oracle_->outside_asns);
}

}  // namespace
}  // namespace pl::serve
