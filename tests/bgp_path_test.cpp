#include <gtest/gtest.h>

#include "bgp/path.hpp"

namespace pl::bgp {
namespace {

TEST(AsPath, OriginAndFirstHop) {
  const AsPath path{64500, 3356, 203040, 10512};
  EXPECT_EQ(path.origin(), asn::Asn{10512});
  EXPECT_EQ(path.first_hop(), asn::Asn{203040});
  EXPECT_EQ(path.size(), 4u);

  const AsPath empty;
  EXPECT_FALSE(empty.origin().has_value());
  EXPECT_FALSE(empty.first_hop().has_value());

  const AsPath single{42};
  EXPECT_EQ(single.origin(), asn::Asn{42});
  EXPECT_FALSE(single.first_hop().has_value());
}

TEST(AsPath, LoopDetection) {
  EXPECT_FALSE((AsPath{1, 2, 3}.has_loop()));
  EXPECT_TRUE((AsPath{1, 2, 1}.has_loop()));
  EXPECT_TRUE((AsPath{1, 2, 3, 2, 4}.has_loop()));
  // Prepending (consecutive repeats) is not a loop.
  EXPECT_FALSE((AsPath{1, 2, 2, 2, 3}.has_loop()));
  EXPECT_FALSE(AsPath{}.has_loop());
  EXPECT_FALSE(AsPath{7}.has_loop());
  // Prepending then reappearance is still a loop.
  EXPECT_TRUE((AsPath{1, 2, 2, 3, 2}.has_loop()));
}

TEST(AsPath, Deduplicated) {
  const AsPath path{1, 2, 2, 2, 3, 3};
  EXPECT_EQ(path.deduplicated(), (AsPath{1, 2, 3}));
  EXPECT_EQ(AsPath{}.deduplicated(), AsPath{});
}

TEST(AsPath, Contains) {
  const AsPath path{64500, 3356, 10512};
  EXPECT_TRUE(path.contains(asn::Asn{3356}));
  EXPECT_FALSE(path.contains(asn::Asn{1}));
}

TEST(AsPath, ParseAndToString) {
  const auto path = AsPath::parse("701 7046 290012147");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->origin(), asn::Asn{290012147});
  EXPECT_EQ(path->to_string(), "701 7046 290012147");

  EXPECT_TRUE(AsPath::parse("")->empty());
  EXPECT_TRUE(AsPath::parse("  12  13 ").has_value());
  EXPECT_FALSE(AsPath::parse("12 abc").has_value());
  EXPECT_FALSE(AsPath::parse("12 99999999999").has_value());
}

// Property: deduplicated paths have no consecutive repeats and preserve
// order; has_loop is invariant under prepending.
class PathProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathProperty, PrependingInvariance) {
  // Base path derived from the parameter.
  const int n = GetParam();
  std::vector<asn::Asn> hops;
  for (int i = 0; i < n; ++i)
    hops.push_back(asn::Asn{static_cast<std::uint32_t>(100 + i * 37 % 7)});
  const AsPath base{std::vector<asn::Asn>(hops)};

  // Prepend each hop twice.
  std::vector<asn::Asn> prepended;
  for (const asn::Asn hop : hops) {
    prepended.push_back(hop);
    prepended.push_back(hop);
  }
  const AsPath doubled(std::move(prepended));

  EXPECT_EQ(base.has_loop(), doubled.has_loop());
  EXPECT_EQ(base.deduplicated(), doubled.deduplicated());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace pl::bgp
