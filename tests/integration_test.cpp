// End-to-end pipeline validation against simulator ground truth: the whole
// paper reproduction at small scale — world, archive, restoration, both
// lifetime datasets, taxonomy, and the squatting detector — with the
// simulator's labels as the referee.
#include <gtest/gtest.h>

#include "bgpsim/route_gen.hpp"
#include "joint/outside.hpp"
#include "joint/partial.hpp"
#include "joint/squat.hpp"
#include "joint/taxonomy.hpp"
#include "joint/unused.hpp"
#include "joint/utilization.hpp"
#include "lifetimes/sensitivity.hpp"
#include "util/stats.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"

namespace pl {
namespace {

constexpr double kScale = 0.05;
constexpr std::uint64_t kSeed = 1234;

struct Pipeline {
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;

  Pipeline() {
    truth = rirsim::build_world(rirsim::WorldConfig::test_scale(kSeed,
                                                                kScale));
    bgpsim::OpWorldConfig op_config;
    op_config.behavior.seed = kSeed + 1;
    op_config.attacks.seed = kSeed + 2;
    op_config.attacks.scale = kScale;
    // Enough post-deallocation hijacks for a meaningful recall measurement
    // at this small scale (the paper-scale default of 9 would yield one).
    op_config.attacks.post_deallocation_events = 200;
    op_config.misconfigs.seed = kSeed + 3;
    op_config.misconfigs.scale = kScale;
    op_world = bgpsim::build_op_world(truth, op_config);

    rirsim::InjectorConfig injector;
    injector.seed = kSeed + 4;
    injector.scale = kScale;
    const rirsim::SimulatedArchive archive(truth, injector);
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
    for (asn::Rir rir : asn::kAllRirs)
      streams[asn::index_of(rir)] = archive.stream(rir);
    restored = restore::restore_archive(
        std::move(streams), restore::RestoreConfig{}, &truth.erx,
        [this](asn::Asn a) { return truth.iana.owner(a); },
        truth.archive_begin, &op_world.activity);

    admin = lifetimes::build_admin_lifetimes(restored, truth.archive_end);
    op = lifetimes::build_op_lifetimes(op_world.activity);
    taxonomy = joint::classify(admin, op);
  }
};

class IntegrationTest : public ::testing::Test {
 protected:
  static const Pipeline& pipeline() {
    static const Pipeline instance;
    return instance;
  }
};

TEST_F(IntegrationTest, AdminLifetimeCountMatchesObservableTruth) {
  // Truth lives overlapping the archive window (per-registry file eras)
  // are what the pipeline can observe.
  std::size_t observable = 0;
  for (const rirsim::TrueAdminLife& life : pipeline().truth.lives) {
    for (const rirsim::RegistrySegment& segment : life.segments) {
      const asn::RirFacts& facts = asn::facts(segment.rir);
      if (segment.days.last >= facts.first_regular_file &&
          segment.days.first <= pipeline().truth.archive_end) {
        ++observable;
        break;
      }
    }
  }
  const auto recovered = pipeline().admin.lifetimes.size();
  EXPECT_NEAR(static_cast<double>(recovered),
              static_cast<double>(observable),
              0.03 * static_cast<double>(observable))
      << recovered << " vs " << observable;
}

TEST_F(IntegrationTest, AdminLivesPerAsnNeverOverlap) {
  for (const auto& [asn_value, indices] : pipeline().admin.by_asn)
    for (std::size_t k = 1; k < indices.size(); ++k)
      EXPECT_LT(pipeline().admin.lifetimes[indices[k - 1]].days.last,
                pipeline().admin.lifetimes[indices[k]].days.first)
          << asn_value;
}

TEST_F(IntegrationTest, TaxonomyIsAPartition) {
  const joint::Taxonomy& taxonomy = pipeline().taxonomy;
  EXPECT_EQ(taxonomy.total_admin(),
            static_cast<std::int64_t>(pipeline().admin.lifetimes.size()));
  EXPECT_EQ(taxonomy.total_op(),
            static_cast<std::int64_t>(pipeline().op.lifetimes.size()));
  EXPECT_EQ(taxonomy.admin_counts[3], 0);  // no admin life is "outside"
  EXPECT_EQ(taxonomy.op_counts[2], 0);     // no op life is "unused"
}

TEST_F(IntegrationTest, TaxonomyFractionsMatchPaperShape) {
  const joint::Taxonomy& taxonomy = pipeline().taxonomy;
  const double total = static_cast<double>(taxonomy.total_admin());
  const double complete =
      static_cast<double>(taxonomy.admin_counts[0]) / total;
  const double partial =
      static_cast<double>(taxonomy.admin_counts[1]) / total;
  const double unused = static_cast<double>(taxonomy.admin_counts[2]) / total;
  // Paper: 78.6% / 3.4% / 17.9%.
  EXPECT_NEAR(complete, 0.786, 0.05);
  EXPECT_NEAR(partial, 0.034, 0.02);
  EXPECT_NEAR(unused, 0.179, 0.04);
  EXPECT_GT(taxonomy.op_counts[3], 0);  // outside-delegation lives exist
}

TEST_F(IntegrationTest, UnusedLivesMatchBehaviorGroundTruth) {
  // Every taxonomy-unused admin life should correspond to a truth life
  // whose behaviour produced no visible activity, and vice versa (modulo
  // boundary effects). Check aggregate counts within 10%.
  std::size_t truth_unused = 0;
  for (std::size_t i = 0; i < pipeline().truth.lives.size(); ++i) {
    const rirsim::TrueAdminLife& life = pipeline().truth.lives[i];
    if (life.days.last < pipeline().truth.archive_begin) continue;
    const util::IntervalSet* activity =
        pipeline().op_world.activity.activity(life.asn);
    if (activity == nullptr ||
        activity->covered_days(life.days) == 0)
      ++truth_unused;
  }
  const auto measured =
      static_cast<std::size_t>(pipeline().taxonomy.admin_counts[2]);
  EXPECT_NEAR(static_cast<double>(measured),
              static_cast<double>(truth_unused),
              0.1 * static_cast<double>(truth_unused))
      << measured << " vs " << truth_unused;
}

TEST_F(IntegrationTest, SquatDetectorRecallsInjectedAttacks) {
  const auto candidates = joint::detect_dormant_squats(
      pipeline().taxonomy, pipeline().admin, pipeline().op);
  std::set<std::uint32_t> flagged;
  for (const joint::SquatCandidate& candidate : candidates)
    flagged.insert(candidate.asn.value);

  std::size_t dormant_attacks = 0;
  std::size_t caught = 0;
  for (const bgpsim::SquatEvent& event : pipeline().op_world.attacks.events) {
    if (event.post_deallocation) continue;
    ++dormant_attacks;
    if (flagged.contains(event.asn.value)) ++caught;
  }
  ASSERT_GT(dormant_attacks, 0u);
  // The detector's thresholds were designed for exactly this behaviour:
  // high recall expected (the paper's filter caught all its case studies).
  EXPECT_GE(static_cast<double>(caught) /
                static_cast<double>(dormant_attacks),
            0.75)
      << caught << "/" << dormant_attacks;
  // And it also catches benign dormant awakenings (the paper's 3,051
  // candidates vastly exceed the ~76 confirmed malicious): candidates
  // outnumber attacks.
  EXPECT_GT(candidates.size(), dormant_attacks);
}

TEST_F(IntegrationTest, PostDeallocationHijacksLandOutsideDelegation) {
  const auto outside = joint::detect_outside_delegation_activity(
      pipeline().taxonomy, pipeline().admin, pipeline().op);
  std::set<std::uint32_t> outside_asns;
  for (const joint::SquatCandidate& candidate : outside)
    outside_asns.insert(candidate.asn.value);
  std::size_t events = 0;
  std::size_t found = 0;
  for (const bgpsim::SquatEvent& event : pipeline().op_world.attacks.events) {
    if (!event.post_deallocation) continue;
    ++events;
    if (outside_asns.contains(event.asn.value)) ++found;
  }
  ASSERT_GE(events, 2u);
  // A few events can be masked when missing files at the life's end let the
  // restored span extend past the true deallocation; most must be caught.
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(events), 0.6)
      << found << "/" << events;
}

TEST_F(IntegrationTest, MisconfigsClassifiedFromNumbersAlone) {
  const joint::OutsideAnalysis analysis = joint::analyze_never_allocated(
      pipeline().taxonomy, pipeline().admin, pipeline().op);
  std::map<std::uint32_t, joint::NeverAllocatedKind> classified;
  for (const joint::NeverAllocatedFinding& finding :
       analysis.never_allocated)
    classified[finding.asn.value] = finding.kind;

  std::size_t events = 0;
  std::size_t matching = 0;
  for (const bgpsim::MisconfigEvent& event :
       pipeline().op_world.misconfigs.events) {
    const auto it = classified.find(event.bogus_origin.value);
    if (it == classified.end()) continue;  // activity below visibility
    ++events;
    const bool match =
        (event.kind == bgpsim::MisconfigKind::kPrependTypo &&
         it->second == joint::NeverAllocatedKind::kPrependTypo) ||
        (event.kind == bgpsim::MisconfigKind::kDigitTypo &&
         it->second == joint::NeverAllocatedKind::kDigitTypo) ||
        (event.kind == bgpsim::MisconfigKind::kInternalLeak &&
         it->second == joint::NeverAllocatedKind::kInternalLeak);
    if (match) ++matching;
  }
  ASSERT_GT(events, 5u);
  EXPECT_GE(static_cast<double>(matching) / static_cast<double>(events),
            0.8)
      << matching << "/" << events;
}

TEST_F(IntegrationTest, PartialOverlapDanglingDominates) {
  const joint::PartialOverlapAnalysis analysis =
      joint::analyze_partial_overlap(pipeline().taxonomy, pipeline().admin,
                                     pipeline().op);
  ASSERT_GT(analysis.partial_admin_lives, 0);
  // Paper: ~64% of the category are dangling announcements.
  EXPECT_GT(analysis.dangling_lives, analysis.partial_admin_lives / 3);
  EXPECT_GT(analysis.early_starts, 0);
}

TEST_F(IntegrationTest, ThirtyDayTimeoutSitsNearPaperFractions) {
  const lifetimes::TimeoutChoice choice = lifetimes::evaluate_choice(
      pipeline().op_world.activity, pipeline().admin, 30);
  // Paper: 70.1% of gaps, 83% of admin lives.
  EXPECT_NEAR(choice.gap_fraction, 0.701, 0.08);
  EXPECT_NEAR(choice.one_or_less_fraction, 0.83, 0.08);
}

TEST_F(IntegrationTest, UtilizationShapeMatchesFig7) {
  const joint::UtilizationAnalysis analysis = joint::analyze_utilization(
      pipeline().taxonomy, pipeline().admin, pipeline().op);
  ASSERT_GT(analysis.ratios.size(), 100u);
  const util::Ecdf ecdf{std::vector<double>(analysis.ratios.begin(),
                                            analysis.ratios.end())};
  // Paper: ~70% of lives used > 75% of their duration; ~10% below 30%.
  EXPECT_NEAR(1.0 - ecdf.at(0.75), 0.70, 0.08);
  EXPECT_NEAR(ecdf.at(0.30), 0.10, 0.05);
}

TEST_F(IntegrationTest, ChinaTopsUnusedConcentration) {
  const joint::UnusedAnalysis analysis = joint::analyze_unused(
      pipeline().taxonomy, pipeline().admin, pipeline().op);
  // Among countries with enough allocations, CN must show the highest
  // unused fraction (paper: 50.6% vs <15% runners-up).
  double cn_fraction = 0;
  double best_other = 0;
  for (const joint::CountryUnusedRow& row : analysis.by_country) {
    if (row.total_lives < 30) continue;
    if (row.country.to_string() == "CN")
      cn_fraction = row.unused_fraction();
    else
      best_other = std::max(best_other, row.unused_fraction());
  }
  EXPECT_GT(cn_fraction, 0.4);
  EXPECT_GT(cn_fraction, best_other);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  const Pipeline second;
  EXPECT_EQ(second.admin.lifetimes.size(),
            pipeline().admin.lifetimes.size());
  EXPECT_EQ(second.op.lifetimes.size(), pipeline().op.lifetimes.size());
  EXPECT_EQ(second.taxonomy.admin_counts, pipeline().taxonomy.admin_counts);
  EXPECT_EQ(second.taxonomy.op_counts, pipeline().taxonomy.op_counts);
}

}  // namespace
}  // namespace pl
