#include <gtest/gtest.h>

#include "delegation/archive.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/render.hpp"
#include "rirsim/world.hpp"

namespace pl::rirsim {
namespace {

using asn::Rir;
using dele::FileCondition;
using dele::RecordState;
using util::Day;

class RenderTest : public ::testing::Test {
 protected:
  static const GroundTruth& truth() {
    static const GroundTruth world =
        build_world(WorldConfig::test_scale(11, 0.02));
    return world;
  }
};

/// Replay a change map up to (and including) `day` into a state table.
std::map<std::uint32_t, RecordState> replay(const ChangeMap& map, Day day) {
  std::map<std::uint32_t, RecordState> state;
  for (const auto& [event_day, changes] : map) {
    if (event_day > day) break;
    for (const dele::RecordChange& change : changes) {
      if (change.state)
        state[change.asn.value] = *change.state;
      else
        state.erase(change.asn.value);
    }
  }
  return state;
}

TEST_F(RenderTest, RenderedContentMatchesTruthOnSampleDays) {
  for (Rir rir : {Rir::kArin, Rir::kRipeNcc}) {
    const RenderedRegistry rendered = render_registry(truth(), rir);
    for (const Day day : {util::make_day(2005, 6, 1),
                          util::make_day(2012, 1, 15),
                          util::make_day(2020, 12, 31)}) {
      const auto state = replay(rendered.extended, day);
      // Every truth-allocated ASN of this registry must appear allocated.
      for (const TrueAdminLife& life : truth().lives) {
        if (!life.days.contains(day)) continue;
        if (life.registry_on(day) != rir) continue;
        bool interrupted = false;
        for (const Interruption& gap : life.interruptions)
          if (gap.days.contains(day)) interrupted = true;
        const auto it = state.find(life.asn.value);
        ASSERT_NE(it, state.end())
            << asn::to_string(life.asn) << " missing on "
            << util::format_iso(day);
        if (interrupted)
          EXPECT_EQ(it->second.status, dele::Status::kReserved);
        else
          EXPECT_TRUE(dele::is_delegated(it->second.status));
      }
      // And nothing is allocated that truth says is not.
      for (const auto& [asn_value, record] : state) {
        if (!dele::is_delegated(record.status)) continue;
        bool found = false;
        const auto lives_it = truth().lives_by_asn.find(asn_value);
        ASSERT_NE(lives_it, truth().lives_by_asn.end());
        for (const std::size_t index : lives_it->second) {
          const TrueAdminLife& life = truth().lives[index];
          if (life.days.contains(day) && life.registry_on(day) == rir)
            found = true;
        }
        EXPECT_TRUE(found) << asn_value << " spuriously allocated";
      }
    }
  }
}

TEST_F(RenderTest, PublishLagShiftsFileAppearance) {
  // Lives with a publication lag appear in the rendered files exactly
  // `publish_lag_days` after their true start (footnote 6).
  for (Rir rir : {Rir::kAfrinic, Rir::kArin}) {
    const RenderedRegistry rendered = render_registry(truth(), rir);
    std::size_t checked = 0;
    for (const TrueAdminLife& life : truth().lives) {
      if (life.birth_registry() != rir || life.publish_lag_days == 0)
        continue;
      if (life.segments.front().rir != rir) continue;
      // The first extended-channel event for this ASN at or after the true
      // start must land exactly lag days later (unless an earlier life of
      // the ASN makes the boundary ambiguous — skip those).
      if (truth().lives_by_asn.at(life.asn.value).size() > 1) continue;
      bool found = false;
      for (const auto& [day, changes] : rendered.extended) {
        if (day < life.days.first) continue;
        for (const dele::RecordChange& change : changes)
          if (change.asn == life.asn && change.state &&
              dele::is_delegated(change.state->status)) {
            EXPECT_EQ(day, life.days.first + life.publish_lag_days)
                << asn::to_string(life.asn);
            found = true;
            break;
          }
        if (found) break;
      }
      EXPECT_TRUE(found) << asn::to_string(life.asn);
      ++checked;
    }
    EXPECT_GT(checked, 0u) << asn::display_name(rir);
  }
}

TEST_F(RenderTest, RegularChannelHasOnlyDelegatedRecords) {
  const RenderedRegistry rendered = render_registry(truth(), Rir::kApnic);
  const auto state = replay(rendered.regular, util::make_day(2015, 3, 3));
  for (const auto& [asn_value, record] : state)
    EXPECT_TRUE(dele::is_delegated(record.status)) << asn_value;
}

TEST_F(RenderTest, ReservedQuarantineAppearsInExtended) {
  const RenderedRegistry rendered = render_registry(truth(), Rir::kArin);
  bool saw_reserved = false;
  for (const auto& [day, changes] : rendered.extended)
    for (const auto& change : changes)
      if (change.state && change.state->status == dele::Status::kReserved)
        saw_reserved = true;
  EXPECT_TRUE(saw_reserved);
}

class InjectTest : public ::testing::Test {
 protected:
  static const GroundTruth& truth() {
    static const GroundTruth world =
        build_world(WorldConfig::test_scale(13, 0.02));
    return world;
  }
  static const SimulatedArchive& archive() {
    static InjectorConfig config = [] {
      InjectorConfig c;
      c.seed = 5;
      c.scale = 0.02;
      return c;
    }();
    static const SimulatedArchive instance(truth(), config);
    return instance;
  }
};

TEST_F(InjectTest, StreamCoversArchiveWindowInOrder) {
  auto stream = archive().stream(Rir::kLacnic);
  Day expected = truth().archive_begin;
  std::optional<dele::DayObservation> observation;
  std::size_t days = 0;
  while ((observation = stream->next())) {
    EXPECT_EQ(observation->day, expected);
    ++expected;
    ++days;
  }
  EXPECT_EQ(days, static_cast<std::size_t>(truth().archive_end -
                                           truth().archive_begin + 1));
}

TEST_F(InjectTest, ConditionsFollowPublicationEras) {
  auto stream = archive().stream(Rir::kArin);
  const asn::RirFacts& facts = asn::facts(Rir::kArin);
  std::optional<dele::DayObservation> observation;
  while ((observation = stream->next())) {
    const Day day = observation->day;
    if (day < facts.first_extended_file) {
      EXPECT_EQ(observation->extended.condition,
                FileCondition::kNotPublished);
    }
    if (day > *facts.last_regular_file) {
      EXPECT_EQ(observation->regular.condition,
                FileCondition::kNotPublished)
          << util::format_iso(day);
    }
    if (day < facts.first_regular_file) {
      EXPECT_EQ(observation->regular.condition,
                FileCondition::kNotPublished);
    }
  }
}

TEST_F(InjectTest, MissingDaysMatchSchedule) {
  const DefectSchedule& schedule = archive().schedule(Rir::kRipeNcc);
  auto stream = archive().stream(Rir::kRipeNcc);
  std::optional<dele::DayObservation> observation;
  std::size_t missing_seen = 0;
  while ((observation = stream->next())) {
    const bool scheduled =
        schedule.missing_days[0].contains(observation->day);
    if (observation->extended.condition == FileCondition::kMissing) {
      EXPECT_TRUE(scheduled);
      ++missing_seen;
    }
  }
  EXPECT_GT(missing_seen, 0u);
}

TEST_F(InjectTest, SuppressedAsnsVanishAndReturn) {
  const DefectSchedule& schedule = archive().schedule(Rir::kRipeNcc);
  // Find a suppression episode on the extended channel.
  const DefectSchedule::Suppression* episode = nullptr;
  for (const auto& s : schedule.suppressions)
    if (s.channel == Channel::kExtended && !s.asns.empty()) {
      episode = &s;
      break;
    }
  ASSERT_NE(episode, nullptr);

  auto stream = archive().stream(Rir::kRipeNcc);
  std::map<std::uint32_t, RecordState> state;
  bool vanished = false;
  bool returned = false;
  std::optional<dele::DayObservation> observation;
  const std::uint32_t target = episode->asns.front().value;
  bool present_before = false;
  while ((observation = stream->next())) {
    if (observation->extended.condition == FileCondition::kPresent) {
      for (const auto& change : observation->extended.changes) {
        if (change.state)
          state[change.asn.value] = *change.state;
        else
          state.erase(change.asn.value);
      }
    }
    if (observation->day == episode->days.first - 1)
      present_before = state.contains(target);
    if (observation->day == episode->days.first &&
        observation->extended.condition == FileCondition::kPresent)
      vanished = !state.contains(target);
    if (observation->day == episode->days.last + 1 &&
        observation->extended.condition == FileCondition::kPresent)
      returned = state.contains(target);
  }
  if (present_before) {
    EXPECT_TRUE(vanished);
    EXPECT_TRUE(returned);
  }
}

TEST_F(InjectTest, AfrinicDuplicatesEmitted) {
  const DefectSchedule& schedule = archive().schedule(Rir::kAfrinic);
  ASSERT_FALSE(schedule.duplicates.empty());
  const auto& episode = schedule.duplicates.front();
  auto stream = archive().stream(Rir::kAfrinic);
  std::optional<dele::DayObservation> observation;
  bool saw_duplicate = false;
  while ((observation = stream->next())) {
    if (!observation->extended.duplicates.empty() &&
        episode.days.contains(observation->day)) {
      for (const auto& [dup_asn, dup_state] : observation->extended.duplicates)
        if (dup_asn == episode.asn) saw_duplicate = true;
    }
  }
  EXPECT_TRUE(saw_duplicate);
}

TEST_F(InjectTest, PlaceholderOverridesScheduledForRipe) {
  const DefectSchedule& schedule = archive().schedule(Rir::kRipeNcc);
  bool found = false;
  for (const auto& o : schedule.date_overrides)
    if (o.shown == util::make_day(1993, 9, 1)) found = true;
  EXPECT_TRUE(found);
}

TEST_F(InjectTest, StaleTransferExtrasScheduled) {
  bool any = false;
  for (Rir rir : asn::kAllRirs)
    for (const auto& extra : archive().schedule(rir).extras)
      if (extra.stale_transfer) any = true;
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace pl::rirsim
