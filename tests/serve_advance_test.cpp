// Incremental day-advance vs full rebuild, bit-for-bit.
//
// Strategy: run ONE extended pipeline over the full simulated history (the
// world E). Truncate its restored archive + activity table to a day D some
// weeks before the end and build a snapshot of that shorter world; then
// advance it one day at a time using DayDeltas sliced out of E. After every
// stretch the advanced snapshot must compare equal — rows, derived indexes,
// AND working set — to Snapshot::build over the same truncation, and at the
// end to the full world's snapshot. Runs plain and under transport chaos.
#include <gtest/gtest.h>

#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/snapshot.hpp"

namespace pl::serve {
namespace {

void advance_equals_rebuild(const pipeline::Config& config, int days_back) {
  const pipeline::Result extended = pipeline::run_simulated(config);
  const util::Day end = extended.truth.archive_end;
  const util::Day start = end - days_back;
  ASSERT_GT(start, extended.truth.archive_begin);

  Snapshot advanced = history::HistoryStore::rebuild_at(
      extended.restored, extended.op_world.activity, start);
  ASSERT_TRUE(advanced.can_advance());

  AdvanceStats total;
  for (util::Day day = start + 1; day <= end; ++day) {
    const DayDelta delta =
        slice_day(extended.restored, extended.op_world.activity, day);
    ASSERT_EQ(delta.day, day);
    AdvanceStats stats;
    const pl::Status status = advanced.advance_day(delta, &stats);
    ASSERT_TRUE(status.ok()) << status.to_string();
    EXPECT_EQ(advanced.archive_end(), day);
    total.facts += stats.facts;
    total.active += stats.active;
    total.reclassified += stats.reclassified;

    // Spot-check mid-stretch too, not only at the end: catches drift that a
    // later day would happen to repair.
    if (day == start + days_back / 2) {
      const Snapshot rebuilt = history::HistoryStore::rebuild_at(
          extended.restored, extended.op_world.activity, day);
      EXPECT_TRUE(advanced == rebuilt) << "diverged by day " << day;
    }
  }

  // The days being advanced are real history, so they carry facts.
  EXPECT_GT(total.facts, 0);
  EXPECT_GT(total.active, 0);

  const Snapshot full =
      Snapshot::build(extended.restored, extended.op_world.activity, end);
  EXPECT_TRUE(advanced == full)
      << "advanced snapshot != full rebuild after " << days_back << " days";
}

TEST(ServeAdvance, ThirtyFiveDaysBitIdenticalToRebuild) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.02;
  advance_equals_rebuild(config, 35);
}

TEST(ServeAdvance, DifferentSeedAndScale) {
  pipeline::Config config;
  config.seed = 7;
  config.scale = 0.01;
  advance_equals_rebuild(config, 31);
}

TEST(ServeAdvance, BitIdenticalUnderChaos) {
  // Transport chaos perturbs the restored archive (quarantined days, gap
  // fills); whatever the restorer produced is still advanced exactly.
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.02;
  config.inject_chaos = true;
  advance_equals_rebuild(config, 35);
}

TEST(ServeAdvance, SliceDayIsDeterministicAndOrdered) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  const pipeline::Result result = pipeline::run_simulated(config);
  const util::Day day = result.truth.archive_end - 10;

  const DayDelta a =
      slice_day(result.restored, result.op_world.activity, day);
  const DayDelta b =
      slice_day(result.restored, result.op_world.activity, day);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.delegation.size(), 0u);
  EXPECT_GT(a.active.size(), 0u);
  // Registry-major, ascending ASN within each registry block.
  for (std::size_t i = 1; i < a.delegation.size(); ++i) {
    const std::size_t prev = asn::index_of(a.delegation[i - 1].registry);
    const std::size_t cur = asn::index_of(a.delegation[i].registry);
    EXPECT_LE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(a.delegation[i - 1].asn, a.delegation[i].asn);
    }
  }
  for (std::size_t i = 1; i < a.active.size(); ++i)
    EXPECT_LT(a.active[i - 1], a.active[i]);
}

TEST(ServeAdvance, TruncationClipsButKeepsEarlierHistory) {
  pipeline::Config config;
  config.seed = 99;
  config.scale = 0.01;
  const pipeline::Result result = pipeline::run_simulated(config);
  const util::Day cut = result.truth.archive_end - 100;

  const restore::RestoredArchive clipped =
      history::HistoryStore::truncate_archive(result.restored, cut);
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    EXPECT_LE(clipped.registries[r].spans.size(),
              result.restored.registries[r].spans.size());
    for (const auto& [asn_value, spans] : clipped.registries[r].spans) {
      ASSERT_FALSE(spans.empty());
      for (const restore::StateSpan& span : spans)
        EXPECT_LE(span.days.last, cut);
    }
  }
  const bgp::ActivityTable activity =
      history::HistoryStore::truncate_activity(result.op_world.activity, cut);
  for (const auto& [asn_key, days] : activity.entries())
    EXPECT_LE(days.span().last, cut);
}

}  // namespace
}  // namespace pl::serve
