// HistoryStore reconstruction: `*at(D)` must be bit-identical to a full
// rebuild over the world truncated at D — rows, derived indexes, AND
// working set — for EVERY day in the recorded range, across seeds,
// keyframe intervals, and transport chaos. Also locks the size contract
// the subsystem exists for (mean compact delta <= 10% of a mean keyframe
// at the default interval), random-access cache behavior, save/open
// round-trips, and the pipeline adapter.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "history/serving.hpp"
#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/snapshot.hpp"

namespace pl::history {
namespace {

pipeline::Config world_config(std::uint64_t seed, double scale,
                              bool chaos = false) {
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  config.inject_chaos = chaos;
  return config;
}

/// Build a store over the trailing `days_back` days of the world.
pl::StatusOr<HistoryStore> trailing_store(const pipeline::Result& world,
                                          int days_back,
                                          HistoryConfig config = {}) {
  const util::Day end = world.truth.archive_end;
  return HistoryStore::build(world.restored, world.op_world.activity,
                             end - days_back, end, config);
}

/// Full-oracle sweep: every recorded day compared against a fresh rebuild
/// of the truncated world. O(days × rebuild) — reserve for the flagship
/// configs; the interval matrix uses the cheaper cursor oracle below.
void expect_every_day_matches_rebuild(HistoryStore& store,
                                      const pipeline::Result& world) {
  for (util::Day day = store.earliest_day(); day <= store.latest_day();
       ++day) {
    auto got = store.at(day);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    const serve::Snapshot rebuilt = HistoryStore::rebuild_at(
        world.restored, world.op_world.activity, day);
    ASSERT_TRUE(**got == rebuilt) << "reconstruction diverged on day " << day;
  }
}

/// Cursor oracle: one snapshot advanced day by day (itself rebuild-equal,
/// locked by serve_advance_test) compared against every at(). Cheap enough
/// for the seeds × intervals matrix.
void expect_every_day_matches_cursor(HistoryStore& store,
                                     const pipeline::Result& world) {
  serve::Snapshot cursor = HistoryStore::rebuild_at(
      world.restored, world.op_world.activity, store.earliest_day());
  for (util::Day day = store.earliest_day(); day <= store.latest_day();
       ++day) {
    if (day > store.earliest_day()) {
      const serve::DayDelta delta = HistoryStore::slice_day(
          world.restored, world.op_world.activity, day);
      ASSERT_TRUE(cursor.advance_day(delta).ok());
    }
    auto got = store.at(day);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    ASSERT_TRUE(**got == cursor) << "reconstruction diverged on day " << day;
  }
}

TEST(HistoryReconstruct, EveryDayBitIdenticalToRebuild) {
  const pipeline::Result world =
      pipeline::run_simulated(world_config(99, 0.02));
  auto store = trailing_store(world, 35);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  expect_every_day_matches_rebuild(*store, world);

  // The size contract: a compact delta must average <= 10% of a keyframe
  // at the default interval — otherwise delta compression isn't buying
  // anything over storing every day whole.
  const HistoryStats stats = store->stats();
  EXPECT_EQ(stats.deltas, 35);
  EXPECT_GT(stats.keyframes, 1);  // base + every 16th day
  EXPECT_GT(stats.delta_bytes, 0);
  EXPECT_LE(stats.mean_delta_bytes(), 0.10 * stats.mean_keyframe_bytes())
      << "mean delta " << stats.mean_delta_bytes() << "B vs mean keyframe "
      << stats.mean_keyframe_bytes() << "B";
}

TEST(HistoryReconstruct, EveryDayBitIdenticalUnderChaos) {
  // Transport chaos perturbs the restored archive (quarantined days, gap
  // fills); whatever the restorer produced is still history, recorded and
  // reconstructed exactly.
  const pipeline::Result world =
      pipeline::run_simulated(world_config(99, 0.02, /*chaos=*/true));
  auto store = trailing_store(world, 35);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  expect_every_day_matches_rebuild(*store, world);
}

TEST(HistoryReconstruct, SeedAndIntervalMatrix) {
  for (const std::uint64_t seed : {99ull, 7ull}) {
    const pipeline::Result world =
        pipeline::run_simulated(world_config(seed, 0.01));
    for (const int interval : {1, 5, 16}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " interval " +
                   std::to_string(interval));
      auto store =
          trailing_store(world, 20, HistoryConfig{interval});
      ASSERT_TRUE(store.ok()) << store.status().to_string();
      expect_every_day_matches_cursor(*store, world);
      if (interval == 1)
        EXPECT_EQ(store->stats().keyframes, 21);  // every day, base included
    }
  }
}

TEST(HistoryReconstruct, RandomAccessOrderIsIrrelevant) {
  // The store has ONE cache slot; jumping backwards forces a keyframe
  // re-decode, jumping forwards rolls in place. Every order must produce
  // the same bits.
  const pipeline::Result world =
      pipeline::run_simulated(world_config(99, 0.01));
  auto store = trailing_store(world, 20);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  const util::Day base = store->earliest_day();
  const util::Day end = store->latest_day();

  for (const util::Day day : {end, base, base + 10, end - 1, base + 3}) {
    auto got = store->at(day);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    const serve::Snapshot rebuilt = HistoryStore::rebuild_at(
        world.restored, world.op_world.activity, day);
    EXPECT_TRUE(**got == rebuilt) << "diverged at random-access day " << day;
  }
  const HistoryStats stats = store->stats();
  EXPECT_EQ(stats.reconstructs, 5);
  EXPECT_GT(stats.delta_folds, 0);
}

TEST(HistoryReconstruct, SaveOpenRoundTrip) {
  const pipeline::Result world =
      pipeline::run_simulated(world_config(99, 0.01));
  auto store = trailing_store(world, 20);
  ASSERT_TRUE(store.ok()) << store.status().to_string();

  const std::string path = testing::TempDir() + "history_roundtrip.plhist";
  std::filesystem::remove(path);
  ASSERT_TRUE(store->save(path).ok());

  auto reopened = HistoryStore::open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened->config(), store->config());
  EXPECT_EQ(reopened->earliest_day(), store->earliest_day());
  EXPECT_EQ(reopened->latest_day(), store->latest_day());
  const HistoryStats a = store->stats();
  const HistoryStats b = reopened->stats();
  EXPECT_EQ(a.keyframes, b.keyframes);
  EXPECT_EQ(a.deltas, b.deltas);
  EXPECT_EQ(a.keyframe_bytes, b.keyframe_bytes);
  EXPECT_EQ(a.delta_bytes, b.delta_bytes);

  for (const util::Day day :
       {store->earliest_day(), store->latest_day(),
        static_cast<util::Day>(store->earliest_day() + 7)}) {
    auto original = store->at(day);
    ASSERT_TRUE(original.ok());
    const serve::Snapshot want = **original;  // copy: next at() reuses slot
    auto loaded = reopened->at(day);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    EXPECT_TRUE(**loaded == want) << "reopened store diverged on day " << day;
  }

  // inspect() agrees with the store it summarizes, without decoding days.
  auto info = inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info->version, kHistoryFormatVersion);
  EXPECT_EQ(info->base_day, store->earliest_day());
  EXPECT_EQ(info->last_day, store->latest_day());
  EXPECT_EQ(info->keyframe_interval, store->config().keyframe_interval);
  EXPECT_EQ(info->keyframes, a.keyframes);
  EXPECT_EQ(info->deltas, a.deltas);
}

TEST(HistoryReconstruct, PipelineAdapterBuildsServableWorld) {
  HistoryWorldConfig world_config_;
  world_config_.days = 40;
  HistoryWorld world =
      run_simulated_history(world_config(99, 0.01), world_config_);
  ASSERT_TRUE(world.build_status.ok()) << world.build_status.to_string();
  const util::Day end = world.result.truth.archive_end;
  EXPECT_EQ(world.history.latest_day(), end);
  EXPECT_EQ(world.history.earliest_day(), end - 39);
  EXPECT_EQ(world.snapshot.archive_end(), end);

  // The carried snapshot IS the store's final day.
  auto latest = world.history.at(end);
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(**latest == world.snapshot);
}

TEST(HistoryReconstruct, ErrorsArePreciseAndTyped) {
  HistoryStore empty_store;
  EXPECT_EQ(empty_store.at(100).status().code(),
            pl::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(empty_store.empty());
  EXPECT_EQ(empty_store.save(testing::TempDir() + "never.plhist").code(),
            pl::StatusCode::kFailedPrecondition);

  const pipeline::Result world =
      pipeline::run_simulated(world_config(99, 0.01));
  auto store = trailing_store(world, 10);
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  EXPECT_EQ(store->at(store->earliest_day() - 1).status().code(),
            pl::StatusCode::kNotFound);
  EXPECT_EQ(store->at(store->latest_day() + 1).status().code(),
            pl::StatusCode::kNotFound);

  // Out-of-sequence appends are refused before any state changes.
  const serve::DayDelta wrong_day = HistoryStore::slice_day(
      world.restored, world.op_world.activity, store->latest_day() + 5);
  auto current = store->at(store->latest_day());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(store->append_day(wrong_day, **current).code(),
            pl::StatusCode::kInvalidArgument);

  EXPECT_EQ(HistoryStore::open(testing::TempDir() + "no_such.plhist")
                .status()
                .code(),
            pl::StatusCode::kNotFound);
}

}  // namespace
}  // namespace pl::history
