// Must flag: draining a hash table straight into an output vector.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> export_names(
    const std::unordered_map<std::string, int>& table) {
  std::unordered_map<std::string, int> counts = table;
  std::vector<std::string> out;
  for (const auto& [name, count] : counts) out.push_back(name);
  return out;
}
