// Must pass: the sorted-drain idiom — keys are collected and sorted before
// the order-sensitive walk.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> export_names(
    const std::unordered_map<std::string, int>& table) {
  std::vector<std::string> keys;
  for (const auto& [name, count] : table) keys.push_back(name);
  std::sort(keys.begin(), keys.end());
  return keys;
}
