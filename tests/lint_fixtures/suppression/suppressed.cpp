// A finding silenced by a justified allow(): the tally below is an
// order-independent fold, so hash order cannot reach any output.
#include <unordered_map>

int total(const std::unordered_map<int, int>& counts) {
  int sum = 0;
  // pl-lint: allow(unordered-drain) order-independent sum; addition
  // commutes, so iteration order never surfaces.
  for (const auto& [key, value] : counts) sum += value;
  return sum;
}
