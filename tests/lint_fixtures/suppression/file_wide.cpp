// pl-lint: allow-file(nondet-rand) fixture exercising file-wide scope.
#include <cstdlib>

int first() { return std::rand(); }

int second() { return std::rand(); }
