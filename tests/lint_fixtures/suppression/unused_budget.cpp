// An allow() that silences nothing still counts as declared budget.
// pl-lint: allow(naked-new) defensive comment with no matching finding
int plain() { return 7; }
