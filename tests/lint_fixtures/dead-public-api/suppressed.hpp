// Dead-public-api suppression fixture; linted as src/widget/api.hpp with no
// consumer: the in-place justification absorbs the finding into the budget.
#pragma once

namespace pl::widget {

// pl-lint: allow(dead-public-api) fixture: reserved extension point called
// by generated bindings outside this repo
inline int helper_answer() { return 42; }

}  // namespace pl::widget
