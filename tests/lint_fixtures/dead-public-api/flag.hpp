// Dead-public-api flag fixture; linted as src/widget/api.hpp with no other
// file referencing the helper: an exported free function nobody calls.
#pragma once

namespace pl::widget {

inline int helper_answer() { return 42; }

}  // namespace pl::widget
