// Cross-TU consumer for the dead-public-api pass fixture; linted as
// src/other/use.cpp. The reference from a second translation unit is what
// keeps the header's helper alive.
#include "widget/api.hpp"

namespace pl::other {

int use_helper() { return pl::widget::helper_answer() * 2; }

}  // namespace pl::other
