// Must pass: self-guarding header.
#pragma once

inline int answer() { return 42; }
