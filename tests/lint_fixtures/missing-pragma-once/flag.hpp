// Must flag: a header with no include guard at all.
inline int answer() { return 42; }
