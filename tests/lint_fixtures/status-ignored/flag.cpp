// Must flag: the pl::Status from a flush call is dropped on the floor —
// once as a bare statement, once behind the `(void)` cast that defeats
// [[nodiscard]].
#include "widget/flag.hpp"

namespace widget {

Status flush_index(int epoch);

void shutdown(int epoch) {
  flush_index(epoch);
  (void)flush_index(epoch + 1);
}

}  // namespace widget
