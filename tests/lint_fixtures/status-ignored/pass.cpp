// Must pass: every Status is consumed — bound to a variable, tested inside
// a condition, or propagated through the caller's own return.
#include "widget/pass.hpp"

namespace widget {

Status flush_index(int epoch);
StatusOr<int> load_epoch();

Status shutdown(int epoch) {
  Status last = flush_index(epoch);
  if (!last.ok()) return last;
  auto epoch_or = load_epoch();
  if (epoch_or.ok() && flush_index(*epoch_or).ok()) return last;
  return flush_index(epoch + 1);
}

}  // namespace widget
