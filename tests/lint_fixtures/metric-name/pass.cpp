// Must pass: conforming literals, a complete label block, and a prefix
// under construction whose dynamic tail is exempt.
#include "widget/pass.hpp"

#include <string>

struct Registry {
  int& counter(const std::string&) { static int value = 0; return value; }
  int& histogram(const std::string&) { static int value = 0; return value; }
};

void record(Registry& registry, const std::string& registry_name) {
  registry.counter("pl_restore_days_total");
  registry.histogram("pl_restore_gap{registry=\"ripe\"}");
  registry.counter("pl_restore_rows{registry=\"" + registry_name + "\"}");
}
