// Must flag: metric literals that break pl_<module>_<what>.
#include "widget/flag.hpp"

struct Registry {
  int& counter(const char*) { static int value = 0; return value; }
  int& gauge(const char*) { static int value = 0; return value; }
};

void record(Registry& registry) {
  registry.counter("restoreDays");
  registry.gauge("pl_Restore_days");
}
