// Must flag: stream tokenization and stoi-on-substr in the restore layer.
#include "restore/flag.hpp"

#include <sstream>
#include <string>

int parse_record(const std::string& line) {
  std::istringstream stream(line);
  std::string field;
  std::getline(stream, field, '|');
  return std::stoi(line.substr(0, 4));
}
