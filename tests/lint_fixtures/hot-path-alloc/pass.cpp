// Must pass: in-place parsing keeps the hot path allocation-free; plain
// stoi over a whole string is fine, and the one cold-path formatter carries
// a justified allow().
#include "restore/pass.hpp"

#include <charconv>
#include <sstream>
#include <string>
#include <string_view>

int parse_record(std::string_view line) {
  int value = 0;
  std::from_chars(line.data(), line.data() + line.size(), value);
  return value;
}

int parse_whole(const std::string& token) { return std::stoi(token); }

std::string cold_report(int value) {
  // Once-per-run summary, not per-record work.
  // pl-lint: allow(hot-path-alloc) cold path: one report per restore run
  std::ostringstream out;
  out << value;
  return out.str();
}
