// Include-cycle pass fixture: a plain acyclic chain; linted as
// src/util/chain_a.hpp.
#pragma once

#include "util/chain_b.hpp"

namespace pl::util {

inline int chain_a_value() { return pl::util::chain_b_value() + 1; }

}  // namespace pl::util
