// Half of the include-cycle flag fixture; linted as src/util/cyc_a.hpp.
// cyc_a -> cyc_b -> cyc_a must flag once, anchored here (smallest member).
#pragma once

#include "util/cyc_b.hpp"

namespace pl::util {

inline int cyc_a_value() { return 1; }

}  // namespace pl::util
