// Leaf of the include-cycle pass fixture; linted as src/util/chain_b.hpp.
#pragma once

namespace pl::util {

inline int chain_b_value() { return 2; }

}  // namespace pl::util
