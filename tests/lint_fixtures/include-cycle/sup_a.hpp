// Include-cycle suppression fixture; linted as src/util/sup_a.hpp. The
// cycle sup_a <-> sup_b is acknowledged where the finding anchors (the
// smallest member's outgoing include), so it burns budget instead of
// failing.
#pragma once

// pl-lint: allow(include-cycle) fixture: legacy tangle scheduled for the
// next refactor
#include "util/sup_b.hpp"

namespace pl::util {

inline int sup_a_value() { return 1; }

}  // namespace pl::util
