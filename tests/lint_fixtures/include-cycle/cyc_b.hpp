// Other half of the include-cycle flag fixture; linted as
// src/util/cyc_b.hpp.
#pragma once

#include "util/cyc_a.hpp"

namespace pl::util {

inline int cyc_b_value() { return pl::util::cyc_a_value() + 1; }

}  // namespace pl::util
