// Other half of the include-cycle suppression fixture; linted as
// src/util/sup_b.hpp.
#pragma once

#include "util/sup_a.hpp"

namespace pl::util {

inline int sup_b_value() { return pl::util::sup_a_value() + 1; }

}  // namespace pl::util
