// Must flag: manual ownership in pipeline code.
#include "widget/flag.hpp"

struct Node {
  int value = 0;
};

int leak_prone() {
  Node* node = new Node;
  const int value = node->value;
  delete node;
  return value;
}
