// Must pass: RAII ownership; `= delete` and operator overloads are not
// manual memory management.
#include "widget/pass.hpp"

#include <memory>

struct Node {
  int value = 0;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node() = default;
};

int raii() {
  const auto node = std::make_unique<Node>();
  return node->value;
}
