// Must flag: `using namespace` at header scope leaks into every includer.
#pragma once

#include <string>

using namespace std;

inline string shout(const string& text) { return text + "!"; }
