// Must pass: scoped using-declarations and qualified names only.
#pragma once

#include <string>

inline std::string shout(const std::string& text) { return text + "!"; }
