// Must flag: a QueryService entry point that answers without opening a
// span or recording a flight/request event.
#include "serve/flag.hpp"

struct AsnAnswer {
  int value = 0;
};

AsnAnswer QueryService::lookup(int asn) {
  AsnAnswer answer;
  answer.value = asn * 2;
  return answer;
}
