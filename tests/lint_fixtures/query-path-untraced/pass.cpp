// Must pass: the entry point records a per-request event, a declaration is
// not a definition, and a const accessor is exempt.
#include "serve/pass.hpp"

struct AliveAnswer {
  bool alive = false;
};

AliveAnswer QueryService::alive_on(int asn, int day) {
  record_event(asn, day);
  AliveAnswer answer;
  answer.alive = day > 0;
  return answer;
}

int QueryService::version() const { return 0; }
