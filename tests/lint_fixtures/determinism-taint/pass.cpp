// Determinism-taint pass fixture; linted as src/util/stamp.cpp. The det-ok
// annotation declares the sink function a deterministic boundary, which
// clears it and everything that calls it.
#include <chrono>

namespace pl::util {

// pl-lint: det-ok(fixture boundary: the stamp feeds only a log line)
double stamp_ms() {
  // pl-lint: allow(nondet-time) fixture sink behind a declared boundary
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double stamp_plus_one() { return stamp_ms() + 1.0; }

}  // namespace pl::util
