// Determinism-taint flag fixture; linted as src/util/stamp.cpp. The clock
// read itself is allow(nondet-time)'d — the per-file rule is satisfied, but
// the whole-program pass must still taint the sink function AND its caller,
// because nothing declares the boundary deterministic-by-construction.
#include <chrono>

namespace pl::util {

double stamp_ms() {
  // pl-lint: allow(nondet-time) fixture sink: the taint pass must still
  // see the clock read behind this per-file suppression
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double stamp_plus_one() { return stamp_ms() + 1.0; }

}  // namespace pl::util
