// Must flag: three banned randomness sources.
#include <cstdlib>
#include <random>

int noisy_seed() {
  std::random_device device;
  std::srand(device());
  return std::rand();
}
