// Must pass: seeded project Rng; `rand` reached through a member qualifier
// (someone else's API) is not the C library call.
struct Rng {
  unsigned state;
  unsigned next() { return state = state * 1664525u + 1013904223u; }
};

unsigned stable_draw(Rng& rng) { return rng.next(); }

struct Generator;
unsigned member_rand(const Generator* g);

unsigned forward(const Generator* g) { return member_rand(g); }
