// Must pass: own header first. Fed through lint_source as
// src/widget/pass.cpp.
#include "widget/pass.hpp"

#include <vector>

int widget_count() { return 3; }
