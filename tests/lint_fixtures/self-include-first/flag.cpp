// Must flag: the matching header is not the first include. The test feeds
// this through lint_source as src/widget/flag.cpp.
#include <vector>

#include "widget/other.hpp"
#include "widget/flag.hpp"

int widget_count() { return 3; }
