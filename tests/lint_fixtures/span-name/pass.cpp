// Must pass: lower_snake with ':' instance qualifiers.
#include "widget/pass.hpp"

struct Trace {
  Trace& root(const char*) { return *this; }
  Trace& child(const char*) { return *this; }
};

void trace(Trace& tracer) {
  tracer.root("restore_pipeline");
  tracer.child("reconcile:apnic");
}
