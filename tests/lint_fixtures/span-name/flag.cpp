// Must flag: span names must be lower_snake identifiers.
#include "widget/flag.hpp"

struct Trace {
  Trace& root(const char*) { return *this; }
  Trace& child(const char*) { return *this; }
};

void trace(Trace& tracer) {
  tracer.root("Restore Pipeline");
  tracer.child("reconcile registries!");
}
