// Must pass: time flows from the simulated calendar, and `time` with a real
// argument (not the argless host-clock read) is someone else's API.
using Day = int;

Day advance(Day day, int step) { return day + step; }

struct Schedule {
  int time(int slot) const { return slot * 2; }
};

int slot_time(const Schedule& schedule) { return schedule.time(3); }
