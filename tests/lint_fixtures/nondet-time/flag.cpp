// Must flag: host-clock reads in pipeline code.
#include <chrono>
#include <ctime>

long wall_now() {
  const auto tick = std::chrono::system_clock::now();
  const std::time_t seed = time(nullptr);
  return static_cast<long>(seed) + tick.time_since_epoch().count();
}
