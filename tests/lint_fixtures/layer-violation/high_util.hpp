// Include target for the layer-violation fixtures; linted as
// src/high/util.hpp.
#pragma once

namespace pl::high {

inline int util_size() { return 4; }

}  // namespace pl::high
