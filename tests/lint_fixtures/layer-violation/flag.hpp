// Linted as src/low/widget.hpp under the manifest "low < high": including
// upward from low into high must flag.
#pragma once

#include "high/util.hpp"

namespace pl::low {

inline int widget_size() { return pl::high::util_size() + 1; }

}  // namespace pl::low
