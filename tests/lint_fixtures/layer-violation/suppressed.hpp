// Linted as src/low/widget.hpp under the manifest "low < high": the upward
// include is justified in place, so the finding is absorbed into the
// suppression budget instead of failing the gate.
#pragma once

// pl-lint: allow(layer-violation) fixture: transitional include while the
// widget migrates up a layer
#include "high/util.hpp"

namespace pl::low {

inline int widget_size() { return pl::high::util_size() + 1; }

}  // namespace pl::low
