// Linted as src/high/widget.hpp under the manifest "low < high": higher
// layers may include lower ones, so this must stay clean.
#pragma once

#include "low/base.hpp"

namespace pl::high {

inline int widget_size() { return pl::low::base_size() + 1; }

}  // namespace pl::high
