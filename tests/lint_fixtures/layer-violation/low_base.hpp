// Include target for the layer-violation pass fixture; linted as
// src/low/base.hpp.
#pragma once

namespace pl::low {

inline int base_size() { return 2; }

}  // namespace pl::low
