// Both halves of the contract layer (src/check/contracts.hpp).
//
// Default build: the macros are inert shells — conditions are never
// evaluated (side effects must not fire) and violations pass silently.
// -DPL_CHECKED=ON build: the same suite swaps in death tests proving a
// violated contract prints its diagnosis and aborts, while satisfied
// contracts stay silent. tests/CMakeLists.txt compiles this file with
// whatever the ambient build sets, so the checked leg of
// scripts/verify-matrix.sh exercises the armed half.

#include <vector>

#include <gtest/gtest.h>

#include "check/contracts.hpp"

namespace {

struct Interval {
  int first = 0;
  int last = 0;
};

bool int_less(int a, int b) { return a < b; }

#if defined(PL_CHECKED) && PL_CHECKED

TEST(ContractsArmed, SatisfiedContractsAreSilent) {
  PL_EXPECT(1 + 1 == 2, "arithmetic holds");
  PL_ENSURE(true, "trivially satisfied");
  const std::vector<int> sorted = {1, 2, 2, 5};
  PL_ASSERT_SORTED(sorted, int_less, "sorted vector");
  const std::vector<Interval> disjoint = {{1, 3}, {5, 9}, {11, 11}};
  PL_ASSERT_DISJOINT(disjoint, "disjoint runs");
}

TEST(ContractsArmed, EmptyRangesAreVacuouslyFine) {
  const std::vector<int> empty_ints;
  PL_ASSERT_SORTED(empty_ints, int_less, "empty range");
  const std::vector<Interval> empty_runs;
  PL_ASSERT_DISJOINT(empty_runs, "empty runs");
}

TEST(ContractsArmedDeathTest, ViolatedExpectAbortsWithDiagnosis) {
  EXPECT_DEATH(PL_EXPECT(2 + 2 == 5, "arithmetic is broken"),
               "contract PL_EXPECT.*arithmetic is broken");
}

TEST(ContractsArmedDeathTest, ViolatedEnsureAborts) {
  EXPECT_DEATH(PL_ENSURE(false, "postcondition failed"),
               "contract PL_ENSURE.*postcondition failed");
}

TEST(ContractsArmedDeathTest, UnsortedRangeAborts) {
  const std::vector<int> unsorted = {3, 1, 2};
  EXPECT_DEATH(PL_ASSERT_SORTED(unsorted, int_less, "descending input"),
               "contract PL_ASSERT_SORTED.*not sorted");
}

TEST(ContractsArmedDeathTest, OverlappingRunsAbort) {
  const std::vector<Interval> overlapping = {{1, 5}, {4, 9}};
  EXPECT_DEATH(PL_ASSERT_DISJOINT(overlapping, "overlapping runs"),
               "contract PL_ASSERT_DISJOINT.*overlap");
}

TEST(ContractsArmedDeathTest, AdjacentRunsAbort) {
  // Touching runs ({1,4} then {5,9}) mean a coalesce pass was skipped: the
  // interval algebra requires at least one uncovered day between runs.
  const std::vector<Interval> touching = {{1, 4}, {5, 9}};
  EXPECT_DEATH(PL_ASSERT_DISJOINT(touching, "touching runs"),
               "contract PL_ASSERT_DISJOINT");
}

TEST(ContractsArmedDeathTest, EmptyRunAborts) {
  const std::vector<Interval> backwards = {{7, 3}};
  EXPECT_DEATH(PL_ASSERT_DISJOINT(backwards, "backwards run"),
               "contract PL_ASSERT_DISJOINT.*empty run");
}

#else  // disarmed

TEST(ContractsDisarmed, ConditionsAreNeverEvaluated) {
  bool evaluated = false;
  PL_EXPECT(([&] {
              evaluated = true;
              return false;
            })(),
            "never runs");
  PL_ENSURE(([&] {
              evaluated = true;
              return false;
            })(),
            "never runs");
  EXPECT_FALSE(evaluated) << "disarmed contracts must not evaluate their "
                             "conditions (hot paths pay nothing)";
}

TEST(ContractsDisarmed, ViolationsPassSilently) {
  PL_EXPECT(false, "ignored");
  PL_ENSURE(false, "ignored");
  const std::vector<int> unsorted = {3, 1, 2};
  PL_ASSERT_SORTED(unsorted, int_less, "ignored");
  const std::vector<Interval> overlapping = {{1, 5}, {4, 9}};
  PL_ASSERT_DISJOINT(overlapping, "ignored");
  SUCCEED();
}

#endif  // PL_CHECKED

}  // namespace
