// Checkpoint/resume for the streaming restoration pipeline: a restorer
// checkpointed at an arbitrary day boundary and resumed must produce a
// RestoredRegistry identical to an uninterrupted run — the property a
// crash-recovering daily-update deployment (paper 9) depends on. Also
// covers the checkpoint framing primitives and the misuse guard
// (consume/finalize/checkpoint on spent or moved-from restorers).
#include <gtest/gtest.h>

#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "robust/checkpoint.hpp"

namespace pl::restore {
namespace {

using dele::DayObservation;
using rirsim::GroundTruth;

class CheckpointTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.01;
  static constexpr asn::Rir kRir = asn::Rir::kRipeNcc;

  static const GroundTruth& truth() {
    static const GroundTruth world =
        rirsim::build_world(rirsim::WorldConfig::test_scale(17, kScale));
    return world;
  }

  /// One registry's full day stream, materialized so tests can split it.
  static const std::vector<DayObservation>& days() {
    static const std::vector<DayObservation> all = [] {
      rirsim::InjectorConfig config;
      config.seed = 5;
      config.scale = kScale;
      const rirsim::SimulatedArchive archive(truth(), config);
      std::vector<DayObservation> out;
      auto stream = archive.stream(kRir);
      while (auto observation = stream->next())
        out.push_back(std::move(*observation));
      return out;
    }();
    return all;
  }

  static RestoredRegistry run_uninterrupted(const RestoreConfig& config) {
    StreamingRestorer restorer(kRir, config, &truth().erx);
    for (const DayObservation& observation : days())
      restorer.consume(observation);
    return std::move(restorer).finalize();
  }

  static void expect_identical(const RestoredRegistry& a,
                               const RestoredRegistry& b) {
    EXPECT_EQ(a.rir, b.rir);
    EXPECT_EQ(a.report, b.report);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (const auto& [asn, spans] : a.spans) {
      const auto it = b.spans.find(asn);
      ASSERT_NE(it, b.spans.end()) << "ASN " << asn << " missing";
      EXPECT_EQ(spans, it->second) << "spans differ for ASN " << asn;
    }
  }
};

TEST_F(CheckpointTest, ResumeAtArbitraryBoundariesIsBitIdentical) {
  const RestoreConfig config;
  const RestoredRegistry baseline = run_uninterrupted(config);
  ASSERT_FALSE(days().empty());

  // Split at several arbitrary day boundaries, including degenerate ones.
  const std::size_t total = days().size();
  const std::size_t splits[] = {0, 1, total / 7, total / 2,
                                total - 1, total};
  for (const std::size_t split : splits) {
    StreamingRestorer first(kRir, config, &truth().erx);
    for (std::size_t i = 0; i < split; ++i) first.consume(days()[i]);
    const std::string blob = first.checkpoint();
    ASSERT_FALSE(blob.empty());

    // Simulated crash: `first` is abandoned; a fresh process resumes.
    auto resumed =
        StreamingRestorer::from_checkpoint(blob, config, &truth().erx);
    ASSERT_TRUE(resumed.has_value()) << "split at " << split;
    for (std::size_t i = split; i < total; ++i)
      resumed->consume(days()[i]);
    const RestoredRegistry rebuilt = std::move(*resumed).finalize();
    expect_identical(baseline, rebuilt);
  }
}

TEST_F(CheckpointTest, ResumeWithReorderWindowPendingDays) {
  // A checkpoint taken while the reorder window still holds days back must
  // carry the pending buffer; resuming mid-window stays differential.
  RestoreConfig config;
  config.reorder_window_days = 5;
  const RestoredRegistry baseline = run_uninterrupted(config);

  const std::size_t split = days().size() / 3;
  StreamingRestorer first(kRir, config, &truth().erx);
  for (std::size_t i = 0; i < split; ++i) first.consume(days()[i]);
  // With a 5-day window at least the newest days must still be pending.
  EXPECT_LT(first.report().days_processed,
            static_cast<std::int64_t>(split));

  auto resumed = StreamingRestorer::from_checkpoint(first.checkpoint(),
                                                    config, &truth().erx);
  ASSERT_TRUE(resumed.has_value());
  for (std::size_t i = split; i < days().size(); ++i)
    resumed->consume(days()[i]);
  expect_identical(baseline, std::move(*resumed).finalize());
}

TEST_F(CheckpointTest, CheckpointsAreDeterministic) {
  const RestoreConfig config;
  const std::size_t split = days().size() / 2;

  StreamingRestorer a(kRir, config, &truth().erx);
  StreamingRestorer b(kRir, config, &truth().erx);
  for (std::size_t i = 0; i < split; ++i) {
    a.consume(days()[i]);
    b.consume(days()[i]);
  }
  const std::string blob = a.checkpoint();
  EXPECT_EQ(blob, b.checkpoint());
  // Serializing a resumed restorer reproduces the blob byte for byte.
  auto resumed =
      StreamingRestorer::from_checkpoint(blob, config, &truth().erx);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(blob, resumed->checkpoint());
}

TEST_F(CheckpointTest, CorruptBlobsAreRejectedNotCrashed) {
  const RestoreConfig config;
  StreamingRestorer restorer(kRir, config, &truth().erx);
  for (std::size_t i = 0; i < days().size() / 4; ++i)
    restorer.consume(days()[i]);
  const std::string blob = restorer.checkpoint();

  robust::ErrorSink sink;
  // Bit flips across the blob (header, payload, trailer).
  for (const std::size_t position :
       {std::size_t{0}, std::size_t{5}, blob.size() / 2, blob.size() - 1}) {
    std::string damaged = blob;
    damaged[position] = static_cast<char>(damaged[position] ^ 0x40);
    EXPECT_FALSE(StreamingRestorer::from_checkpoint(damaged, config,
                                                    &truth().erx, nullptr,
                                                    &sink)
                     .has_value())
        << "flip at " << position;
  }
  // Truncations (torn writes).
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{20}, blob.size() - 1}) {
    EXPECT_FALSE(StreamingRestorer::from_checkpoint(blob.substr(0, keep),
                                                    config, &truth().erx,
                                                    nullptr, &sink)
                     .has_value())
        << "truncated to " << keep;
  }
  EXPECT_GT(sink.counters().checkpoint_failures, 0);
  EXPECT_GT(sink.counters().fatals, 0);

  // A different RestoreConfig must be refused — resuming under different
  // restoration rules silently changes semantics.
  RestoreConfig other;
  other.recovery_grace_days = 99;
  EXPECT_FALSE(StreamingRestorer::from_checkpoint(blob, other, &truth().erx)
                   .has_value());
}

TEST_F(CheckpointTest, SpentAndMovedFromRestorersAreMisuseSafe) {
  const RestoreConfig config;
  robust::ErrorSink sink;
  StreamingRestorer restorer(kRir, config, &truth().erx, nullptr, &sink);
  restorer.consume(days().front());
  const RestoredRegistry result = std::move(restorer).finalize();
  EXPECT_EQ(result.report.days_processed, 1);

  // consume() after finalize(): counted no-op, not UB.
  restorer.consume(days().front());
  restorer.consume(days().front());
  EXPECT_EQ(restorer.report().misuse_calls, 2);
  EXPECT_TRUE(restorer.checkpoint().empty());
  EXPECT_EQ(restorer.report().misuse_calls, 3);
  // The frozen report still carries the pre-finalize counters.
  EXPECT_EQ(restorer.report().days_processed, 1);
  EXPECT_GE(sink.counters().misuse_calls, 3);
  EXPECT_GT(sink.counters().fatals, 0);

  // Moved-from restorer: same guard.
  StreamingRestorer source(kRir, config, &truth().erx, nullptr, &sink);
  StreamingRestorer target = std::move(source);
  source.consume(days().front());
  EXPECT_EQ(source.report().misuse_calls, 1);
  target.consume(days().front());
  EXPECT_EQ(target.report().days_processed, 1);
}

// ---- Framing primitives.

TEST(CheckpointFraming, RoundTripsEveryFieldKind) {
  robust::CheckpointWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFull);
  writer.i32(-123456);
  writer.i64(-9876543210);
  writer.boolean(true);
  writer.varint(0);
  writer.varint(300);
  writer.varint(~0ull);
  writer.str("delegated-parsed-1997");
  const std::string blob = std::move(writer).finish();

  robust::CheckpointReader reader(blob);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.i32(), -123456);
  EXPECT_EQ(reader.i64(), -9876543210);
  EXPECT_TRUE(reader.boolean());
  EXPECT_EQ(reader.varint(), 0u);
  EXPECT_EQ(reader.varint(), 300u);
  EXPECT_EQ(reader.varint(), ~0ull);
  EXPECT_EQ(reader.str(), "delegated-parsed-1997");
  EXPECT_TRUE(reader.at_end());
  EXPECT_TRUE(reader.ok());
}

TEST(CheckpointFraming, ReaderLatchesOnExhaustionInsteadOfOverrunning) {
  robust::CheckpointWriter writer;
  writer.u16(7);
  const std::string blob = std::move(writer).finish();
  robust::CheckpointReader reader(blob);
  EXPECT_EQ(reader.u16(), 7);
  EXPECT_EQ(reader.u64(), 0u);  // exhausted: zero value, latched failure
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u8(), 0u);   // still safe
}

TEST(CheckpointFraming, HostileContainerCountsAreRejectedBeforeAllocation) {
  // A corrupted count must fail the bounds check, not drive a giant
  // reserve/allocate loop.
  robust::CheckpointWriter writer;
  writer.varint(~0ull >> 1);  // claims ~9e18 items
  writer.u32(1);
  const std::string blob = std::move(writer).finish();
  robust::CheckpointReader reader(blob);
  EXPECT_EQ(reader.container_size(4), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(CheckpointFraming, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(robust::crc32("123456789"), 0xCBF43926u);
}

}  // namespace
}  // namespace pl::restore
