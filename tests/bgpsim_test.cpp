#include <gtest/gtest.h>

#include "bgp/rib.hpp"
#include "bgp/sanitizer.hpp"
#include "bgpsim/route_gen.hpp"
#include "rirsim/world.hpp"

namespace pl::bgpsim {
namespace {

using rirsim::GroundTruth;
using rirsim::TrueAdminLife;

class OpWorldTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.03;

  static const GroundTruth& truth() {
    static const GroundTruth world =
        rirsim::build_world(rirsim::WorldConfig::test_scale(21, kScale));
    return world;
  }

  static const OpWorld& world() {
    static const OpWorld instance = [] {
      OpWorldConfig config;
      config.attacks.scale = kScale;
      config.misconfigs.scale = kScale;
      return build_op_world(truth(), config);
    }();
    return instance;
  }
};

TEST_F(OpWorldTest, PlansHaveSortedDisjointLives) {
  for (const AsnOpPlan& plan : world().behavior.plans) {
    for (std::size_t i = 1; i < plan.lives.size(); ++i)
      EXPECT_GT(plan.lives[i].days.first, plan.lives[i - 1].days.last)
          << asn::to_string(plan.asn);
  }
}

TEST_F(OpWorldTest, CanonicalLivesStayInsideAdminLife) {
  for (const AsnOpPlan& plan : world().behavior.plans) {
    if (plan.kind != BehaviorKind::kCanonical || plan.truth_life_index < 0)
      continue;
    const TrueAdminLife& life =
        truth().lives[static_cast<std::size_t>(plan.truth_life_index)];
    for (const OpLifePlan& op : plan.lives) {
      // Post-deallocation benign lives may be appended by the attack
      // injector; skip those (they start after the admin life ends).
      if (op.days.first > life.days.last) continue;
      EXPECT_TRUE(life.days.contains(op.days))
          << asn::to_string(plan.asn);
    }
  }
}

TEST_F(OpWorldTest, DormantAwakeningsHaveLongDormancy) {
  for (const AsnOpPlan& plan : world().behavior.plans) {
    if (plan.kind != BehaviorKind::kDormantThenAwake) continue;
    if (plan.lives.empty() || plan.truth_life_index < 0) continue;
    const TrueAdminLife& life =
        truth().lives[static_cast<std::size_t>(plan.truth_life_index)];
    const OpLifePlan& wake = plan.lives.back();
    if (wake.days.first > life.days.last) continue;  // appended outside life
    const util::Day previous_end =
        plan.lives.size() > 1 ? plan.lives[plan.lives.size() - 2].days.last
                              : life.days.first - 1;
    EXPECT_GT(wake.days.first - previous_end, 1000)
        << asn::to_string(plan.asn);
  }
}

TEST_F(OpWorldTest, BehaviorOfLifeCoversAllLives) {
  EXPECT_EQ(world().behavior.behavior_of_life.size(), truth().lives.size());
}

TEST_F(OpWorldTest, ChinaFilteredLivesNeverContributeActivity) {
  // A China-filtered life's days are absent from the activity table (the
  // ASN may still be active at other times under other admin lives).
  for (const AsnOpPlan& plan : world().behavior.plans) {
    if (plan.kind != BehaviorKind::kChinaFiltered) continue;
    const util::IntervalSet* days = world().activity.activity(plan.asn);
    if (days == nullptr) continue;
    for (const OpLifePlan& op : plan.lives) {
      if (op.peer_visibility >= 2) continue;  // attack injector additions
      EXPECT_EQ(days->covered_days(op.days), 0)
          << asn::to_string(plan.asn);
    }
  }
}

TEST_F(OpWorldTest, SquatEventsAreLabelled) {
  ASSERT_FALSE(world().attacks.events.empty());
  for (const SquatEvent& event : world().attacks.events) {
    // The event's op life must exist in its plan, marked malicious.
    bool found = false;
    for (const AsnOpPlan& plan : world().behavior.plans) {
      if (!(plan.asn == event.asn)) continue;
      for (const OpLifePlan& op : plan.lives)
        if (op.days == event.days && op.malicious) found = true;
    }
    EXPECT_TRUE(found) << asn::to_string(event.asn);
    EXPECT_TRUE(event.upstream == kHijackFactoryAsn ||
                event.upstream == kBitcanalAsn ||
                event.upstream == kSpammerUpstreamAsn);
  }
}

TEST_F(OpWorldTest, PostDeallocationEventsOutsideAdminLife) {
  bool any = false;
  for (const SquatEvent& event : world().attacks.events) {
    if (!event.post_deallocation) continue;
    any = true;
    const TrueAdminLife& life =
        truth().lives[static_cast<std::size_t>(event.truth_life_index)];
    EXPECT_GT(event.days.first, life.days.last);
  }
  EXPECT_TRUE(any);
}

TEST_F(OpWorldTest, MisconfigOriginsNeverAllocatedAndNonBogon) {
  ASSERT_FALSE(world().misconfigs.events.empty());
  for (const MisconfigEvent& event : world().misconfigs.events) {
    EXPECT_FALSE(truth().lives_by_asn.contains(event.bogus_origin.value))
        << asn::to_string(event.bogus_origin);
    EXPECT_FALSE(asn::is_bogon(event.bogus_origin));
    switch (event.kind) {
      case MisconfigKind::kPrependTypo:
        EXPECT_TRUE(asn::is_doubled_spelling(event.bogus_origin,
                                             event.legitimate));
        break;
      case MisconfigKind::kDigitTypo:
        EXPECT_EQ(asn::spelling_distance(event.bogus_origin,
                                         event.legitimate),
                  1);
        break;
      case MisconfigKind::kInternalLeak:
        EXPECT_GE(asn::digit_count(event.bogus_origin), 10);
        break;
      case MisconfigKind::kUnexplained:
        break;
    }
  }
}

TEST_F(OpWorldTest, ActivityClippedToArchiveWindow) {
  for (const auto& [asn_value, days] : world().activity.entries()) {
    const util::DayInterval span = days.span();
    EXPECT_GE(span.first, truth().archive_begin);
    EXPECT_LE(span.last, truth().archive_end);
  }
}

TEST_F(OpWorldTest, FlapsDoNotSplitLives) {
  // Coalescing at the paper's 30-day timeout must recover exactly the
  // planned visible op lives per ASN (aggregated across that ASN's plans).
  const util::DayInterval window{truth().archive_begin,
                                 truth().archive_end};
  std::map<std::uint32_t, std::vector<util::DayInterval>> planned;
  for (const AsnOpPlan& plan : world().behavior.plans)
    for (const OpLifePlan& op : plan.lives) {
      if (op.peer_visibility < 2) continue;
      const util::DayInterval clipped = op.days.intersect(window);
      if (!clipped.empty()) planned[plan.asn.value].push_back(clipped);
    }
  for (auto& [asn_value, lives] : planned) {
    std::sort(lives.begin(), lives.end(),
              [](const util::DayInterval& a, const util::DayInterval& b) {
                return a.first < b.first;
              });
    std::size_t expected = 0;
    util::DayInterval previous{0, -1};
    for (const util::DayInterval& life : lives) {
      if (previous.empty() || life.first - previous.last - 1 > 30)
        ++expected;
      previous = util::DayInterval{
          std::min(previous.empty() ? life.first : previous.first,
                   life.first),
          std::max(previous.last, life.last)};
    }
    const util::IntervalSet* days =
        world().activity.activity(asn::Asn{asn_value});
    ASSERT_NE(days, nullptr) << asn_value;
    EXPECT_EQ(days->coalesce(30).size(), expected) << asn_value;
  }
}

TEST_F(OpWorldTest, RouteGeneratorEmitsSaneElements) {
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const RouteGenerator generator(world(), infra, 17);
  const util::Day day = util::make_day(2016, 5, 5);
  const auto elements = generator.elements_for_day(day);
  ASSERT_FALSE(elements.empty());

  bgp::Sanitizer sanitizer;
  bgp::SanitizeStats stats;
  std::size_t with_noise = 0;
  for (const bgp::Element& element : elements) {
    EXPECT_EQ(element.day, day);
    if (!sanitizer.accept(element, stats)) ++with_noise;
  }
  // Noise exists but is a small minority.
  EXPECT_GT(with_noise, 0u);
  EXPECT_LT(static_cast<double>(with_noise),
            0.2 * static_cast<double>(elements.size()));
}

TEST_F(OpWorldTest, RouteGeneratorWatchlistRestricts) {
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const RouteGenerator generator(world(), infra, 17);
  // Find an ASN active on a day.
  const util::Day day = util::make_day(2016, 5, 5);
  std::uint32_t target = 0;
  for (const auto& [asn_value, days] : world().activity.entries())
    if (days.contains(day)) {
      target = asn_value.value;
      break;
    }
  ASSERT_NE(target, 0u);
  const std::unordered_set<std::uint32_t> watchlist = {target};
  const auto elements = generator.elements_for_day(day, &watchlist);
  ASSERT_FALSE(elements.empty());
  for (const bgp::Element& element : elements)
    EXPECT_EQ(element.path.origin(), asn::Asn{target});
}

TEST_F(OpWorldTest, OriginPrefixesDeterministicAndDistinct) {
  const auto a0 = RouteGenerator::origin_prefix(asn::Asn{12345}, 0);
  const auto a0_again = RouteGenerator::origin_prefix(asn::Asn{12345}, 0);
  const auto a1 = RouteGenerator::origin_prefix(asn::Asn{12345}, 1);
  EXPECT_EQ(a0, a0_again);
  EXPECT_NE(a0, a1);
  EXPECT_GE(a0.length(), 8);
  EXPECT_LE(a0.length(), 24);
}

TEST_F(OpWorldTest, UpdatesReconstructTheRib) {
  // Seed per-peer tables from day D's RIB, roll the update streams forward
  // a week, and verify the reconstructed table equals day D+7's snapshot —
  // the consistency a real collector archive guarantees between its RIB
  // dumps and update dumps.
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const NoiseConfig no_noise{0, 0, 0, 0};
  const RouteGenerator generator(world(), infra, 99, no_noise);

  const util::Day start = util::make_day(2015, 4, 1);
  bgp::RibReconstructor reconstructor;
  for (const bgp::Element& element : generator.elements_for_day(start))
    reconstructor.apply(element);
  for (util::Day day = start + 1; day <= start + 7; ++day)
    for (const bgp::Element& element : generator.updates_for_day(day))
      reconstructor.apply(element);

  // Expected final state.
  bgp::RibReconstructor expected;
  for (const bgp::Element& element :
       generator.elements_for_day(start + 7))
    expected.apply(element);

  ASSERT_EQ(reconstructor.total_routes(), expected.total_routes());
  for (const auto& [peer_value, rib] : expected.peers()) {
    const auto it = reconstructor.peers().find(peer_value);
    ASSERT_NE(it, reconstructor.peers().end());
    for (const bgp::Element& route : rib.snapshot(0)) {
      const bgp::AsPath* reconstructed = it->second.route(route.prefix);
      ASSERT_NE(reconstructed, nullptr)
          << route.prefix.to_string() << " via peer " << peer_value;
      EXPECT_EQ(*reconstructed, route.path);
    }
  }
}

TEST_F(OpWorldTest, ElementPathAgreesWithFastPathActivity) {
  // The per-day element stream, pushed through the sanitizer and the
  // >1-peer visibility aggregator, must reproduce the fast-path activity
  // table over a window (for planned ASNs — noise can add strays).
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const RouteGenerator generator(world(), infra, 5);
  const bgp::Sanitizer sanitizer;
  bgp::SanitizeStats stats;
  bgp::VisibilityAggregator aggregator;

  const util::Day window_start = util::make_day(2012, 7, 1);
  const int window_days = 10;
  for (int d = 0; d < window_days; ++d)
    for (const bgp::Element& element :
         generator.elements_for_day(window_start + d))
      if (sanitizer.accept(element, stats)) aggregator.observe(element);
  const bgp::ActivityTable from_elements = aggregator.build();

  // Element-level activity is a superset: the aggregator also sees ASNs as
  // transit hops in other origins' paths (which the paper counts), while
  // the fast path tracks planned origin activity only.
  const util::DayInterval window{window_start,
                                 window_start + window_days - 1};
  for (const AsnOpPlan& plan : world().behavior.plans) {
    const util::IntervalSet* fast =
        world().activity.activity(plan.asn);
    if (fast == nullptr) continue;
    const util::IntervalSet fast_in_window =
        fast->intersect(util::IntervalSet{{window}});
    if (fast_in_window.empty()) continue;
    const util::IntervalSet* observed =
        from_elements.activity(plan.asn);
    ASSERT_NE(observed, nullptr) << asn::to_string(plan.asn);
    // Every fast-path-active day is observed at >=2 peers in the elements.
    EXPECT_EQ(fast_in_window.intersect(*observed).total_days(),
              fast_in_window.total_days())
        << asn::to_string(plan.asn);
  }
}

}  // namespace
}  // namespace pl::bgpsim
