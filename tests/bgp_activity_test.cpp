#include <gtest/gtest.h>

#include "bgp/activity.hpp"
#include "bgp/collector.hpp"

namespace pl::bgp {
namespace {

Element make_element(util::Day day, std::uint32_t peer,
                     std::initializer_list<std::uint32_t> path,
                     const char* prefix = "10.0.0.0/16") {
  Element e;
  e.day = day;
  e.type = ElementType::kRibEntry;
  e.peer = asn::Asn{peer};
  e.prefix = *Prefix::parse(prefix);
  e.path = AsPath(path);
  return e;
}

TEST(VisibilityAggregator, RequiresTwoDistinctPeers) {
  VisibilityAggregator aggregator;
  // Same peer twice: not active (spurious single-peer data, paper 3.2).
  aggregator.observe(make_element(10, 900, {900, 65001}));
  aggregator.observe(make_element(10, 900, {900, 65001}));
  ActivityTable table = aggregator.build();
  EXPECT_EQ(table.activity(asn::Asn{65001}), nullptr);
  EXPECT_EQ(aggregator.single_peer_pairs(), 2);  // peer ASN + origin ASN

  // Second distinct peer on the same day: active.
  aggregator.observe(make_element(10, 901, {901, 65001}));
  table = aggregator.build();
  const auto* activity = table.activity(asn::Asn{65001});
  ASSERT_NE(activity, nullptr);
  EXPECT_TRUE(activity->contains(10));
  EXPECT_FALSE(activity->contains(11));
}

TEST(VisibilityAggregator, EveryPathHopCounts) {
  VisibilityAggregator aggregator;
  aggregator.observe(make_element(5, 900, {900, 3356, 65001}));
  aggregator.observe(make_element(5, 901, {901, 3356, 65001}));
  const ActivityTable table = aggregator.build();
  // Transit AS 3356 is observed too, not only the origin.
  EXPECT_NE(table.activity(asn::Asn{3356}), nullptr);
  EXPECT_NE(table.activity(asn::Asn{65001}), nullptr);
  // Each peer ASN is seen by only one peer (itself) -> not active.
  EXPECT_EQ(table.activity(asn::Asn{900}), nullptr);
}

TEST(VisibilityAggregator, DaysAreIndependent) {
  VisibilityAggregator aggregator;
  aggregator.observe(make_element(1, 900, {900, 65001}));
  aggregator.observe(make_element(2, 901, {901, 65001}));
  const ActivityTable table = aggregator.build();
  // One peer per day each: never two distinct peers on the same day.
  EXPECT_EQ(table.activity(asn::Asn{65001}), nullptr);
}

TEST(ActivityTable, DailyCounts) {
  ActivityTable table;
  table.mark_active(asn::Asn{1}, util::DayInterval{0, 4});
  table.mark_active(asn::Asn{2}, util::DayInterval{2, 6});
  table.mark_active(asn::Asn{3}, 3);
  const auto counts = table.daily_counts(0, 7);
  ASSERT_EQ(counts.size(), 8u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 3);
  EXPECT_EQ(counts[5], 1);
  EXPECT_EQ(counts[7], 0);
  EXPECT_EQ(table.active_on(3), 3);
  EXPECT_EQ(table.asn_count(), 3u);
}

TEST(ActivityTable, Merge) {
  ActivityTable a;
  a.mark_active(asn::Asn{1}, util::DayInterval{0, 2});
  ActivityTable b;
  b.mark_active(asn::Asn{1}, util::DayInterval{5, 6});
  b.mark_active(asn::Asn{2}, util::DayInterval{1, 1});
  a.merge(b);
  EXPECT_EQ(a.asn_count(), 2u);
  EXPECT_EQ(a.activity(asn::Asn{1})->total_days(), 5);
}

TEST(OriginationTracker, CountsDistinctPrefixes) {
  OriginationTracker tracker;
  tracker.observe(make_element(7, 900, {900, 65001}, "10.0.0.0/16"));
  tracker.observe(make_element(7, 901, {901, 65001}, "10.0.0.0/16"));
  tracker.observe(make_element(7, 900, {900, 65001}, "11.0.0.0/16"));
  tracker.observe(make_element(8, 900, {900, 65001}, "12.0.0.0/16"));
  EXPECT_EQ(tracker.prefixes_on(asn::Asn{65001}, 7), 2);
  EXPECT_EQ(tracker.prefixes_on(asn::Asn{65001}, 8), 1);
  EXPECT_EQ(tracker.prefixes_on(asn::Asn{65001}, 9), 0);
  const auto series = tracker.series(asn::Asn{65001}, 6, 9);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[1], 2);
  EXPECT_EQ(series[2], 1);
}

TEST(OriginationTracker, Watchlist) {
  OriginationTracker tracker;
  tracker.set_watchlist({asn::Asn{1}});
  tracker.observe(make_element(1, 900, {900, 2}));
  tracker.observe(make_element(1, 900, {900, 1}));
  EXPECT_EQ(tracker.prefixes_on(asn::Asn{2}, 1), 0);  // untracked
  EXPECT_EQ(tracker.prefixes_on(asn::Asn{1}, 1), 1);
}

TEST(Collector, DefaultInfrastructure) {
  const CollectorInfrastructure infra = make_default_infrastructure(4, 8);
  EXPECT_EQ(infra.collectors.size(), 4u);
  EXPECT_EQ(infra.total_peers(), 32u);
  // Peer ASNs are distinct across the infrastructure.
  std::set<std::uint32_t> seen;
  for (const Collector& c : infra.collectors)
    for (const asn::Asn peer : c.peers) EXPECT_TRUE(seen.insert(peer.value).second);
}

}  // namespace
}  // namespace pl::bgp
