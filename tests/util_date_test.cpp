#include "util/date.hpp"

#include <gtest/gtest.h>

namespace pl::util {
namespace {

TEST(Date, EpochIsDayZero) {
  EXPECT_EQ(to_day(CivilDate{1970, 1, 1}), 0);
  EXPECT_EQ(to_civil(0), (CivilDate{1970, 1, 1}));
}

TEST(Date, KnownDates) {
  EXPECT_EQ(make_day(1970, 1, 2), 1);
  EXPECT_EQ(make_day(1969, 12, 31), -1);
  EXPECT_EQ(make_day(2000, 3, 1), 11017);
  // The paper's archive window.
  EXPECT_EQ(format_iso(make_day(2003, 10, 9)), "2003-10-09");
  EXPECT_EQ(format_iso(make_day(2021, 3, 1)), "2021-03-01");
  EXPECT_EQ(make_day(2021, 3, 1) - make_day(2003, 10, 9), 6353);
}

TEST(Date, LeapYears) {
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_TRUE(is_leap_year(2020));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2021));
  EXPECT_TRUE(is_valid(CivilDate{2020, 2, 29}));
  EXPECT_FALSE(is_valid(CivilDate{2021, 2, 29}));
  EXPECT_FALSE(is_valid(CivilDate{2021, 4, 31}));
  EXPECT_FALSE(is_valid(CivilDate{2021, 13, 1}));
  EXPECT_FALSE(is_valid(CivilDate{2021, 0, 1}));
  EXPECT_FALSE(is_valid(CivilDate{2021, 1, 0}));
}

TEST(Date, ParseIso) {
  EXPECT_EQ(parse_iso_date("1993-09-01"), make_day(1993, 9, 1));
  EXPECT_EQ(parse_iso_date("2021-03-01"), make_day(2021, 3, 1));
  EXPECT_FALSE(parse_iso_date("2021-3-01").has_value());
  EXPECT_FALSE(parse_iso_date("2021-02-30").has_value());
  EXPECT_FALSE(parse_iso_date("garbage!").has_value());
  EXPECT_FALSE(parse_iso_date("").has_value());
  EXPECT_FALSE(parse_iso_date("2021/03/01").has_value());
}

TEST(Date, ParseCompact) {
  EXPECT_EQ(parse_compact_date("20170920"), make_day(2017, 9, 20));
  EXPECT_FALSE(parse_compact_date("00000000").has_value());  // placeholder
  EXPECT_FALSE(parse_compact_date("2017092").has_value());
  EXPECT_FALSE(parse_compact_date("20170931").has_value());
  EXPECT_FALSE(parse_compact_date("2017-9-2").has_value());
}

TEST(Date, FormatCompact) {
  EXPECT_EQ(format_compact(make_day(2003, 10, 9)), "20031009");
  EXPECT_EQ(format_compact(make_day(1993, 9, 1)), "19930901");
}

TEST(Date, QuarterIndex) {
  EXPECT_EQ(quarter_index(make_day(2020, 1, 1)),
            quarter_index(make_day(2020, 3, 31)));
  EXPECT_NE(quarter_index(make_day(2020, 3, 31)),
            quarter_index(make_day(2020, 4, 1)));
  EXPECT_EQ(quarter_index(make_day(2020, 12, 31)) + 1,
            quarter_index(make_day(2021, 1, 1)));
}

TEST(Date, YearHelpers) {
  EXPECT_EQ(year_of(make_day(1999, 12, 31)), 1999);
  EXPECT_EQ(year_of(make_day(2000, 1, 1)), 2000);
  EXPECT_EQ(start_of_year(make_day(2014, 7, 20)), make_day(2014, 1, 1));
}

// Property: to_civil(to_day(d)) == d for every day across the study range
// plus the pre-epoch legacy era.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, BijectiveOverYear) {
  const int year = GetParam();
  Day day = make_day(year, 1, 1);
  const Day end = make_day(year + 1, 1, 1);
  CivilDate previous = to_civil(day - 1);
  for (; day < end; ++day) {
    const CivilDate civil = to_civil(day);
    EXPECT_TRUE(is_valid(civil));
    EXPECT_EQ(to_day(civil), day);
    // Strictly increasing calendar.
    EXPECT_TRUE(civil.year > previous.year ||
                (civil.year == previous.year &&
                 (civil.month > previous.month ||
                  (civil.month == previous.month &&
                   civil.day == previous.day + 1))));
    previous = civil;
  }
}

INSTANTIATE_TEST_SUITE_P(StudyEra, DateRoundTrip,
                         ::testing::Values(1969, 1970, 1984, 1993, 2000,
                                           2003, 2007, 2012, 2016, 2020,
                                           2021, 2100));

// Property: parse(format(d)) == d.
class DateFormatRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateFormatRoundTrip, IsoAndCompact) {
  const Day base = make_day(GetParam(), 1, 1);
  for (Day day = base; day < base + 366; day += 7) {
    EXPECT_EQ(parse_iso_date(format_iso(day)), day);
    EXPECT_EQ(parse_compact_date(format_compact(day)), day);
  }
}

INSTANTIATE_TEST_SUITE_P(StudyEra, DateFormatRoundTrip,
                         ::testing::Values(1984, 1999, 2004, 2013, 2021));

}  // namespace
}  // namespace pl::util
