#include <gtest/gtest.h>

#include "joint/birdseye.hpp"
#include "joint/exhaustion.hpp"
#include "joint/outside.hpp"
#include "joint/partial.hpp"
#include "joint/squat.hpp"
#include "joint/unused.hpp"
#include "joint/utilization.hpp"

namespace pl::joint {
namespace {

using lifetimes::AdminDataset;
using lifetimes::AdminLifetime;
using lifetimes::OpDataset;
using lifetimes::OpLifetime;
using util::DayInterval;
using util::make_day;

AdminLifetime admin_life(std::uint32_t asn_value, util::Day start,
                         util::Day end,
                         asn::Rir rir = asn::Rir::kRipeNcc,
                         const char* country = "DE",
                         std::uint64_t opaque = 0) {
  AdminLifetime life;
  life.asn = asn::Asn{asn_value};
  life.registration_date = start;
  life.days = DayInterval{start, end};
  life.registry = rir;
  life.country = *asn::CountryCode::parse(country);
  life.opaque_id = opaque;
  return life;
}

OpLifetime op_life(std::uint32_t asn_value, util::Day start, util::Day end) {
  return OpLifetime{asn::Asn{asn_value}, DayInterval{start, end}};
}

struct Fixture {
  AdminDataset admin;
  OpDataset op;

  void add_admin(AdminLifetime life) { admin.lifetimes.push_back(life); }
  void add_op(OpLifetime life) { op.lifetimes.push_back(life); }

  void finish() {
    admin.index();
    admin.archive_end = make_day(2021, 3, 1);
    // Build the op index the same way build_op_lifetimes does.
    std::sort(op.lifetimes.begin(), op.lifetimes.end(),
              [](const OpLifetime& a, const OpLifetime& b) {
                if (a.asn != b.asn) return a.asn < b.asn;
                return a.days.first < b.days.first;
              });
    op.by_asn.clear();
    for (std::size_t i = 0; i < op.lifetimes.size(); ++i)
      op.by_asn[op.lifetimes[i].asn.value].push_back(i);
  }
};

TEST(Taxonomy, FourCategories) {
  Fixture f;
  // Complete overlap.
  f.add_admin(admin_life(1, 100, 1000));
  f.add_op(op_life(1, 200, 900));
  // Partial overlap (dangling tail).
  f.add_admin(admin_life(2, 100, 1000));
  f.add_op(op_life(2, 200, 1500));
  // Unused.
  f.add_admin(admin_life(3, 100, 1000));
  // Outside delegation: previously allocated.
  f.add_admin(admin_life(4, 100, 400));
  f.add_op(op_life(4, 600, 700));
  // Outside delegation: never allocated.
  f.add_op(op_life(5, 600, 700));
  f.finish();

  const Taxonomy taxonomy = classify(f.admin, f.op);
  EXPECT_EQ(taxonomy.admin_counts[0], 1);  // complete
  EXPECT_EQ(taxonomy.admin_counts[1], 1);  // partial
  EXPECT_EQ(taxonomy.admin_counts[2], 2);  // unused (ASN 3 and ASN 4)
  EXPECT_EQ(taxonomy.op_counts[0], 1);
  EXPECT_EQ(taxonomy.op_counts[1], 1);
  EXPECT_EQ(taxonomy.op_counts[3], 2);

  // Partition identities (Table 3 row sums).
  EXPECT_EQ(taxonomy.total_admin(),
            static_cast<std::int64_t>(f.admin.lifetimes.size()));
  EXPECT_EQ(taxonomy.total_op(),
            static_cast<std::int64_t>(f.op.lifetimes.size()));

  const OutsideSplit split = split_outside(taxonomy, f.admin, f.op);
  ASSERT_EQ(split.ever_allocated.size(), 1u);
  EXPECT_EQ(split.ever_allocated[0], asn::Asn{4});
  ASSERT_EQ(split.never_allocated.size(), 1u);
  EXPECT_EQ(split.never_allocated[0], asn::Asn{5});
}

TEST(Taxonomy, BogonsExcludedFromOutsideSplit) {
  Fixture f;
  f.add_op(op_life(64512, 100, 200));  // private-use ASN
  f.add_op(op_life(99, 100, 200));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const OutsideSplit split = split_outside(taxonomy, f.admin, f.op);
  ASSERT_EQ(split.never_allocated.size(), 1u);
  EXPECT_EQ(split.never_allocated[0], asn::Asn{99});
}

TEST(Taxonomy, OpLifeSpanningTwoAdminLives) {
  Fixture f;
  f.add_admin(admin_life(1, 0, 500));
  f.add_admin(admin_life(1, 700, 2000));
  f.add_op(op_life(1, 400, 900));  // crosses both
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  EXPECT_EQ(taxonomy.op_category[0], Category::kPartialOverlap);
  // Assigned to the admin life with the larger overlap (700..900 = 201d).
  EXPECT_EQ(taxonomy.op_to_admin[0], 1);
  EXPECT_EQ(taxonomy.admin_category[0], Category::kPartialOverlap);
  EXPECT_EQ(taxonomy.admin_category[1], Category::kPartialOverlap);
}

TEST(Utilization, RatioAndLags) {
  Fixture f;
  // 1001-day life, one op life of 800 days, closed life.
  f.add_admin(admin_life(1, 0, 1000, asn::Rir::kApnic));
  f.add_op(op_life(1, 100, 899));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const UtilizationAnalysis analysis =
      analyze_utilization(taxonomy, f.admin, f.op);
  ASSERT_EQ(analysis.ratios.size(), 1u);
  EXPECT_NEAR(analysis.ratios[0], 800.0 / 1001.0, 1e-9);
  const auto apnic = asn::index_of(asn::Rir::kApnic);
  ASSERT_EQ(analysis.activation_delay_days[apnic].size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.activation_delay_days[apnic][0], 100);
  ASSERT_EQ(analysis.dealloc_lag_days[apnic].size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.dealloc_lag_days[apnic][0], 101);
}

TEST(Utilization, OpenEndedLivesExcludedFromLag) {
  Fixture f;
  auto life = admin_life(1, 0, 1000);
  life.open_ended = true;
  f.add_admin(life);
  f.add_op(op_life(1, 100, 900));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const UtilizationAnalysis analysis =
      analyze_utilization(taxonomy, f.admin, f.op);
  EXPECT_TRUE(analysis.dealloc_lag_days[asn::index_of(asn::Rir::kRipeNcc)]
                  .empty());
}

TEST(Utilization, HyperactiveAndSpaced) {
  Fixture f;
  f.add_admin(admin_life(1, 0, 10000));
  for (int i = 0; i < 12; ++i)
    f.add_op(op_life(1, i * 300, i * 300 + 100));  // gaps of 199 days
  // Largely spaced: two op lives > 365 days apart.
  f.add_admin(admin_life(2, 0, 10000));
  f.add_op(op_life(2, 0, 100));
  f.add_op(op_life(2, 1000, 1100));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const UtilizationAnalysis analysis =
      analyze_utilization(taxonomy, f.admin, f.op);
  ASSERT_EQ(analysis.hyperactive_asns.size(), 1u);
  EXPECT_EQ(analysis.hyperactive_asns[0], asn::Asn{1});
  EXPECT_EQ(analysis.multi_op_lives, 2);
  EXPECT_EQ(analysis.largely_spaced_lives, 1);
}

TEST(Squat, DetectsDormantAwakening) {
  Fixture f;
  // AS10512-style: allocated for ~17 years, tiny awakening after years of
  // dormancy.
  f.add_admin(admin_life(10512, 0, 6300));
  f.add_op(op_life(10512, 5200, 5230));
  // Canonical ASN for contrast.
  f.add_admin(admin_life(2, 0, 6300));
  f.add_op(op_life(2, 40, 6000));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const auto candidates = detect_dormant_squats(taxonomy, f.admin, f.op);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].asn, asn::Asn{10512});
  EXPECT_EQ(candidates[0].dormancy, 5200);
  EXPECT_NEAR(candidates[0].relative_duration, 31.0 / 6301.0, 1e-9);
}

TEST(Squat, ThresholdsFilter) {
  Fixture f;
  // Dormancy below 1000 days: not flagged.
  f.add_admin(admin_life(1, 0, 6300));
  f.add_op(op_life(1, 900, 930));
  // Relative duration too large: not flagged.
  f.add_admin(admin_life(2, 0, 2000));
  f.add_op(op_life(2, 1500, 1900));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  EXPECT_TRUE(detect_dormant_squats(taxonomy, f.admin, f.op).empty());

  // Custom thresholds pick them up.
  SquatDetectorConfig config;
  config.dormancy_days = 800;
  config.max_relative_duration = 0.5;
  EXPECT_EQ(detect_dormant_squats(taxonomy, f.admin, f.op, config).size(),
            2u);
}

TEST(Squat, OutsideDelegationDetector) {
  Fixture f;
  // AS12391-style: op life 3 days after deallocation, long after previous
  // activity.
  f.add_admin(admin_life(12391, 0, 4000));
  f.add_op(op_life(12391, 50, 100));
  f.add_op(op_life(12391, 4003, 4010));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const auto candidates =
      detect_outside_delegation_activity(taxonomy, f.admin, f.op);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].asn, asn::Asn{12391});
  EXPECT_EQ(candidates[0].dormancy, 4003 - 100 - 1);
}

TEST(Partial, DanglingAndEarly) {
  Fixture f;
  // Dangling: op continues 200 days past deallocation.
  f.add_admin(admin_life(1, 0, 1000));
  f.add_op(op_life(1, 100, 1200));
  // Early: op starts 5 days before allocation (and before regdate).
  f.add_admin(admin_life(2, 500, 1500));
  f.add_op(op_life(2, 495, 1400));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const PartialOverlapAnalysis analysis =
      analyze_partial_overlap(taxonomy, f.admin, f.op);
  EXPECT_EQ(analysis.partial_admin_lives, 2);
  EXPECT_EQ(analysis.dangling_lives, 1);
  ASSERT_EQ(analysis.dangling_days.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.dangling_days[0], 200);
  EXPECT_EQ(analysis.early_starts, 1);
  EXPECT_EQ(analysis.early_before_regdate, 1);
}

TEST(Unused, CountryAndSiblings) {
  Fixture f;
  // Chinese org with two ASNs: one used, one unused (sibling case).
  f.add_admin(admin_life(1, 0, 1000, asn::Rir::kApnic, "CN", 77));
  f.add_admin(admin_life(2, 0, 1000, asn::Rir::kApnic, "CN", 77));
  f.add_op(op_life(1, 100, 900));
  // Unused short 32-bit life (failed deployment).
  f.add_admin(admin_life(200000, 0, 20, asn::Rir::kApnic, "AU", 88));
  // Unused long 16-bit life.
  f.add_admin(admin_life(3, 0, 6000, asn::Rir::kRipeNcc, "RU", 99));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const UnusedAnalysis analysis = analyze_unused(taxonomy, f.admin, f.op);
  EXPECT_EQ(analysis.unused_lives, 3);
  EXPECT_EQ(analysis.unused_asns, 3);
  EXPECT_EQ(analysis.never_seen_asns, 3);
  EXPECT_EQ(analysis.unused_with_active_sibling, 1);
  const auto apnic = asn::index_of(asn::Rir::kApnic);
  EXPECT_EQ(analysis.short_unused_count[apnic], 1);
  EXPECT_DOUBLE_EQ(analysis.short_unused_32bit_share[apnic], 1.0);
  // CN tops the country table with 1 of 2 lives unused.
  ASSERT_FALSE(analysis.by_country.empty());
  bool found_cn = false;
  for (const CountryUnusedRow& row : analysis.by_country)
    if (row.country.to_string() == "CN") {
      found_cn = true;
      EXPECT_EQ(row.unused_lives, 1);
      EXPECT_EQ(row.total_lives, 2);
      EXPECT_DOUBLE_EQ(row.unused_fraction(), 0.5);
    }
  EXPECT_TRUE(found_cn);
}

TEST(Outside, ClassifiesNeverAllocated) {
  Fixture f;
  f.add_admin(admin_life(32026, 0, 6000));
  f.add_op(op_life(32026, 10, 5000));
  // Prepending typo of 32026.
  f.add_op(op_life(3202632026U, 100, 105));
  // One-digit typo (insertion): 41933 -> 419333.
  f.add_admin(admin_life(41933, 0, 6000));
  f.add_op(op_life(41933, 10, 5000));
  f.add_op(op_life(419333, 200, 500));
  // Internal leak: 10-digit ASN.
  f.add_op(op_life(2900121471U, 300, 1000));
  f.finish();
  const Taxonomy taxonomy = classify(f.admin, f.op);
  const OutsideAnalysis analysis =
      analyze_never_allocated(taxonomy, f.admin, f.op);
  ASSERT_EQ(analysis.never_allocated.size(), 3u);
  std::map<std::uint32_t, NeverAllocatedKind> kinds;
  std::map<std::uint32_t, std::optional<asn::Asn>> imitated;
  for (const NeverAllocatedFinding& finding : analysis.never_allocated) {
    kinds[finding.asn.value] = finding.kind;
    imitated[finding.asn.value] = finding.imitated;
  }
  EXPECT_EQ(kinds[3202632026U], NeverAllocatedKind::kPrependTypo);
  EXPECT_EQ(imitated[3202632026U], asn::Asn{32026});
  EXPECT_EQ(kinds[419333], NeverAllocatedKind::kDigitTypo);
  EXPECT_EQ(imitated[419333], asn::Asn{41933});
  EXPECT_EQ(kinds[2900121471U], NeverAllocatedKind::kInternalLeak);
  EXPECT_EQ(analysis.large_asn_count, 1);
  EXPECT_EQ(analysis.active_over_1day, 3);
  EXPECT_EQ(analysis.active_over_1month, 2);
  EXPECT_EQ(analysis.active_over_1year, 1);  // the 701-day leak
}

TEST(Birdseye, CensusAndCrossover) {
  Fixture f;
  // RIPE grows past ARIN at day 100.
  f.add_admin(admin_life(1, 0, 1000, asn::Rir::kArin));
  f.add_admin(admin_life(2, 50, 1000, asn::Rir::kRipeNcc));
  f.add_admin(admin_life(3, 100, 1000, asn::Rir::kRipeNcc));
  f.add_op(op_life(2, 60, 900));
  f.finish();
  const DailyCensus census = compute_census(f.admin, f.op, 0, 1000);
  const auto arin = asn::index_of(asn::Rir::kArin);
  const auto ripe = asn::index_of(asn::Rir::kRipeNcc);
  EXPECT_EQ(census.admin_per_rir[arin][0], 1);
  EXPECT_EQ(census.admin_per_rir[ripe][0], 0);
  EXPECT_EQ(census.admin_per_rir[ripe][100], 2);
  EXPECT_EQ(census.admin_overall[100], 3);
  EXPECT_EQ(census.op_overall[60], 1);
  EXPECT_EQ(census.op_per_rir[ripe][60], 1);
  EXPECT_EQ(crossover_day(census.admin_per_rir[ripe],
                          census.admin_per_rir[arin], 0),
            100);
  EXPECT_EQ(crossover_day(census.admin_per_rir[arin],
                          census.admin_per_rir[ripe], 0),
            -1);
}

TEST(Birdseye, WidthCensus) {
  Fixture f;
  f.add_admin(admin_life(100, 0, 500, asn::Rir::kApnic));      // 16-bit
  f.add_admin(admin_life(200000, 100, 500, asn::Rir::kApnic)); // 32-bit
  f.finish();
  const WidthCensus census = compute_width_census(f.admin, 0, 500);
  const auto apnic = asn::index_of(asn::Rir::kApnic);
  EXPECT_EQ(census.bits16[apnic][0], 1);
  EXPECT_EQ(census.bits32[apnic][0], 0);
  EXPECT_EQ(census.bits32[apnic][100], 1);
}

TEST(Birdseye, QuarterlyBirthsAndBalance) {
  Fixture f;
  const util::Day q1 = make_day(2010, 2, 1);
  const util::Day q2 = make_day(2010, 5, 1);
  f.add_admin(admin_life(1, q1, q2 + 10, asn::Rir::kLacnic));
  f.add_admin(admin_life(2, q1 + 3, make_day(2021, 3, 1), asn::Rir::kLacnic));
  f.finish();
  const QuarterlySeries series =
      compute_quarterly(f.admin, make_day(2010, 1, 1), make_day(2011, 1, 1));
  const auto lacnic = asn::index_of(asn::Rir::kLacnic);
  EXPECT_EQ(series.births[lacnic][0], 2);
  EXPECT_EQ(series.balance[lacnic][0], 2);
  EXPECT_EQ(series.balance[lacnic][1], -1);  // death in Q2
}

TEST(Birdseye, LivesPerAsnTable) {
  Fixture f;
  f.add_admin(admin_life(1, 0, 100, asn::Rir::kArin));
  f.add_admin(admin_life(1, 300, 400, asn::Rir::kArin));
  f.add_admin(admin_life(2, 0, 400, asn::Rir::kArin));
  f.add_op(op_life(2, 10, 50));
  f.add_op(op_life(2, 100, 150));
  f.add_op(op_life(2, 200, 250));
  f.finish();
  const LivesPerAsnTable table = compute_lives_per_asn(f.admin, f.op);
  const auto arin = asn::index_of(asn::Rir::kArin);
  EXPECT_EQ(table.admin[arin].asns, 2);
  EXPECT_DOUBLE_EQ(table.admin[arin].one, 0.5);
  EXPECT_DOUBLE_EQ(table.admin[arin].two, 0.5);
  EXPECT_DOUBLE_EQ(table.op[arin].more, 1.0);  // ASN 2: three op lives
  EXPECT_EQ(table.op[arin].asns, 1);
  EXPECT_DOUBLE_EQ(table.admin_total.one, 0.5);
}

TEST(Birdseye, CountrySharesAndBirthYears) {
  Fixture f;
  f.add_admin(admin_life(1, 0, 5000, asn::Rir::kApnic, "IN"));
  f.add_admin(admin_life(2, 0, 5000, asn::Rir::kApnic, "IN"));
  f.add_admin(admin_life(3, 0, 5000, asn::Rir::kApnic, "AU"));
  f.add_admin(admin_life(4, 0, 5000, asn::Rir::kRipeNcc, "RU"));
  f.finish();
  const auto shares = country_shares_on(f.admin, asn::Rir::kApnic, 100, 5);
  ASSERT_GE(shares.size(), 2u);
  EXPECT_EQ(shares[0].country.to_string(), "IN");
  EXPECT_EQ(shares[0].count, 2);
  EXPECT_NEAR(shares[0].share, 2.0 / 3.0, 1e-9);

  const auto durations = durations_per_rir(f.admin);
  EXPECT_EQ(durations[asn::index_of(asn::Rir::kApnic)].size(), 3u);

  const BirthYearStats stats = compute_birth_year_stats(f.admin, 1970, 1971);
  EXPECT_EQ(stats.births[asn::index_of(asn::Rir::kApnic)][0], 3);
  EXPECT_EQ(
      stats.durations[asn::index_of(asn::Rir::kApnic)][0].size(), 3u);
}

TEST(Exhaustion, FindsPeaks) {
  Fixture f;
  // Two 16-bit lives: one dies mid-window, so the 16-bit count peaks while
  // both are alive; a 32-bit life is ignored by the 16-bit analysis.
  f.add_admin(admin_life(100, 0, 500, asn::Rir::kApnic));
  f.add_admin(admin_life(200, 0, 200, asn::Rir::kApnic));
  f.add_admin(admin_life(200000, 0, 500, asn::Rir::kApnic));
  f.finish();
  const DailyCensus unused_census = compute_census(f.admin, f.op, 0, 500);
  (void)unused_census;
  const WidthCensus census = compute_width_census(f.admin, 0, 500);
  const ExhaustionAnalysis analysis = analyze_16bit_exhaustion(census);
  const auto apnic = asn::index_of(asn::Rir::kApnic);
  EXPECT_EQ(analysis.peak_count[apnic], 2);
  EXPECT_EQ(analysis.peak_day[apnic], 0);
  EXPECT_EQ(analysis.global_peak_count, 2);
  // Universe: 65535 numbers minus AS0-is-not-in-range, minus 64496..65535
  // (1040 reserved), minus AS_TRANS 23456.
  EXPECT_EQ(analysis.allocatable_universe, 64494);
  EXPECT_EQ(analysis.available_at_peak, 64492);
}

}  // namespace
}  // namespace pl::joint
