#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pl::util {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(124);
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 10; ++i)
    if (a2() != c()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.uniform(3, 7);
    EXPECT_GE(value, 3);
    EXPECT_LE(value, 7);
    if (value == 3) saw_lo = true;
    if (value == 7) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  // Degenerate range.
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform01();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, GeometricDaysCapAndMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t days = rng.geometric_days(0.1, 1000);
    EXPECT_GE(days, 0);
    EXPECT_LE(days, 1000);
    sum += static_cast<double>(days);
  }
  // Mean of geometric with p=0.1 is ~9 (failures before success).
  EXPECT_NEAR(sum / 5000, 9.0, 1.5);
  EXPECT_EQ(rng.geometric_days(1.0), 0);
  EXPECT_EQ(rng.geometric_days(0.0, 55), 55);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> sample;
  for (int i = 0; i < 10001; ++i)
    sample.push_back(rng.lognormal(std::log(320.0), 0.7));
  std::sort(sample.begin(), sample.end());
  // Median of exp(N(mu, s)) is exp(mu).
  EXPECT_NEAR(sample[5000], 320.0, 25.0);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(21);
  const double weights[] = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i)
    ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 8000, 0.75, 0.03);
  // All-zero weights fall back to index 0.
  const double zeros[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(zeros), 0u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Children differ from each other and from the parent's continuation.
  int child_collisions = 0;
  for (int i = 0; i < 50; ++i)
    if (child1() == child2()) ++child_collisions;
  EXPECT_EQ(child_collisions, 0);

  // Fork sequence is itself deterministic.
  Rng parent_again(23);
  Rng child1_again = parent_again.fork();
  Rng child1_ref(0);
  child1_ref = Rng(23);
  Rng expected = child1_ref.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1_again(), expected());
}

TEST(Rng, SplitMixIsStable) {
  // Regression pin: splitmix64 output must never change (worlds are seeded
  // through it and all calibrated numbers depend on it).
  std::uint64_t state = 42;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 42;
  EXPECT_EQ(first, splitmix64(state2));
  EXPECT_NE(first, splitmix64(state));  // state advanced
}

}  // namespace
}  // namespace pl::util
