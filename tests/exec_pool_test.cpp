// Tests for the exec concurrency subsystem: task futures, parallel_for
// coverage, deterministic exception propagation, nested sections, and the
// PL_THREADS=0 serial fallback.
#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pl::exec {
namespace {

TEST(ThreadPool, SubmitReturnsTaskResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRethrowsLowestChunkException) {
  ThreadPool pool(4);
  // Every chunk throws its begin index; deterministic propagation promises
  // the lowest-indexed chunk's exception — always the one starting at 0.
  try {
    pool.parallel_for(5000, [](std::size_t begin, std::size_t) {
      throw std::runtime_error(std::to_string(begin));
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "0");
  }
  // The pool remains usable after a throwing section.
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t begin, std::size_t end) {
    for (std::size_t o = begin; o < end; ++o)
      pool.parallel_for(kInner, [&, o](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i)
          cells[o * kInner + i].fetch_add(1);
      });
  });
  for (const auto& cell : cells) EXPECT_EQ(cell.load(), 1);
}

TEST(ThreadPool, SerialPoolRunsEverythingInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id task_thread;
  pool.submit([&] { task_thread = std::this_thread::get_id(); }).get();
  EXPECT_EQ(task_thread, self);
  std::thread::id loop_thread;
  pool.parallel_for(100, [&](std::size_t, std::size_t) {
    loop_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(loop_thread, self);
}

TEST(ThreadPool, ParallelForIsDeterministicAcrossThreadCounts) {
  const auto compute = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(5000);
    pool.parallel_for(
        out.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            out[i] = i * 0x9e3779b97f4a7c15ULL;
        },
        /*grain=*/7);
    return out;
  };
  const auto serial = compute(0);
  EXPECT_EQ(serial, compute(1));
  EXPECT_EQ(serial, compute(3));
  EXPECT_EQ(serial, compute(8));
}

TEST(GlobalPool, DirectKnobRebuildsTheSharedPool) {
  // Exercise the public knobs themselves, not just the ScopedThreads RAII
  // wrapper: set_global_threads swaps the worker set and global_pool() hands
  // back the rebuilt pool.
  const int before = current_threads();
  set_global_threads(2);
  EXPECT_EQ(global_pool().size(), 2);
  std::atomic<std::size_t> items{0};
  global_pool().parallel_for(64, [&](std::size_t begin, std::size_t end) {
    items += end - begin;
  });
  EXPECT_EQ(items.load(), 64u);
  set_global_threads(before);
  EXPECT_EQ(current_threads(), before);
}

TEST(GlobalPool, ScopedThreadsOverridesAndRestores) {
  const int before = current_threads();
  {
    ScopedThreads scoped(3);
    EXPECT_EQ(current_threads(), 3);
    {
      ScopedThreads inner(0);
      EXPECT_EQ(current_threads(), 0);
      // The serial global pool executes on the calling thread.
      std::thread::id loop_thread;
      parallel_for(10, [&](std::size_t, std::size_t) {
        loop_thread = std::this_thread::get_id();
      });
      EXPECT_EQ(loop_thread, std::this_thread::get_id());
    }
    EXPECT_EQ(current_threads(), 3);
  }
  EXPECT_EQ(current_threads(), before);
}

TEST(GlobalPool, DefaultThreadsHonoursEnvironment) {
  const char* saved = std::getenv("PL_THREADS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("PL_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3);
  ::setenv("PL_THREADS", "0", 1);
  EXPECT_EQ(default_threads(), 0);
  ::unsetenv("PL_THREADS");
  EXPECT_EQ(default_threads(), hardware_threads());

  if (saved)
    ::setenv("PL_THREADS", saved_value.c_str(), 1);
  else
    ::unsetenv("PL_THREADS");
}

}  // namespace
}  // namespace pl::exec
