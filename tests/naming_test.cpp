// Enum→name tables across the taxonomy and diagnostics layers. The tables
// are hand-maintained lookup arrays or switches next to their enums, so they
// can silently drift when an enumerator is added: every table must cover its
// whole value range with distinct, kebab-or-plain lowercase names, and the
// ones with an explicit unknown fallback must actually produce it.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <string_view>

#include "bgpsim/behavior.hpp"
#include "bgpsim/misconfig.hpp"
#include "joint/outside.hpp"
#include "joint/taxonomy.hpp"
#include "obs/flight.hpp"
#include "robust/error.hpp"
#include "util/status.hpp"

namespace pl {
namespace {

// Names must be usable as CSV/JSON column values verbatim.
bool presentable(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_'))
      return false;
  return true;
}

template <typename Enum, typename NameFn>
void expect_distinct_names(int count, NameFn name_of) {
  std::set<std::string> seen;
  for (int value = 0; value < count; ++value) {
    const std::string name(name_of(static_cast<Enum>(value)));
    EXPECT_TRUE(presentable(name)) << "value " << value << ": '" << name
                                   << "'";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate name '" << name << "' at value " << value;
  }
}

TEST(Naming, BehaviorKindsAreDistinct) {
  expect_distinct_names<bgpsim::BehaviorKind>(
      static_cast<int>(bgpsim::BehaviorKind::kDormantThenAwake) + 1,
      bgpsim::behavior_name);
}

TEST(Naming, MisconfigKindsAreDistinct) {
  expect_distinct_names<bgpsim::MisconfigKind>(
      static_cast<int>(bgpsim::MisconfigKind::kUnexplained) + 1,
      bgpsim::misconfig_name);
}

TEST(Naming, NeverAllocatedKindsAreDistinct) {
  expect_distinct_names<joint::NeverAllocatedKind>(
      static_cast<int>(joint::NeverAllocatedKind::kUnclassified) + 1,
      joint::never_allocated_kind_name);
}

TEST(Naming, TaxonomyCategoriesAreDistinct) {
  expect_distinct_names<joint::Category>(
      static_cast<int>(joint::Category::kOutsideDelegation) + 1,
      joint::category_name);
}

TEST(Naming, RobustStagesAreDistinct) {
  expect_distinct_names<robust::Stage>(
      static_cast<int>(robust::kStageCount), robust::stage_name);
}

TEST(Naming, StatusCodesAreDistinct) {
  expect_distinct_names<StatusCode>(
      static_cast<int>(StatusCode::kInternal) + 1, status_code_name);
}

TEST(Naming, EventKindsAreDistinctAndUnknownFallsBack) {
  std::set<std::string> seen;
  for (std::uint32_t kind = 1;
       kind <= static_cast<std::uint32_t>(obs::EventKind::kStage); ++kind) {
    const std::string name(obs::event_kind_name(kind));
    EXPECT_TRUE(presentable(name)) << "kind " << kind;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate '" << name << "'";
  }
  EXPECT_EQ(obs::event_kind_name(0), "?");
  EXPECT_EQ(obs::event_kind_name(999), "?");
}

}  // namespace
}  // namespace pl
