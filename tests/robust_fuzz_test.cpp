// Fuzz-style property tests for the two ingestion decoders: arbitrary and
// adversarially damaged bytes must never crash them, never drive unbounded
// allocation, and every salvage/skip must be reported, not swallowed. All
// randomness flows from util::Rng seeds, so a failure replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/mrt.hpp"
#include "delegation/file.hpp"
#include "robust/chaos.hpp"
#include "robust/error.hpp"
#include "util/rng.hpp"

namespace pl::robust {
namespace {

using util::Rng;

// ---- MRT decoder.

bgp::Element random_element(Rng& rng) {
  bgp::Element element;
  element.day = static_cast<util::Day>(rng.uniform(0, 20000));
  element.type = static_cast<bgp::ElementType>(rng.uniform(0, 2));
  element.collector = static_cast<bgp::CollectorId>(rng.uniform(0, 40));
  element.peer = asn::Asn{static_cast<std::uint32_t>(rng.uniform(1, 70000))};
  const int length = static_cast<int>(rng.uniform(8, 24));
  element.prefix = *bgp::Prefix::parse(
      std::to_string(rng.uniform(1, 223)) + "." +
      std::to_string(rng.uniform(0, 255)) + ".0.0/" +
      std::to_string(length));
  if (element.type != bgp::ElementType::kWithdrawal) {
    std::vector<asn::Asn> hops;
    const int count = static_cast<int>(rng.uniform(1, 6));
    for (int i = 0; i < count; ++i)
      hops.emplace_back(static_cast<std::uint32_t>(rng.uniform(1, 70000)));
    element.path = bgp::AsPath(std::move(hops));
  }
  return element;
}

TEST(MrtFuzz, RandomBytesNeverCrashTheDecoder) {
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform(0, 512)));
    for (std::uint8_t& byte : bytes)
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));

    // The streaming decoder must terminate (it always advances or fails).
    bgp::MrtDecoder decoder(bytes);
    std::size_t decoded = 0;
    while (decoder.next()) ++decoded;
    EXPECT_LE(decoder.offset(), bytes.size());

    // The tolerant batch decode keeps exact byte accounting.
    ErrorSink sink;
    const bgp::DecodeResult result =
        bgp::decode_elements_tolerant(bytes, &sink);
    EXPECT_EQ(result.elements.size(), decoded);
    EXPECT_EQ(result.bytes_consumed + result.bytes_discarded, bytes.size());
    if (!result.complete) {
      EXPECT_FALSE(result.error.empty());
      EXPECT_FALSE(sink.diagnostics().empty());
    }
  }
}

TEST(MrtFuzz, TruncationSalvagesExactlyTheCompleteRecords) {
  Rng rng(77);
  std::vector<bgp::Element> elements;
  for (int i = 0; i < 12; ++i) elements.push_back(random_element(rng));
  const std::vector<std::uint8_t> encoded = bgp::encode_elements(elements);

  // Record boundaries, recovered by walking the pristine buffer.
  std::vector<std::size_t> boundaries{0};
  {
    bgp::MrtDecoder decoder(encoded);
    while (decoder.next()) boundaries.push_back(decoder.offset());
    ASSERT_TRUE(decoder.ok());
    ASSERT_EQ(boundaries.size(), elements.size() + 1);
  }

  for (std::size_t cut = 0; cut <= encoded.size(); ++cut) {
    const std::span<const std::uint8_t> data(encoded.data(), cut);
    const bgp::DecodeResult result = bgp::decode_elements_tolerant(data);

    // Whole records before the cut survive; nothing partial leaks through.
    std::size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut)
      ++expected;
    ASSERT_EQ(result.elements.size(), expected) << "cut at " << cut;
    for (std::size_t i = 0; i < expected; ++i)
      EXPECT_EQ(result.elements[i].peer, elements[i].peer);
    const bool at_boundary = boundaries[expected] == cut;
    EXPECT_EQ(result.complete, at_boundary) << "cut at " << cut;
    EXPECT_EQ(result.bytes_consumed, boundaries[expected]);
    EXPECT_EQ(result.bytes_discarded, cut - boundaries[expected]);
  }
}

TEST(MrtFuzz, ChaosCorruptedBuffersAreSalvagedWithBooks) {
  Rng rng(4242);
  ChaosConfig chaos;
  chaos.truncate_rate = 0.5;
  chaos.garbage_rate = 0.02;

  for (int round = 0; round < 100; ++round) {
    std::vector<bgp::Element> elements;
    const int count = static_cast<int>(rng.uniform(1, 20));
    for (int i = 0; i < count; ++i) elements.push_back(random_element(rng));
    std::vector<std::uint8_t> bytes = bgp::encode_elements(elements);

    ErrorSink sink;
    corrupt_buffer(bytes, rng, chaos, &sink);
    const bgp::DecodeResult result =
        bgp::decode_elements_tolerant(bytes, &sink);
    EXPECT_LE(result.elements.size(), elements.size() * 8u)
        << "garbage must not inflate the record count unboundedly";
    EXPECT_EQ(result.bytes_consumed + result.bytes_discarded, bytes.size());
    if (!result.complete) {
      EXPECT_EQ(sink.counters().records_salvaged,
                static_cast<std::int64_t>(result.elements.size()));
    }
  }
}

// ---- Delegation file parser.

dele::DelegationFile random_file(Rng& rng) {
  dele::DelegationFile file;
  file.extended = true;
  file.header.registry =
      asn::kAllRirs[static_cast<std::size_t>(rng.uniform(0, 4))];
  file.header.serial = util::make_day(2018, 7, 1);
  file.header.start_date = util::make_day(1984, 1, 1);
  file.header.end_date = util::make_day(2018, 6, 30);
  const int records = static_cast<int>(rng.uniform(1, 40));
  std::uint32_t next_asn = 64496;
  for (int i = 0; i < records; ++i) {
    dele::AsnRecord record;
    record.registry = file.header.registry;
    record.first = asn::Asn{next_asn};
    record.count = static_cast<std::uint32_t>(rng.uniform(1, 4));
    next_asn += record.count + static_cast<std::uint32_t>(rng.uniform(0, 7));
    record.status = static_cast<dele::Status>(rng.uniform(0, 3));
    if (dele::is_delegated(record.status)) {
      record.country = asn::CountryCode::literal(
          static_cast<char>('A' + rng.uniform(0, 25)),
          static_cast<char>('A' + rng.uniform(0, 25)));
      record.date = util::make_day(2001, 1, 1) +
                    static_cast<util::Day>(rng.uniform(0, 6000));
      record.opaque_id = rng() % 100000 + 1;
    }
    file.asn_records.push_back(record);
  }
  file.header.record_count =
      static_cast<std::int64_t>(file.asn_records.size());
  return file;
}

TEST(DelegationFuzz, GarbledFilesParseOrFailButNeverCrash) {
  Rng rng(31337);
  ChaosConfig chaos;
  chaos.truncate_rate = 0.3;
  chaos.garbage_rate = 0.15;

  for (int round = 0; round < 150; ++round) {
    std::string text = dele::serialize(random_file(rng));
    corrupt_text(text, rng, chaos);

    ErrorSink sink;
    const dele::ParseResult result = dele::parse_delegation_file(text, &sink);
    if (result.ok) {
      // Lenient salvage: every skipped line was reported, none swallowed.
      EXPECT_EQ(result.records_skipped, sink.counters().records_skipped);
      EXPECT_GE(static_cast<std::int64_t>(result.warnings.size()),
                result.records_skipped);
      if (result.records_skipped > 0) {
        EXPECT_FALSE(sink.diagnostics().empty());
      }
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(DelegationFuzz, PureGarbageNeverCrashes) {
  Rng rng(555);
  for (int round = 0; round < 200; ++round) {
    std::string text(static_cast<std::size_t>(rng.uniform(0, 400)), '\0');
    for (char& c : text) {
      // Mostly printable with pipes and newlines, to reach deep paths.
      const auto roll = rng.uniform(0, 9);
      if (roll == 0) c = '\n';
      else if (roll <= 2) c = '|';
      else c = static_cast<char>(rng.uniform(32, 126));
    }
    ErrorSink sink;
    const dele::ParseResult result = dele::parse_delegation_file(text, &sink);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(DelegationFuzz, StrictSinkAbortsAtFirstDefectLenientSalvages) {
  dele::DelegationFile file;
  Rng rng(9);
  file = random_file(rng);
  std::string text = dele::serialize(file);
  text += "apnic|AU|asn|notanumber|1|20010101|allocated|x\n";

  ErrorSink lenient(Policy::kLenient);
  const dele::ParseResult salvaged =
      dele::parse_delegation_file(text, &lenient);
  ASSERT_TRUE(salvaged.ok);
  EXPECT_EQ(salvaged.records_skipped, 1);
  EXPECT_EQ(salvaged.file.asn_records.size(), file.asn_records.size());

  ErrorSink strict(Policy::kStrict);
  const dele::ParseResult rejected =
      dele::parse_delegation_file(text, &strict);
  EXPECT_FALSE(rejected.ok);
  EXPECT_FALSE(rejected.error.empty());
  EXPECT_FALSE(strict.ok());
  EXPECT_GT(strict.counters().errors, 0);
}

TEST(CorruptorFuzz, CorruptorsAreDeterministicPerSeed) {
  const std::string original = "a|b|c\nd|e|f\ng|h|i\n";
  ChaosConfig chaos;
  chaos.truncate_rate = 0.4;
  chaos.garbage_rate = 0.5;
  std::string first = original, second = original;
  Rng rng_a(3), rng_b(3);
  corrupt_text(first, rng_a, chaos);
  corrupt_text(second, rng_b, chaos);
  EXPECT_EQ(first, second);

  std::vector<std::uint8_t> bytes_a(64, 0xAA), bytes_b(64, 0xAA);
  Rng rng_c(4), rng_d(4);
  corrupt_buffer(bytes_a, rng_c, chaos);
  corrupt_buffer(bytes_b, rng_d, chaos);
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace pl::robust
