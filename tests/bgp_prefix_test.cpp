#include <gtest/gtest.h>

#include "bgp/prefix.hpp"
#include "bgp/sanitizer.hpp"

namespace pl::bgp {
namespace {

TEST(Prefix, ParseIpv4) {
  const auto p = Prefix::parse("10.20.30.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->family(), Family::kIpv4);
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->to_string(), "10.20.30.0/24");
}

TEST(Prefix, ParseIpv4Rejects) {
  EXPECT_FALSE(Prefix::parse("10.20.30.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.30/24").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.30.256/24").has_value());
  EXPECT_FALSE(Prefix::parse("10.20.30.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("").has_value());
}

TEST(Prefix, MasksHostBits) {
  const auto p = Prefix::parse("10.20.30.255/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.20.30.0/24");
}

TEST(Prefix, ParseIpv6) {
  const auto p = Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->family(), Family::kIpv6);
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->to_string(), "2001:db8:0:0:0:0:0:0/32");

  const auto full = Prefix::parse("2001:db8:1:2:3:4:5:6/128");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->length(), 128);

  EXPECT_FALSE(Prefix::parse("2001:db8::1::2/64").has_value());
  EXPECT_FALSE(Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix::parse("2001:zz::/32").has_value());
}

TEST(Prefix, Containment) {
  const auto covering = *Prefix::parse("10.0.0.0/8");
  const auto inner = *Prefix::parse("10.64.0.0/12");
  const auto outside = *Prefix::parse("11.0.0.0/12");
  EXPECT_TRUE(covering.contains(inner));
  EXPECT_TRUE(covering.contains(covering));
  EXPECT_FALSE(inner.contains(covering));
  EXPECT_FALSE(covering.contains(outside));

  // The paper's Verizon case: a /24 covered by a /12.
  const auto big = *Prefix::parse("100.0.0.0/12");
  const auto leak = *Prefix::parse("100.15.3.0/24");
  EXPECT_TRUE(big.contains(leak));

  // Cross-family containment is always false.
  const auto v6 = *Prefix::parse("2001:db8::/32");
  EXPECT_FALSE(covering.contains(v6));
  EXPECT_FALSE(v6.contains(covering));
}

TEST(Prefix, Ordering) {
  const auto a = *Prefix::parse("10.0.0.0/8");
  const auto b = *Prefix::parse("10.0.0.0/9");
  EXPECT_NE(a, b);
}

struct SanitizerCase {
  const char* prefix;
  ElementType type;
  std::vector<std::uint32_t> path;
  RejectReason expected;
};

class SanitizerTest : public ::testing::TestWithParam<SanitizerCase> {};

TEST_P(SanitizerTest, Classifies) {
  const SanitizerCase& c = GetParam();
  Element element;
  element.day = 0;
  element.type = c.type;
  element.peer = asn::Asn{65000};
  element.prefix = *Prefix::parse(c.prefix);
  std::vector<asn::Asn> hops;
  for (const std::uint32_t v : c.path) hops.push_back(asn::Asn{v});
  element.path = AsPath(std::move(hops));

  const Sanitizer sanitizer;
  EXPECT_EQ(sanitizer.classify(element), c.expected);

  SanitizeStats stats;
  const bool accepted = sanitizer.accept(element, stats);
  EXPECT_EQ(accepted, c.expected == RejectReason::kAccepted);
  EXPECT_EQ(stats.total(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRules, SanitizerTest,
    ::testing::Values(
        // Accepted v4 range /8../24.
        SanitizerCase{"10.0.0.0/8", ElementType::kRibEntry, {1, 2, 3},
                      RejectReason::kAccepted},
        SanitizerCase{"10.1.2.0/24", ElementType::kRibEntry, {1, 2, 3},
                      RejectReason::kAccepted},
        SanitizerCase{"10.1.2.0/25", ElementType::kRibEntry, {1, 2, 3},
                      RejectReason::kPrefixTooLong},
        SanitizerCase{"10.0.0.0/7", ElementType::kRibEntry, {1, 2, 3},
                      RejectReason::kPrefixTooShort},
        // v6 range /8../64.
        SanitizerCase{"2001:db8::/64", ElementType::kRibEntry, {1, 2},
                      RejectReason::kAccepted},
        SanitizerCase{"2001:db8::/65", ElementType::kRibEntry, {1, 2},
                      RejectReason::kPrefixTooLong},
        // Loop: 1 2 1.
        SanitizerCase{"10.0.0.0/16", ElementType::kRibEntry, {1, 2, 1},
                      RejectReason::kPathLoop},
        // Prepending is not a loop.
        SanitizerCase{"10.0.0.0/16", ElementType::kRibEntry, {1, 2, 2, 3},
                      RejectReason::kAccepted},
        // Withdrawals carry no path.
        SanitizerCase{"10.0.0.0/16", ElementType::kWithdrawal, {},
                      RejectReason::kEmptyPath}));

TEST(Sanitizer, CustomBounds) {
  SanitizerConfig config;
  config.ipv4_max_length = 22;
  const Sanitizer sanitizer(config);
  Element element;
  element.prefix = *Prefix::parse("10.1.0.0/23");
  element.path = AsPath({1, 2});
  EXPECT_EQ(sanitizer.classify(element), RejectReason::kPrefixTooLong);
}

TEST(Sanitizer, ReasonNames) {
  EXPECT_EQ(reject_reason_name(RejectReason::kAccepted), "accepted");
  EXPECT_EQ(reject_reason_name(RejectReason::kPathLoop), "path-loop");
}

}  // namespace
}  // namespace pl::bgp
