// Guards for the shared bench harness helpers (bench/common.hpp).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bench/common.hpp"

namespace pl::bench {
namespace {

std::vector<std::int32_t> ramp(std::size_t n) {
  std::vector<std::int32_t> series(n);
  std::iota(series.begin(), series.end(), 0);
  return series;
}

TEST(Downsample, NeverOvershootsBudget) {
  // The old floor-stride logic returned up to ~2x `points` values for
  // series just under a multiple of the budget (e.g. 6209 days / 60).
  for (const std::size_t n : {1u, 59u, 60u, 61u, 119u, 120u, 121u, 6209u}) {
    const auto out = downsample(ramp(n), 60);
    EXPECT_LE(out.size(), 61u) << "series length " << n;
    EXPECT_GE(out.size(), std::min<std::size_t>(n, 2u)) << n;
  }
}

TEST(Downsample, AlwaysIncludesFinalDay) {
  for (const std::size_t n : {2u, 61u, 100u, 6209u}) {
    const auto out = downsample(ramp(n), 60);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), 0.0);
    EXPECT_EQ(out.back(), static_cast<double>(n - 1)) << "series " << n;
  }
}

TEST(Downsample, EmptyAndZeroBudgetAreEmpty) {
  EXPECT_TRUE(downsample({}, 60).empty());
  EXPECT_TRUE(downsample(ramp(10), 0).empty());
}

TEST(Downsample, ShortSeriesKeepsEveryValue) {
  const auto out = downsample(ramp(10), 60);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<double>(i));
}

}  // namespace
}  // namespace pl::bench
