// Guards for the shared bench harness helpers (bench/common.hpp).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "obs/export.hpp"

namespace pl::bench {
namespace {

std::vector<std::int32_t> ramp(std::size_t n) {
  std::vector<std::int32_t> series(n);
  std::iota(series.begin(), series.end(), 0);
  return series;
}

TEST(Downsample, NeverOvershootsBudget) {
  // The old floor-stride logic returned up to ~2x `points` values for
  // series just under a multiple of the budget (e.g. 6209 days / 60).
  for (const std::size_t n : {1u, 59u, 60u, 61u, 119u, 120u, 121u, 6209u}) {
    const auto out = downsample(ramp(n), 60);
    EXPECT_LE(out.size(), 61u) << "series length " << n;
    EXPECT_GE(out.size(), std::min<std::size_t>(n, 2u)) << n;
  }
}

TEST(Downsample, AlwaysIncludesFinalDay) {
  for (const std::size_t n : {2u, 61u, 100u, 6209u}) {
    const auto out = downsample(ramp(n), 60);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), 0.0);
    EXPECT_EQ(out.back(), static_cast<double>(n - 1)) << "series " << n;
  }
}

TEST(Downsample, EmptyAndZeroBudgetAreEmpty) {
  EXPECT_TRUE(downsample({}, 60).empty());
  EXPECT_TRUE(downsample(ramp(10), 0).empty());
}

TEST(Downsample, ShortSeriesKeepsEveryValue) {
  const auto out = downsample(ramp(10), 60);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<double>(i));
}

TEST(JsonWriter, CompactNestingAndCommas) {
  JsonWriter json(/*pretty=*/false);
  json.begin_object();
  json.key("name").value("bench");
  json.key("count").value(std::int64_t{42});
  json.key("ratio").value(0.5, 2);
  json.key("ok").value(true);
  json.key("list").begin_array();
  json.value(std::int64_t{1}).value(std::int64_t{2});
  json.begin_object().key("nested").value("x").end_object();
  json.end_array();
  json.key("empty").begin_object().end_object();
  json.end_object();

  EXPECT_EQ(json.str(),
            "{\"name\": \"bench\",\"count\": 42,\"ratio\": 0.50,"
            "\"ok\": true,\"list\": [1,2,{\"nested\": \"x\"}],"
            "\"empty\": {}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json(/*pretty=*/false);
  json.begin_object();
  json.key("k\"ey").value("line\nbreak\\and\ttab");
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"k\\\"ey\": \"line\\nbreak\\\\and\\ttab\"}");
}

TEST(JsonWriter, PrettyOutputIndentsByDepth) {
  JsonWriter json;
  json.begin_object();
  json.key("a").begin_array().value(std::int64_t{1}).end_array();
  json.end_object();
  EXPECT_EQ(json.str(), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonWriter, PrettyOutputParsesBackAsObsDocument) {
  // The bench artifacts share escaping/structure rules with the obs JSON
  // parser — a pl-obs/1 shaped document written via JsonWriter must be
  // readable by obs::from_json.
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("pl-obs/1");
  json.key("trace").begin_object();
  json.key("name").value("root");
  json.key("start_ms").value(0.0);
  json.key("elapsed_ms").value(1.5, 1);
  json.key("notes").begin_object().key("seed").value(std::int64_t{42});
  json.end_object();
  json.key("children").begin_array().end_array();
  json.end_object();
  json.key("metrics").begin_object();
  json.key("counters").begin_object();
  json.key("pl_x{registry=\"apnic\"}").value(std::int64_t{3});
  json.end_object();
  json.key("gauges").begin_object().end_object();
  json.key("histograms").begin_object().end_object();
  json.end_object();
  json.end_object();

  const auto report = pl::obs::from_json(json.str());
  ASSERT_TRUE(report.has_value()) << json.str();
  EXPECT_EQ(report->trace.name, "root");
  EXPECT_EQ(report->trace.note_value("seed"), 42);
  EXPECT_EQ(report->metrics.counter_sum("pl_x"), 3);
}

}  // namespace
}  // namespace pl::bench
