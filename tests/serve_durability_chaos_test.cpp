// Durability under byte-level chaos: drive the robust:: corruptors over
// the WAL and snapshot files across seeds and corruption rates, and require
// that reopening NEVER crashes, NEVER silently serves damaged state, and
// always reports the damage accurately in the HealthReport.
//
// The invariant under corruption is containment, not recovery: whatever
// the files lost stays lost (and is accounted for), but everything the
// validator accepts must be bit-identical to real history, and the service
// must keep answering from the last good state.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "robust/chaos.hpp"
#include "serve/durable.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace pl::serve {
namespace {

struct World {
  pipeline::Result extended;
  util::Day start = 0;
  util::Day end = 0;
  Snapshot base;
};

const World& world() {
  static const World w = [] {
    pipeline::Config config;
    config.seed = 99;
    config.scale = 0.01;
    World built;
    built.extended = pipeline::run_simulated(config);
    built.end = built.extended.truth.archive_end;
    built.start = built.end - 12;
    built.base = Snapshot::build(
        truncate_archive(built.extended.restored, built.start),
        truncate_activity(built.extended.op_world.activity, built.start),
        built.start);
    return built;
  }();
  return w;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

DayDelta day_of(util::Day day) {
  return slice_day(world().extended.restored,
                   world().extended.op_world.activity, day);
}

/// Build a durable directory whose WAL carries `wal_days` live records on
/// top of the base snapshot (checkpointing disabled so they all stay).
std::string build_durable_dir(const std::string& name, int wal_days) {
  const std::string dir = fresh_dir(name);
  DurableConfig durable;
  durable.dir = dir;
  durable.checkpoint_every_days = 0;
  auto service = DurableService::open(world().base, durable);
  EXPECT_TRUE(service.ok());
  for (util::Day day = world().start + 1; day <= world().start + wal_days;
       ++day)
    EXPECT_TRUE(service->advance_day(day_of(day)).ok());
  return dir;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The served state must equal a clean rebuild at whatever day the service
/// recovered to — corruption may cost days, never correctness.
void expect_serves_real_history(DurableService& service) {
  const util::Day day = service.archive_end();
  ASSERT_GE(day, world().start);
  ASSERT_LE(day, world().end);
  const Snapshot rebuilt = Snapshot::build(
      truncate_archive(world().extended.restored, day),
      truncate_activity(world().extended.op_world.activity, day), day);
  EXPECT_TRUE(service.snapshot() == rebuilt)
      << "recovered state at day " << day << " is not real history";
}

TEST(ServeDurabilityChaos, CorruptedWalAcrossSeedsIsContained) {
  const int wal_days = 8;
  for (const std::uint64_t seed : {1u, 7u, 99u, 1234u}) {
    for (const double rate : {0.01, 0.05, 0.25}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                   std::to_string(rate));
      const std::string dir = build_durable_dir(
          "chaos_wal_" + std::to_string(seed) + "_" +
              std::to_string(static_cast<int>(rate * 100)),
          wal_days);

      const std::string wal = dir + "/days.plwal";
      std::vector<std::uint8_t> bytes = read_bytes(wal);
      ASSERT_FALSE(bytes.empty());
      const std::size_t original_size = bytes.size();
      util::Rng rng(seed);
      robust::corrupt_buffer(bytes, rng, robust::ChaosConfig::uniform(rate, seed));
      const bool truncated = bytes.size() < original_size;
      write_bytes(wal, bytes);

      DurableConfig durable;
      durable.dir = dir;
      durable.checkpoint_every_days = 0;
      auto service = DurableService::open(Snapshot{}, durable);
      ASSERT_TRUE(service.ok()) << service.status().to_string();

      const HealthReport health = service->health();
      const std::int64_t lost =
          wal_days - health.replayed_days;
      EXPECT_GE(lost, 0);
      // Damage must be visible whenever days went missing: every lost day
      // is explained by a corrupt record, a torn tail, a quarantine — or a
      // truncation that happened to cut exactly at a frame boundary, which
      // is indistinguishable from a shorter-but-clean WAL by design.
      if (lost > 0) {
        EXPECT_TRUE(health.wal_corrupt_records > 0 || health.wal_torn_tail ||
                    !health.quarantined_days.empty() || truncated)
            << "lost " << lost << " days with a clean health report";
      }
      if (health.wal_corrupt_records > 0 ||
          !health.quarantined_days.empty()) {
        EXPECT_TRUE(health.degraded);
        EXPECT_FALSE(health.last_error.empty());
      }
      expect_serves_real_history(*service);

      // The service stays operational: it can keep advancing from wherever
      // replay landed.
      const util::Day next = service->archive_end() + 1;
      if (next <= world().end) {
        EXPECT_TRUE(service->advance_day(day_of(next)).ok());
      }
    }
  }
}

TEST(ServeDurabilityChaos, CorruptedSnapshotAcrossSeedsFallsBackToBootstrap) {
  for (const std::uint64_t seed : {3u, 42u, 777u}) {
    for (const double rate : {0.02, 0.2}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                   std::to_string(rate));
      const std::string dir = build_durable_dir(
          "chaos_snap_" + std::to_string(seed) + "_" +
              std::to_string(static_cast<int>(rate * 100)),
          4);

      const std::string snap = dir + "/snapshot.plsnap";
      std::vector<std::uint8_t> bytes = read_bytes(snap);
      ASSERT_FALSE(bytes.empty());
      util::Rng rng(seed);
      const std::vector<std::uint8_t> before = bytes;
      robust::corrupt_buffer(bytes, rng,
                             robust::ChaosConfig::uniform(rate, seed));
      if (bytes == before) bytes[bytes.size() / 3] ^= 0x04;  // force damage
      write_bytes(snap, bytes);

      DurableConfig durable;
      durable.dir = dir;
      durable.checkpoint_every_days = 0;
      auto service = DurableService::open(world().base, durable);
      ASSERT_TRUE(service.ok()) << service.status().to_string();

      // The damaged snapshot was rejected — bootstrap + WAL replay carried
      // the service back to real history, and health says exactly that.
      const HealthReport health = service->health();
      EXPECT_TRUE(health.snapshot_rejected);
      EXPECT_TRUE(health.degraded);
      EXPECT_FALSE(health.last_error.empty());
      expect_serves_real_history(*service);
    }
  }
}

TEST(ServeDurabilityChaos, BothFilesCorruptedStillServesBootstrap) {
  for (const std::uint64_t seed : {11u, 202u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir =
        build_durable_dir("chaos_both_" + std::to_string(seed), 6);
    util::Rng rng(seed);
    for (const std::string file : {"/snapshot.plsnap", "/days.plwal"}) {
      std::vector<std::uint8_t> bytes = read_bytes(dir + file);
      const std::vector<std::uint8_t> before = bytes;
      robust::corrupt_buffer(bytes, rng,
                             robust::ChaosConfig::uniform(0.3, seed));
      if (bytes == before) bytes[0] ^= 0xFF;
      write_bytes(dir + file, bytes);
    }

    DurableConfig durable;
    durable.dir = dir;
    durable.checkpoint_every_days = 0;
    auto service = DurableService::open(world().base, durable);
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    EXPECT_TRUE(service->health().degraded);
    expect_serves_real_history(*service);
  }
}

TEST(ServeDurabilityChaos, EmptyFilesAreHandled) {
  // Zero-length snapshot and WAL (e.g. crash at creation, disk-full): the
  // snapshot is rejected as data loss, the WAL replays as empty.
  const std::string dir = build_durable_dir("chaos_empty", 3);
  write_bytes(dir + "/snapshot.plsnap", {});
  write_bytes(dir + "/days.plwal", {});

  DurableConfig durable;
  durable.dir = dir;
  auto service = DurableService::open(world().base, durable);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_TRUE(service->health().snapshot_rejected);
  EXPECT_EQ(service->health().replayed_days, 0);
  EXPECT_TRUE(service->snapshot() == world().base);
}

}  // namespace
}  // namespace pl::serve
