#include <gtest/gtest.h>

#include "delegation/archive.hpp"
#include "delegation/file.hpp"
#include "util/rng.hpp"

namespace pl::dele {
namespace {

using util::make_day;

constexpr const char* kExtendedSample =
    "2|apnic|20210301|5|19830101|20210228|+1000\n"
    "apnic|*|asn|*|3|summary\n"
    "apnic|*|ipv4|*|1|summary\n"
    "apnic|*|ipv6|*|1|summary\n"
    "# comment line\n"
    "apnic|CN|asn|4608|1|20020101|allocated|A918EDA1\n"
    "apnic|AU|asn|4770|2|20051212|assigned|B42\n"
    "apnic||asn|5000|1||reserved|\n"
    "apnic|CN|ipv4|1.0.1.0|256|20110414|allocated|A918EDA1\n"
    "apnic|JP|ipv6|2001:200::|35|19990813|allocated|C3\n";

TEST(Parser, ParsesExtendedFile) {
  const ParseResult result = parse_delegation_file(kExtendedSample);
  ASSERT_TRUE(result.ok) << result.error;
  const DelegationFile& file = result.file;
  EXPECT_TRUE(file.extended);
  EXPECT_EQ(file.header.registry, asn::Rir::kApnic);
  EXPECT_EQ(file.header.serial, make_day(2021, 3, 1));
  EXPECT_EQ(file.header.record_count, 5);
  EXPECT_EQ(file.header.utc_offset, "+1000");
  ASSERT_EQ(file.asn_records.size(), 3u);
  EXPECT_EQ(file.ipv4_records, 1);
  EXPECT_EQ(file.ipv6_records, 1);

  const AsnRecord& first = file.asn_records[0];
  EXPECT_EQ(first.first, asn::Asn{4608});
  EXPECT_EQ(first.count, 1u);
  EXPECT_EQ(first.status, Status::kAllocated);
  EXPECT_EQ(first.country.to_string(), "CN");
  EXPECT_EQ(first.date, make_day(2002, 1, 1));
  EXPECT_EQ(first.opaque_id, 0xA918EDA1u);

  const AsnRecord& reserved = file.asn_records[2];
  EXPECT_EQ(reserved.status, Status::kReserved);
  EXPECT_FALSE(reserved.date.has_value());
  EXPECT_TRUE(reserved.country.unknown());
}

TEST(Parser, ParsesRegularFile) {
  const char* text =
      "2|ripencc|20040101|2|19930101|20031231|+0100\n"
      "ripencc|*|asn|*|2|summary\n"
      "ripencc|*|ipv4|*|0|summary\n"
      "ripencc|*|ipv6|*|0|summary\n"
      "ripencc|DE|asn|1234|1|19950505|allocated\n"
      "ripencc|FR|asn|1235|1|19960606|assigned\n";
  const ParseResult result = parse_delegation_file(text);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.file.extended);
  EXPECT_EQ(result.file.asn_records.size(), 2u);
}

TEST(Parser, RejectsHeaderlessBlob) {
  EXPECT_FALSE(parse_delegation_file("").ok);
  EXPECT_FALSE(parse_delegation_file("# only comments\n").ok);
  EXPECT_FALSE(parse_delegation_file("garbage\n").ok);
}

TEST(Parser, ToleratesRecordGarbage) {
  const char* text =
      "2|arin|20200101|3|19840101|20191231|-0500\n"
      "arin|US|asn|55|1|20000101|allocated\n"
      "arin|US|asn|notanumber|1|20000101|allocated\n"
      "arin|US|asn|56|1|20000101|bogusstatus\n"
      "arin|US|asn|57\n";
  const ParseResult result = parse_delegation_file(text);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.file.asn_records.size(), 1u);
  EXPECT_EQ(result.warnings.size(), 3u);
}

TEST(Parser, PlaceholderDateParsesAsAbsent) {
  const char* text =
      "2|arin|20200101|1|19840101|20191231|-0500\n"
      "arin|US|asn|55|1|00000000|allocated\n";
  const ParseResult result = parse_delegation_file(text);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.file.asn_records.size(), 1u);
  EXPECT_FALSE(result.file.asn_records[0].date.has_value());
}

TEST(Parser, VersionWithDotAccepted) {
  const char* text =
      "2.3|lacnic|20120628|0|19890101|20120627|-0300\n";
  EXPECT_TRUE(parse_delegation_file(text).ok);
}

TEST(Serializer, RoundTripsExtended) {
  const ParseResult original = parse_delegation_file(kExtendedSample);
  ASSERT_TRUE(original.ok);
  const std::string text = serialize(original.file);
  const ParseResult reparsed = parse_delegation_file(text);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.file.asn_records, original.file.asn_records);
  EXPECT_EQ(reparsed.file.header.serial, original.file.header.serial);
  EXPECT_EQ(reparsed.file.extended, original.file.extended);
}

TEST(Serializer, RegularDropsNonDelegated) {
  ParseResult parsed = parse_delegation_file(kExtendedSample);
  ASSERT_TRUE(parsed.ok);
  parsed.file.extended = false;
  const std::string text = serialize(parsed.file);
  const ParseResult reparsed = parse_delegation_file(text);
  ASSERT_TRUE(reparsed.ok);
  EXPECT_EQ(reparsed.file.asn_records.size(), 2u);  // reserved dropped
  for (const AsnRecord& record : reparsed.file.asn_records)
    EXPECT_TRUE(is_delegated(record.status));
}

// Property: serialize -> parse is the identity on randomized files.
class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, RandomizedFiles) {
  util::Rng rng(GetParam());
  DelegationFile file;
  file.extended = true;
  file.header.registry = asn::kAllRirs[static_cast<std::size_t>(
      rng.uniform(0, 4))];
  file.header.serial = make_day(2015, 6, 1);
  file.header.start_date = make_day(1984, 1, 1);
  file.header.end_date = make_day(2015, 5, 31);
  const int records = static_cast<int>(rng.uniform(0, 60));
  std::uint32_t next_asn = 100;
  for (int i = 0; i < records; ++i) {
    AsnRecord record;
    record.registry = file.header.registry;
    record.first = asn::Asn{next_asn};
    record.count = static_cast<std::uint32_t>(rng.uniform(1, 5));
    next_asn += record.count + static_cast<std::uint32_t>(rng.uniform(0, 9));
    record.status = static_cast<Status>(rng.uniform(0, 3));
    if (is_delegated(record.status)) {
      record.country = asn::CountryCode::literal(
          static_cast<char>('A' + rng.uniform(0, 25)),
          static_cast<char>('A' + rng.uniform(0, 25)));
      record.date = make_day(2000, 1, 1) + static_cast<util::Day>(
          rng.uniform(0, 5000));
      record.opaque_id = rng() % 100000 + 1;
    }
    file.asn_records.push_back(record);
  }
  file.header.record_count = static_cast<std::int64_t>(
      file.asn_records.size());

  const ParseResult reparsed = parse_delegation_file(serialize(file));
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.file.asn_records, file.asn_records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1, 7, 42, 1337, 9001));

TEST(Expand, ExpandsRunsSorted) {
  DelegationFile file;
  AsnRecord a;
  a.first = asn::Asn{10};
  a.count = 3;
  a.status = Status::kAllocated;
  AsnRecord b;
  b.first = asn::Asn{5};
  b.count = 1;
  b.status = Status::kReserved;
  file.asn_records = {a, b};
  const auto expanded = expand_asn_records(file);
  ASSERT_EQ(expanded.size(), 4u);
  EXPECT_EQ(expanded[0].first, asn::Asn{5});
  EXPECT_EQ(expanded[1].first, asn::Asn{10});
  EXPECT_EQ(expanded[3].first, asn::Asn{12});
}

TEST(Diff, ComputesMinimalChanges) {
  const RecordState allocated{Status::kAllocated, make_day(2000, 1, 1),
                              asn::CountryCode::literal('D', 'E'), 7};
  const RecordState reserved{Status::kReserved, std::nullopt,
                             asn::kUnknownCountry, 0};
  std::vector<std::pair<asn::Asn, RecordState>> before = {
      {asn::Asn{1}, allocated}, {asn::Asn{2}, allocated},
      {asn::Asn{3}, allocated}};
  std::vector<std::pair<asn::Asn, RecordState>> after = {
      {asn::Asn{2}, allocated}, {asn::Asn{3}, reserved},
      {asn::Asn{4}, allocated}};
  const auto changes = diff_snapshots(before, after);
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].asn, asn::Asn{1});
  EXPECT_FALSE(changes[0].state.has_value());
  EXPECT_EQ(changes[1].asn, asn::Asn{3});
  EXPECT_EQ(changes[1].state->status, Status::kReserved);
  EXPECT_EQ(changes[2].asn, asn::Asn{4});
}

TEST(Diff, DuplicatesUseLastOccurrence) {
  const RecordState a{Status::kAllocated, make_day(2000, 1, 1),
                      asn::kUnknownCountry, 1};
  const RecordState b{Status::kReserved, std::nullopt, asn::kUnknownCountry,
                      0};
  std::vector<std::pair<asn::Asn, RecordState>> before;
  std::vector<std::pair<asn::Asn, RecordState>> after = {
      {asn::Asn{9}, a}, {asn::Asn{9}, b}};
  const auto changes = diff_snapshots(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].state->status, Status::kReserved);
}

TEST(SnapshotTable, ApplyChanges) {
  SnapshotTable table;
  const RecordState state{Status::kAllocated, make_day(2001, 2, 3),
                          asn::kUnknownCountry, 0};
  table.apply(std::vector<RecordChange>{{asn::Asn{5}, state}});
  ASSERT_NE(table.find(asn::Asn{5}), nullptr);
  EXPECT_EQ(table.size(), 1u);
  table.apply(std::vector<RecordChange>{{asn::Asn{5}, std::nullopt}});
  EXPECT_EQ(table.find(asn::Asn{5}), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(Observations, FromFilesEmitsDeltasAndMissingDays) {
  // Three extended files with a one-day hole.
  DelegationFile day0;
  day0.extended = true;
  day0.header.registry = asn::Rir::kLacnic;
  AsnRecord record;
  record.registry = asn::Rir::kLacnic;
  record.first = asn::Asn{100};
  record.status = Status::kAllocated;
  record.date = make_day(2014, 1, 1);
  record.country = asn::CountryCode::literal('B', 'R');
  day0.asn_records = {record};

  DelegationFile day2 = day0;
  AsnRecord extra = record;
  extra.first = asn::Asn{101};
  day2.asn_records.push_back(extra);

  const util::Day base = make_day(2014, 2, 1);
  const auto observations = observations_from_files(
      asn::Rir::kLacnic, {{base, day0}, {base + 2, day2}}, {}, base,
      base + 2);
  ASSERT_EQ(observations.size(), 3u);
  EXPECT_EQ(observations[0].extended.condition, FileCondition::kPresent);
  EXPECT_EQ(observations[0].extended.changes.size(), 1u);
  EXPECT_EQ(observations[1].extended.condition, FileCondition::kMissing);
  EXPECT_EQ(observations[2].extended.changes.size(), 1u);  // only the add
  EXPECT_EQ(observations[2].extended.changes[0].asn, asn::Asn{101});
}

// Robustness: random single-byte mutations of a valid file must never
// crash the parser — it either still parses (with warnings) or reports an
// error.
class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, SurvivesByteMutations) {
  const ParseResult original = parse_delegation_file(kExtendedSample);
  ASSERT_TRUE(original.ok);
  const std::string base = serialize(original.file);
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    const int mutations = static_cast<int>(rng.uniform(1, 6));
    for (int m = 0; m < mutations; ++m) {
      const auto position = static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform(0, 2)) {
        case 0:
          mutated[position] = static_cast<char>(rng.uniform(32, 126));
          break;
        case 1:
          mutated.erase(position, 1);
          break;
        default:
          mutated.insert(position, 1,
                         static_cast<char>(rng.uniform(32, 126)));
          break;
      }
    }
    const ParseResult result = parse_delegation_file(mutated);
    // Either outcome is fine; the parse must simply terminate cleanly and,
    // when it claims success, produce structurally valid records.
    if (result.ok)
      for (const AsnRecord& record : result.file.asn_records) {
        EXPECT_GE(record.count, 1u);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace pl::dele
