#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pl::util {
namespace {

TEST(Stats, Quantile) {
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 3);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 5);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.25), 2);
  EXPECT_DOUBLE_EQ(median(sample), 3);
  EXPECT_DOUBLE_EQ(mean(sample), 3);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> sample = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 5);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.75), 7.5);
}

TEST(Stats, Ecdf) {
  Ecdf ecdf({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(ecdf.at(0), 0);
  EXPECT_DOUBLE_EQ(ecdf.at(1), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.at(2), 0.6);
  EXPECT_DOUBLE_EQ(ecdf.at(9.99), 0.8);
  EXPECT_DOUBLE_EQ(ecdf.at(10), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(0.6), 2);
  EXPECT_DOUBLE_EQ(ecdf.value_at_fraction(1.0), 10);
}

TEST(Stats, EcdfTabulate) {
  Ecdf ecdf({0, 100});
  const auto table = ecdf.tabulate(3);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_DOUBLE_EQ(table.front().first, 0);
  EXPECT_DOUBLE_EQ(table.back().first, 100);
  EXPECT_DOUBLE_EQ(table.back().second, 1.0);
}

TEST(Stats, FiveNumberSummary) {
  const std::vector<double> sample = {5, 1, 3, 2, 4};
  const FiveNumberSummary s = summarize(sample);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, Histogram) {
  Histogram h(0, 10, 5);
  h.add(0.5);
  h.add(1.5);
  h.add(9.9);
  h.add(-5);   // clamped into bin 0
  h.add(100);  // clamped into last bin
  EXPECT_EQ(h.bin_count(0), 3);  // 0.5, 1.5 (bin width 2), clamped -5
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2);
}

TEST(Stats, Sparkline) {
  EXPECT_EQ(sparkline({}), "");
  const std::vector<double> rising = {0, 1, 2, 3};
  const std::string line = sparkline(rising);
  EXPECT_FALSE(line.empty());
  const std::vector<double> same = {5, 5, 5};
  const std::string flat = sparkline(same);
  EXPECT_EQ(flat, "▁▁▁");
}

TEST(Strings, Split) {
  const auto fields = split("a|b||d", '|');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
  EXPECT_EQ(split("", '|').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \r\n"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Lines) {
  const auto ls = lines("a\nb\r\nc");
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[1], "b");
  EXPECT_EQ(ls[2], "c");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(126953), "126,953");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(0.786), "78.6%");
  EXPECT_EQ(percent(0.034), "3.4%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Csv, WriteAndParseRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b,c", "d\"e", "line\nbreak"});
  writer.write_row({"1", "2", "3", "4"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b,c");
  EXPECT_EQ(rows[0][2], "d\"e");
  EXPECT_EQ(rows[0][3], "line\nbreak");
  EXPECT_EQ(rows[1][3], "4");
}

TEST(Csv, ParseEmptyAndEdge) {
  EXPECT_TRUE(parse_csv("").empty());
  const auto rows = parse_csv("a,b\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 2u);
}

TEST(Table, RendersAligned) {
  TextTable table({"RIR", "count"});
  table.add_row({"AfriNIC", "5,791"});
  table.add_row({"RIPE NCC", "6,249"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("RIR"), std::string::npos);
  EXPECT_NE(text.find("AfriNIC"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace pl::util
