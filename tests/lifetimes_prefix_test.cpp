#include <gtest/gtest.h>

#include "lifetimes/prefix_informed.hpp"

namespace pl::lifetimes {
namespace {

using bgp::Prefix;
using util::DayInterval;

std::set<Prefix> prefixes(std::initializer_list<const char*> texts) {
  std::set<Prefix> out;
  for (const char* text : texts) out.insert(*Prefix::parse(text));
  return out;
}

TEST(PrefixJaccard, Basics) {
  EXPECT_DOUBLE_EQ(prefix_jaccard({}, {}), 1.0);
  const auto a = prefixes({"10.0.0.0/16", "11.0.0.0/16"});
  const auto b = prefixes({"10.0.0.0/16", "12.0.0.0/16"});
  EXPECT_DOUBLE_EQ(prefix_jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(prefix_jaccard(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(prefix_jaccard(a, prefixes({"13.0.0.0/16"})), 0.0);
  EXPECT_DOUBLE_EQ(prefix_jaccard(a, {}), 0.0);
}

class PrefixInformedTest : public ::testing::Test {
 protected:
  /// Provider: prefix set keyed by run start day.
  PrefixSetProvider provider() {
    return [this](asn::Asn, const DayInterval& run) {
      const auto it = sets_.find(run.first);
      return it == sets_.end() ? std::set<Prefix>{} : it->second;
    };
  }

  std::map<util::Day, std::set<Prefix>> sets_;
};

TEST_F(PrefixInformedTest, SubTimeoutGapWithSamePrefixesMerges) {
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{110, 200});  // gap 9
  sets_[0] = prefixes({"10.0.0.0/16"});
  sets_[110] = prefixes({"10.0.0.0/16"});
  const OpDataset dataset =
      build_prefix_informed_lifetimes(activity, provider());
  EXPECT_EQ(dataset.lifetimes.size(), 1u);
}

TEST_F(PrefixInformedTest, SubTimeoutGapWithForeignPrefixesSplits) {
  // The squat signature: resumes within the timeout but announcing entirely
  // different space -> a new life despite the short gap.
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{110, 140});
  sets_[0] = prefixes({"10.0.0.0/16", "11.0.0.0/16"});
  sets_[110] = prefixes({"93.0.0.0/16", "94.0.0.0/16"});
  const OpDataset dataset =
      build_prefix_informed_lifetimes(activity, provider());
  EXPECT_EQ(dataset.lifetimes.size(), 2u);
}

TEST_F(PrefixInformedTest, ExtendedGapWithContinuityMerges) {
  // 50-day outage but the same network comes back: one life.
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{151, 300});  // gap 50
  sets_[0] = prefixes({"10.0.0.0/16"});
  sets_[151] = prefixes({"10.0.0.0/16"});
  const OpDataset informed =
      build_prefix_informed_lifetimes(activity, provider());
  EXPECT_EQ(informed.lifetimes.size(), 1u);
  // The plain 30-day builder splits the same data.
  EXPECT_EQ(build_op_lifetimes(activity, 30).lifetimes.size(), 2u);
}

TEST_F(PrefixInformedTest, ExtendedGapWithoutContinuitySplits) {
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{151, 300});
  sets_[0] = prefixes({"10.0.0.0/16"});
  sets_[151] = prefixes({"20.0.0.0/16"});
  EXPECT_EQ(build_prefix_informed_lifetimes(activity, provider())
                .lifetimes.size(),
            2u);
}

TEST_F(PrefixInformedTest, GapBeyondExtendedTimeoutAlwaysSplits) {
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{300, 400});  // gap 199 > 90
  sets_[0] = prefixes({"10.0.0.0/16"});
  sets_[300] = prefixes({"10.0.0.0/16"});
  EXPECT_EQ(build_prefix_informed_lifetimes(activity, provider())
                .lifetimes.size(),
            2u);
}

TEST_F(PrefixInformedTest, ConfigThresholds) {
  bgp::ActivityTable activity;
  activity.mark_active(asn::Asn{1}, DayInterval{0, 100});
  activity.mark_active(asn::Asn{1}, DayInterval{110, 200});
  sets_[0] = prefixes({"10.0.0.0/16", "11.0.0.0/16"});
  sets_[110] = prefixes({"10.0.0.0/16", "12.0.0.0/16"});  // Jaccard 1/3
  PrefixInformedConfig strict;
  strict.split_below = 0.5;  // 1/3 < 0.5 -> split
  EXPECT_EQ(build_prefix_informed_lifetimes(activity, provider(), strict)
                .lifetimes.size(),
            2u);
  PrefixInformedConfig lenient;
  lenient.split_below = 0.1;  // 1/3 >= 0.1 -> merge
  EXPECT_EQ(build_prefix_informed_lifetimes(activity, provider(), lenient)
                .lifetimes.size(),
            1u);
}

}  // namespace
}  // namespace pl::lifetimes
