#include <gtest/gtest.h>

#include "rirsim/world.hpp"

namespace pl::rirsim {
namespace {

using asn::Rir;
using util::make_day;

TEST(Iana, DefaultPlanDisjointAndComplete) {
  const IanaBlockTable table = make_default_iana_plan();
  // Every RIR owns a 16-bit and a 32-bit lane.
  for (Rir rir : asn::kAllRirs) {
    EXPECT_GT(table.sixteen_bit_stock(rir), 0u) << asn::display_name(rir);
    EXPECT_EQ(table.owner(asn::Asn{default_32bit_base(rir)}), rir);
  }
  // Blocks do not overlap: each boundary probe resolves to one owner.
  EXPECT_EQ(table.owner(asn::Asn{1}), Rir::kArin);
  EXPECT_FALSE(table.owner(asn::Asn{0}).has_value());
  EXPECT_FALSE(table.owner(asn::Asn{64496}).has_value());  // RFC 5398 space
  EXPECT_FALSE(table.owner(asn::Asn{100000}).has_value()); // pre-32-bit gap
  EXPECT_FALSE(table.owner(asn::Asn{4294967294U}).has_value());
}

TEST(Policy, BirthCurvesMatchPaperEvents) {
  // Dot-com bubble spike for ARIN around 2000 (Fig. 10).
  const RirPolicy& arin = default_policy(Rir::kArin);
  EXPECT_GT(arin.births_per_quarter(2000), arin.births_per_quarter(1997));
  EXPECT_GT(arin.births_per_quarter(2000), arin.births_per_quarter(2004));
  // APNIC / LACNIC ramp after 2014.
  EXPECT_GT(default_policy(Rir::kApnic).births_per_quarter(2016),
            default_policy(Rir::kApnic).births_per_quarter(2012));
  EXPECT_GT(default_policy(Rir::kLacnic).births_per_quarter(2016),
            default_policy(Rir::kLacnic).births_per_quarter(2012));
  // AfriNIC starts in 2005.
  EXPECT_EQ(default_policy(Rir::kAfrinic).births_per_quarter(2004), 0);
  EXPECT_GT(default_policy(Rir::kAfrinic).births_per_quarter(2006), 0);
}

TEST(Policy, ThirtyTwoBitSchedule) {
  for (Rir rir : asn::kAllRirs) {
    const RirPolicy& policy = default_policy(rir);
    EXPECT_EQ(policy.fraction_32bit(2006), 0) << asn::display_name(rir);
    EXPECT_GT(policy.fraction_32bit(2010), 0);
    // Monotone non-decreasing after introduction.
    for (int year = 2008; year < 2021; ++year)
      EXPECT_LE(policy.fraction_32bit(year), policy.fraction_32bit(year + 1))
          << asn::display_name(rir) << " " << year;
  }
  // ARIN is the laggard: in 2012 it allocates far fewer 32-bit than APNIC,
  // and ~30% of its 2020 allocations are still 16-bit (paper 5).
  EXPECT_LT(default_policy(Rir::kArin).fraction_32bit(2012),
            default_policy(Rir::kApnic).fraction_32bit(2012));
  EXPECT_NEAR(default_policy(Rir::kArin).fraction_32bit(2020), 0.7, 0.01);
  EXPECT_GT(default_policy(Rir::kApnic).fraction_32bit(2020), 0.98);
}

TEST(Policy, AfrinicExceptionFlag) {
  EXPECT_TRUE(default_policy(Rir::kAfrinic)
                  .regdate_reset_on_same_holder_reallocation);
  EXPECT_FALSE(default_policy(Rir::kRipeNcc)
                   .regdate_reset_on_same_holder_reallocation);
}

class WorldTest : public ::testing::Test {
 protected:
  static const GroundTruth& truth() {
    static const GroundTruth world =
        build_world(WorldConfig::test_scale(7, 0.03));
    return world;
  }
};

TEST_F(WorldTest, Deterministic) {
  const GroundTruth again = build_world(WorldConfig::test_scale(7, 0.03));
  ASSERT_EQ(again.lives.size(), truth().lives.size());
  for (std::size_t i = 0; i < again.lives.size(); i += 97) {
    EXPECT_EQ(again.lives[i].asn, truth().lives[i].asn);
    EXPECT_EQ(again.lives[i].days, truth().lives[i].days);
  }
}

TEST_F(WorldTest, LivesOfOneAsnNeverOverlap) {
  for (const auto& [asn_value, indices] : truth().lives_by_asn) {
    for (std::size_t k = 1; k < indices.size(); ++k) {
      const TrueAdminLife& previous = truth().lives[indices[k - 1]];
      const TrueAdminLife& next = truth().lives[indices[k]];
      EXPECT_LT(previous.days.last, next.days.first)
          << "ASN " << asn_value;
      // Quarantine separates consecutive lives.
      const util::DayInterval quarantine =
          truth().quarantine_after[indices[k - 1]];
      if (!quarantine.empty()) {
        EXPECT_LE(quarantine.last, next.days.first - 1);
      }
    }
  }
}

TEST_F(WorldTest, SegmentsAreGapFreeAndCoverLife) {
  for (const TrueAdminLife& life : truth().lives) {
    ASSERT_FALSE(life.segments.empty());
    EXPECT_EQ(life.segments.front().days.first, life.days.first);
    EXPECT_EQ(life.segments.back().days.last, life.days.last);
    for (std::size_t s = 1; s < life.segments.size(); ++s)
      EXPECT_EQ(life.segments[s].days.first,
                life.segments[s - 1].days.last + 1);
  }
}

TEST_F(WorldTest, InterruptionsLieInsideLives) {
  for (const TrueAdminLife& life : truth().lives)
    for (const Interruption& gap : life.interruptions) {
      EXPECT_TRUE(life.days.contains(gap.days));
      EXPECT_GT(gap.days.first, life.days.first);
      EXPECT_LT(gap.days.last, life.days.last);
    }
}

TEST_F(WorldTest, ErxTransfersExist) {
  std::size_t erx = 0;
  std::size_t regular_transfers = 0;
  for (const TrueAdminLife& life : truth().lives) {
    if (life.erx_transfer) {
      ++erx;
      EXPECT_TRUE(truth().erx.contains(life.asn.value));
      EXPECT_GE(life.segments.size(), 2u);
    } else if (life.segments.size() > 1) {
      ++regular_transfers;
    }
  }
  EXPECT_GT(erx, 0u);
  EXPECT_GT(regular_transfers, 0u);
}

TEST_F(WorldTest, OrdinalsAreSequential) {
  for (const auto& [asn_value, indices] : truth().lives_by_asn)
    for (std::size_t k = 0; k < indices.size(); ++k)
      EXPECT_EQ(truth().lives[indices[k]].ordinal, static_cast<int>(k));
}

TEST_F(WorldTest, IanaOwnsBirthRegistryNumbers) {
  // Every non-transferred life's ASN belongs to its birth registry's lanes.
  for (const TrueAdminLife& life : truth().lives) {
    const auto owner = truth().iana.owner(life.asn);
    ASSERT_TRUE(owner.has_value()) << asn::to_string(life.asn);
    EXPECT_EQ(*owner, life.birth_registry());
  }
}

TEST_F(WorldTest, OrgsOwnTheirAsns) {
  for (const TrueAdminLife& life : truth().lives) {
    ASSERT_LT(life.org, truth().orgs.size());
    const Organization& org = truth().orgs[life.org];
    EXPECT_NE(std::find(org.asns.begin(), org.asns.end(), life.asn),
              org.asns.end());
  }
}

TEST_F(WorldTest, ScaleControlsSize) {
  const GroundTruth small = build_world(WorldConfig::test_scale(7, 0.01));
  EXPECT_LT(small.lives.size(), truth().lives.size());
  EXPECT_GT(small.lives.size(), 0u);
}

TEST_F(WorldTest, QuarantineFollowsClosedLives) {
  ASSERT_EQ(truth().quarantine_after.size(), truth().lives.size());
  for (std::size_t i = 0; i < truth().lives.size(); ++i) {
    const TrueAdminLife& life = truth().lives[i];
    const util::DayInterval quarantine = truth().quarantine_after[i];
    if (life.open_ended) {
      EXPECT_TRUE(quarantine.empty());
    } else if (!quarantine.empty()) {
      EXPECT_EQ(quarantine.first, life.days.last + 1);
    }
  }
}

TEST_F(WorldTest, SixteenBitSharesFollowEra) {
  // Lives born before 2007 are all 16-bit; after 2015 mostly 32-bit for
  // APNIC-like registries.
  std::int64_t early_32 = 0;
  std::int64_t late_apnic_total = 0;
  std::int64_t late_apnic_32 = 0;
  for (const TrueAdminLife& life : truth().lives) {
    const int year = util::year_of(life.days.first);
    if (year < 2007 && life.ordinal == 0 && life.asn.is_32bit_only())
      ++early_32;
    if (year >= 2016 && life.birth_registry() == Rir::kApnic) {
      ++late_apnic_total;
      if (life.asn.is_32bit_only()) ++late_apnic_32;
    }
  }
  EXPECT_EQ(early_32, 0);
  ASSERT_GT(late_apnic_total, 0);
  EXPECT_GT(static_cast<double>(late_apnic_32) /
                static_cast<double>(late_apnic_total),
            0.7);
}

}  // namespace
}  // namespace pl::rirsim
