// Serialization for the whole-program model documents: the per-file
// extraction cache (`pl-lint-cache/1`), the frozen-findings baseline
// (`pl-baseline/1`), and the program-model artifact (`pl-graph/1`). All
// three are emitted through the shared bench::JsonWriter and read back with
// the minimal detail::JsonCursor, same as the pl-lint/1 report.
#include <utility>

#include "bench/common.hpp"
#include "model.hpp"

namespace pl::lint {

namespace {

using detail::JsonCursor;

/// Content hashes are serialized as fixed-width hex: JsonCursor::integer is
/// a signed 64-bit parse and would clip the top bit.
std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int nibble = 15; nibble >= 0; --nibble) {
    out[static_cast<std::size_t>(nibble)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex64(std::string_view text) {
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9')
      value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
  }
  return value;
}

void emit_report(bench::JsonWriter& json, const Report& report) {
  json.begin_object();
  json.key("files_scanned")
      .value(static_cast<std::int64_t>(report.files_scanned));
  json.key("findings").begin_array();
  for (const Finding& finding : report.findings) {
    json.begin_object();
    json.key("file").value(finding.file);
    json.key("line").value(static_cast<std::int64_t>(finding.line));
    json.key("rule").value(finding.rule);
    json.key("message").value(finding.message);
    json.end_object();
  }
  json.end_array();
  json.key("suppressions").begin_array();
  for (const auto& [rule, budget] : report.suppressions) {
    json.begin_object();
    json.key("rule").value(rule);
    json.key("declared").value(static_cast<std::int64_t>(budget.declared));
    json.key("used").value(static_cast<std::int64_t>(budget.used));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

bool parse_report(JsonCursor& cursor, Report* report) {
  if (!cursor.consume('{')) return false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string key = cursor.string();
    if (!cursor.consume(':')) return false;
    if (key == "files_scanned") {
      report->files_scanned = static_cast<int>(cursor.integer());
    } else if (key == "findings") {
      if (!cursor.consume('[')) return false;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return false;
        Finding finding;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return false;
          if (field == "file")
            finding.file = cursor.string();
          else if (field == "line")
            finding.line = static_cast<int>(cursor.integer());
          else if (field == "rule")
            finding.rule = cursor.string();
          else if (field == "message")
            finding.message = cursor.string();
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        report->findings.push_back(std::move(finding));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "suppressions") {
      if (!cursor.consume('[')) return false;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return false;
        std::string rule;
        SuppressionBudget budget;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return false;
          if (field == "rule")
            rule = cursor.string();
          else if (field == "declared")
            budget.declared = static_cast<int>(cursor.integer());
          else if (field == "used")
            budget.used = static_cast<int>(cursor.integer());
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        if (!rule.empty()) report->suppressions.emplace(rule, budget);
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else {
      cursor.skip_value();
    }
    if (!cursor.peek('}')) cursor.consume(',');
  }
  return cursor.consume('}');
}

void emit_sink(bench::JsonWriter& json, const SinkHit& sink) {
  json.begin_object();
  json.key("kind").value(sink.kind);
  json.key("token").value(sink.token);
  json.key("line").value(static_cast<std::int64_t>(sink.line));
  json.end_object();
}

bool parse_sink(JsonCursor& cursor, SinkHit* sink) {
  if (!cursor.consume('{')) return false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string field = cursor.string();
    if (!cursor.consume(':')) return false;
    if (field == "kind")
      sink->kind = cursor.string();
    else if (field == "token")
      sink->token = cursor.string();
    else if (field == "line")
      sink->line = static_cast<int>(cursor.integer());
    else
      cursor.skip_value();
    if (!cursor.peek('}')) cursor.consume(',');
  }
  return cursor.consume('}');
}

}  // namespace

// ---------------------------------------------------------------------------
// pl-lint-cache/1

std::string cache_json(const std::vector<FileModel>& models) {
  bench::JsonWriter json(/*pretty=*/false);
  json.begin_object();
  json.key("schema").value("pl-lint-cache/1");
  json.key("files").begin_array();
  for (const FileModel& model : models) {
    json.begin_object();
    json.key("path").value(model.relpath);
    json.key("hash").value(hex64(model.hash));
    json.key("det_ok_declared")
        .value(static_cast<std::int64_t>(model.det_ok_declared));
    json.key("includes").begin_array();
    for (const IncludeEdge& inc : model.includes) {
      json.begin_object();
      json.key("target").value(inc.target);
      json.key("line").value(static_cast<std::int64_t>(inc.line));
      json.end_object();
    }
    json.end_array();
    json.key("allows").begin_array();
    for (const detail::AllowSpan& span : model.allows) {
      json.begin_object();
      json.key("rule").value(span.rule);
      json.key("from").value(static_cast<std::int64_t>(span.from));
      json.key("to").value(static_cast<std::int64_t>(span.to));
      json.key("file_wide").value(span.file_wide);
      json.end_object();
    }
    json.end_array();
    json.key("functions").begin_array();
    for (const FunctionSym& fn : model.functions) {
      json.begin_object();
      json.key("qname").value(fn.qname);
      json.key("name").value(fn.name);
      json.key("klass").value(fn.klass);
      json.key("line").value(static_cast<std::int64_t>(fn.line));
      json.key("end_line").value(static_cast<std::int64_t>(fn.end_line));
      json.key("def").value(fn.is_definition);
      json.key("det_ok").value(fn.det_ok);
      json.key("det_ok_reason").value(fn.det_ok_reason);
      json.key("calls").begin_array();
      for (const CallSite& call : fn.calls) {
        json.begin_object();
        json.key("name").value(call.name);
        json.key("qual").value(call.qual);
        json.key("member").value(call.member);
        json.end_object();
      }
      json.end_array();
      json.key("sinks").begin_array();
      for (const SinkHit& sink : fn.sinks) emit_sink(json, sink);
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.key("refs").begin_array();
    for (const std::string& ref : model.refs) json.value(ref);
    json.end_array();
    json.key("report");
    emit_report(json, model.file_report);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<std::vector<FileModel>> cache_from_json(std::string_view json) {
  JsonCursor cursor{json};
  std::vector<FileModel> models;
  if (!cursor.consume('{')) return std::nullopt;
  bool saw_schema = false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string key = cursor.string();
    if (!cursor.consume(':')) return std::nullopt;
    if (key == "schema") {
      if (cursor.string() != "pl-lint-cache/1") return std::nullopt;
      saw_schema = true;
    } else if (key == "files") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        FileModel model;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "path") {
            model.relpath = cursor.string();
          } else if (field == "hash") {
            model.hash = parse_hex64(cursor.string());
          } else if (field == "det_ok_declared") {
            model.det_ok_declared = static_cast<int>(cursor.integer());
          } else if (field == "includes") {
            if (!cursor.consume('[')) return std::nullopt;
            while (cursor.ok && !cursor.peek(']')) {
              if (!cursor.consume('{')) return std::nullopt;
              IncludeEdge inc;
              while (cursor.ok && !cursor.peek('}')) {
                const std::string f = cursor.string();
                if (!cursor.consume(':')) return std::nullopt;
                if (f == "target")
                  inc.target = cursor.string();
                else if (f == "line")
                  inc.line = static_cast<int>(cursor.integer());
                else
                  cursor.skip_value();
                if (!cursor.peek('}')) cursor.consume(',');
              }
              cursor.consume('}');
              model.includes.push_back(std::move(inc));
              if (!cursor.peek(']')) cursor.consume(',');
            }
            cursor.consume(']');
          } else if (field == "allows") {
            if (!cursor.consume('[')) return std::nullopt;
            while (cursor.ok && !cursor.peek(']')) {
              if (!cursor.consume('{')) return std::nullopt;
              detail::AllowSpan span;
              while (cursor.ok && !cursor.peek('}')) {
                const std::string f = cursor.string();
                if (!cursor.consume(':')) return std::nullopt;
                if (f == "rule")
                  span.rule = cursor.string();
                else if (f == "from")
                  span.from = static_cast<int>(cursor.integer());
                else if (f == "to")
                  span.to = static_cast<int>(cursor.integer());
                else if (f == "file_wide")
                  span.file_wide = cursor.boolean();
                else
                  cursor.skip_value();
                if (!cursor.peek('}')) cursor.consume(',');
              }
              cursor.consume('}');
              model.allows.push_back(std::move(span));
              if (!cursor.peek(']')) cursor.consume(',');
            }
            cursor.consume(']');
          } else if (field == "functions") {
            if (!cursor.consume('[')) return std::nullopt;
            while (cursor.ok && !cursor.peek(']')) {
              if (!cursor.consume('{')) return std::nullopt;
              FunctionSym fn;
              while (cursor.ok && !cursor.peek('}')) {
                const std::string f = cursor.string();
                if (!cursor.consume(':')) return std::nullopt;
                if (f == "qname") {
                  fn.qname = cursor.string();
                } else if (f == "name") {
                  fn.name = cursor.string();
                } else if (f == "klass") {
                  fn.klass = cursor.string();
                } else if (f == "line") {
                  fn.line = static_cast<int>(cursor.integer());
                } else if (f == "end_line") {
                  fn.end_line = static_cast<int>(cursor.integer());
                } else if (f == "def") {
                  fn.is_definition = cursor.boolean();
                } else if (f == "det_ok") {
                  fn.det_ok = cursor.boolean();
                } else if (f == "det_ok_reason") {
                  fn.det_ok_reason = cursor.string();
                } else if (f == "calls") {
                  if (!cursor.consume('[')) return std::nullopt;
                  while (cursor.ok && !cursor.peek(']')) {
                    if (!cursor.consume('{')) return std::nullopt;
                    CallSite call;
                    while (cursor.ok && !cursor.peek('}')) {
                      const std::string g = cursor.string();
                      if (!cursor.consume(':')) return std::nullopt;
                      if (g == "name")
                        call.name = cursor.string();
                      else if (g == "qual")
                        call.qual = cursor.string();
                      else if (g == "member")
                        call.member = cursor.boolean();
                      else
                        cursor.skip_value();
                      if (!cursor.peek('}')) cursor.consume(',');
                    }
                    cursor.consume('}');
                    fn.calls.push_back(std::move(call));
                    if (!cursor.peek(']')) cursor.consume(',');
                  }
                  cursor.consume(']');
                } else if (f == "sinks") {
                  if (!cursor.consume('[')) return std::nullopt;
                  while (cursor.ok && !cursor.peek(']')) {
                    SinkHit sink;
                    if (!parse_sink(cursor, &sink)) return std::nullopt;
                    fn.sinks.push_back(std::move(sink));
                    if (!cursor.peek(']')) cursor.consume(',');
                  }
                  cursor.consume(']');
                } else {
                  cursor.skip_value();
                }
                if (!cursor.peek('}')) cursor.consume(',');
              }
              cursor.consume('}');
              model.functions.push_back(std::move(fn));
              if (!cursor.peek(']')) cursor.consume(',');
            }
            cursor.consume(']');
          } else if (field == "refs") {
            if (!cursor.consume('[')) return std::nullopt;
            while (cursor.ok && !cursor.peek(']')) {
              model.refs.push_back(cursor.string());
              if (!cursor.peek(']')) cursor.consume(',');
            }
            cursor.consume(']');
          } else if (field == "report") {
            if (!parse_report(cursor, &model.file_report))
              return std::nullopt;
          } else {
            cursor.skip_value();
          }
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        models.push_back(std::move(model));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else {
      cursor.skip_value();
    }
    if (!cursor.peek('}')) cursor.consume(',');
  }
  if (!cursor.ok || !saw_schema) return std::nullopt;
  return models;
}

// ---------------------------------------------------------------------------
// pl-graph/1

std::string graph_json(const ProgramAnalysis& analysis,
                       const LayerManifest& manifest,
                       const std::vector<FileModel>& models,
                       std::string_view root) {
  bench::JsonWriter json(/*pretty=*/true);
  json.begin_object();
  json.key("schema").value("pl-graph/1");
  json.key("root").value(root);
  json.key("functions").value(static_cast<std::int64_t>(analysis.functions));
  json.key("calls").value(static_cast<std::int64_t>(analysis.calls));
  json.key("levels").begin_array();
  for (const std::vector<std::string>& level : manifest.levels) {
    json.begin_array();
    for (const std::string& name : level) json.value(name);
    json.end_array();
  }
  json.end_array();
  json.key("nodes").begin_array();
  for (const FileModel& model : models) {
    json.begin_object();
    json.key("file").value(model.relpath);
    json.key("subsystem").value(subsystem_of(model.relpath));
    json.end_object();
  }
  json.end_array();
  json.key("edges").begin_array();
  for (const GraphEdge& edge : analysis.edges) {
    json.begin_object();
    json.key("from").value(edge.from);
    json.key("to").value(edge.to);
    json.key("line").value(static_cast<std::int64_t>(edge.line));
    json.end_object();
  }
  json.end_array();
  json.key("taint").begin_array();
  for (const TaintWitness& witness : analysis.taint) {
    json.begin_object();
    json.key("root").value(witness.root);
    json.key("file").value(witness.file);
    json.key("line").value(static_cast<std::int64_t>(witness.line));
    json.key("path").begin_array();
    for (const std::string& hop : witness.path) json.value(hop);
    json.end_array();
    json.key("sink");
    emit_sink(json, witness.sink);
    json.key("sink_file").value(witness.sink_file);
    json.end_object();
  }
  json.end_array();
  json.key("dead").begin_array();
  for (const DeadSymbol& dead : analysis.dead) {
    json.begin_object();
    json.key("qname").value(dead.qname);
    json.key("file").value(dead.file);
    json.key("line").value(static_cast<std::int64_t>(dead.line));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<GraphDoc> graph_from_json(std::string_view json) {
  JsonCursor cursor{json};
  GraphDoc doc;
  if (!cursor.consume('{')) return std::nullopt;
  bool saw_schema = false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string key = cursor.string();
    if (!cursor.consume(':')) return std::nullopt;
    if (key == "schema") {
      if (cursor.string() != "pl-graph/1") return std::nullopt;
      saw_schema = true;
    } else if (key == "functions") {
      doc.functions = static_cast<int>(cursor.integer());
    } else if (key == "calls") {
      doc.calls = static_cast<int>(cursor.integer());
    } else if (key == "levels") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('[')) return std::nullopt;
        std::vector<std::string> level;
        while (cursor.ok && !cursor.peek(']')) {
          level.push_back(cursor.string());
          if (!cursor.peek(']')) cursor.consume(',');
        }
        cursor.consume(']');
        doc.levels.push_back(std::move(level));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "nodes") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        std::string file;
        std::string subsystem;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "file")
            file = cursor.string();
          else if (field == "subsystem")
            subsystem = cursor.string();
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        doc.nodes.emplace_back(std::move(file), std::move(subsystem));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "edges") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        GraphEdge edge;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "from")
            edge.from = cursor.string();
          else if (field == "to")
            edge.to = cursor.string();
          else if (field == "line")
            edge.line = static_cast<int>(cursor.integer());
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        doc.edges.push_back(std::move(edge));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "taint") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        TaintWitness witness;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "root") {
            witness.root = cursor.string();
          } else if (field == "file") {
            witness.file = cursor.string();
          } else if (field == "line") {
            witness.line = static_cast<int>(cursor.integer());
          } else if (field == "path") {
            if (!cursor.consume('[')) return std::nullopt;
            while (cursor.ok && !cursor.peek(']')) {
              witness.path.push_back(cursor.string());
              if (!cursor.peek(']')) cursor.consume(',');
            }
            cursor.consume(']');
          } else if (field == "sink") {
            if (!parse_sink(cursor, &witness.sink)) return std::nullopt;
          } else if (field == "sink_file") {
            witness.sink_file = cursor.string();
          } else {
            cursor.skip_value();
          }
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        doc.taint.push_back(std::move(witness));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "dead") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        DeadSymbol dead;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "qname")
            dead.qname = cursor.string();
          else if (field == "file")
            dead.file = cursor.string();
          else if (field == "line")
            dead.line = static_cast<int>(cursor.integer());
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        doc.dead.push_back(std::move(dead));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else {
      cursor.skip_value();
    }
    if (!cursor.peek('}')) cursor.consume(',');
  }
  if (!cursor.ok || !saw_schema) return std::nullopt;
  return doc;
}

// ---------------------------------------------------------------------------
// pl-baseline/1

std::string baseline_json(const Baseline& baseline) {
  bench::JsonWriter json(/*pretty=*/true);
  json.begin_object();
  json.key("schema").value("pl-baseline/1");
  json.key("entries").begin_array();
  for (const BaselineEntry& entry : baseline.entries) {
    json.begin_object();
    json.key("rule").value(entry.rule);
    json.key("file").value(entry.file);
    json.key("count").value(static_cast<std::int64_t>(entry.count));
    json.key("reason").value(entry.reason);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<Baseline> baseline_from_json(std::string_view json) {
  JsonCursor cursor{json};
  Baseline baseline;
  if (!cursor.consume('{')) return std::nullopt;
  bool saw_schema = false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string key = cursor.string();
    if (!cursor.consume(':')) return std::nullopt;
    if (key == "schema") {
      if (cursor.string() != "pl-baseline/1") return std::nullopt;
      saw_schema = true;
    } else if (key == "entries") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        BaselineEntry entry;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "rule")
            entry.rule = cursor.string();
          else if (field == "file")
            entry.file = cursor.string();
          else if (field == "count")
            entry.count = static_cast<int>(cursor.integer());
          else if (field == "reason")
            entry.reason = cursor.string();
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        baseline.entries.push_back(std::move(entry));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else {
      cursor.skip_value();
    }
    if (!cursor.peek('}')) cursor.consume(',');
  }
  if (!cursor.ok || !saw_schema) return std::nullopt;
  return baseline;
}

}  // namespace pl::lint
