// pl-lint whole-program model (DESIGN.md §15).
//
// The per-file rule engine (lint.hpp) sees one translation unit at a time,
// so a call chain that reaches a wall clock through two hops, or a low
// layer quietly including a high one, is invisible to it. This half of the
// analyzer builds one model over every scanned file — an include graph
// checked against the architecture manifest (layers.txt), and a symbol
// index + call graph recovered from the same tokenizer — and runs the four
// cross-TU rules on it:
//
//   layer-violation    an include edge against the manifest DAG
//   include-cycle      a cycle anywhere in the project include graph
//   determinism-taint  a src/ function transitively reaching a
//                      rand/clock/unordered-drain sink with no
//                      `// pl-lint: det-ok(reason)` on the path
//   dead-public-api    a free function exported by a src/ header that no
//                      other translation unit references
//
// Per-file extraction (`extract_file_model`) is pure and cacheable by
// content hash; the cross-TU passes (`analyze_program`) run over the cached
// models, so the tree gate re-lexes only files that changed. Findings may
// be frozen into baseline.json with a one-line reason each; the ratchet
// (`apply_baseline`) fails the gate when a count grows and only ever lets
// the baseline shrink.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "internal.hpp"
#include "lint.hpp"

namespace pl::lint {

// ---------------------------------------------------------------------------
// Per-file model (cache unit).

/// One `#include "..."` directive, as written.
struct IncludeEdge {
  std::string target;
  int line = 0;

  friend bool operator==(const IncludeEdge&, const IncludeEdge&) = default;
};

/// One nondeterminism sink occurrence inside a function body.
/// kind: "rand" | "clock" | "time" | "unordered-drain".
struct SinkHit {
  std::string kind;
  std::string token;  ///< the offending identifier / container name
  int line = 0;

  friend bool operator==(const SinkHit&, const SinkHit&) = default;
};

/// One call site inside a function body, overload-insensitive.
struct CallSite {
  std::string name;  ///< last identifier of the callee chain
  std::string qual;  ///< explicit qualifier ("util", "obs::Span"), or ""
  bool member = false;  ///< reached through `.` / `->`

  friend bool operator==(const CallSite&, const CallSite&) = default;
};

/// One function recovered from the tokens: a definition (with body-derived
/// calls and sinks) or a bare declaration (headers).
struct FunctionSym {
  std::string qname;  ///< "pl::dele::parse_line" / "pl::obs::Span::finish"
  std::string name;   ///< last component
  std::string klass;  ///< enclosing class, "" for free functions
  int line = 0;
  int end_line = 0;
  bool is_definition = false;
  bool det_ok = false;
  std::string det_ok_reason;
  std::vector<CallSite> calls;
  std::vector<SinkHit> sinks;

  friend bool operator==(const FunctionSym&, const FunctionSym&) = default;
};

/// Everything the cross-TU passes need from one file. Extraction is pure
/// (tokens only) and keyed by `hash`, so the gate caches it per file.
struct FileModel {
  std::string relpath;
  std::uint64_t hash = 0;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionSym> functions;
  std::vector<std::string> refs;  ///< sorted unique identifiers in the file
  Report file_report;             ///< per-file rule findings + budgets
  std::vector<detail::AllowSpan> allows;  ///< for model-rule suppression
  int det_ok_declared = 0;  ///< det-ok annotations written in the file

  friend bool operator==(const FileModel&, const FileModel&) = default;
};

/// FNV-1a 64-bit, the cache key. Stable across platforms by construction.
std::uint64_t content_hash(std::string_view text);

/// Extract the model for one file: per-file rule report + include edges +
/// symbol/call/sink index. Pure: no filesystem access.
FileModel extract_file_model(std::string_view relpath,
                             std::string_view content);

/// Serialize / parse a model cache (`pl-lint-cache/1`). The parser returns
/// nullopt on malformed input or a foreign schema; a stale or damaged cache
/// is simply ignored by callers (extraction re-runs).
std::string cache_json(const std::vector<FileModel>& models);
std::optional<std::vector<FileModel>> cache_from_json(std::string_view json);

// ---------------------------------------------------------------------------
// Architecture manifest (layers.txt).

/// Parsed `a < b < {c, d} < e` chain: rank per subsystem, lowest first.
/// Subsystems inside one `{...}` group share a rank and must stay mutually
/// independent.
struct LayerManifest {
  std::map<std::string, int> rank;
  std::vector<std::vector<std::string>> levels;  ///< rank -> members

  bool empty() const noexcept { return rank.empty(); }
};

/// Parse the manifest text. Grammar: one `<`-separated chain (line breaks
/// allowed), `#` comments, `{a, b}` groups. nullopt on malformed input or a
/// subsystem named twice.
std::optional<LayerManifest> parse_layers(std::string_view text);

/// Subsystem of a repo-relative path: second component for src/ files
/// ("src/util/date.hpp" -> "util"), "" otherwise.
std::string subsystem_of(std::string_view relpath);

// ---------------------------------------------------------------------------
// Whole-program analysis.

/// One taint chain: root function -> ... -> sink-bearing function, plus the
/// sink itself.
struct TaintWitness {
  std::string root;  ///< qname of the flagged src/ function
  std::string file;
  int line = 0;
  std::vector<std::string> path;  ///< qnames, root first
  SinkHit sink;
  std::string sink_file;

  friend bool operator==(const TaintWitness&, const TaintWitness&) = default;
};

/// One dead exported symbol.
struct DeadSymbol {
  std::string qname;
  std::string file;
  int line = 0;

  friend bool operator==(const DeadSymbol&, const DeadSymbol&) = default;
};

/// One resolved include edge between two scanned files.
struct GraphEdge {
  std::string from;
  std::string to;
  int line = 0;

  friend bool operator==(const GraphEdge&, const GraphEdge&) = default;
};

struct ProgramAnalysis {
  Report report;  ///< findings of the four model rules (before baseline)
  std::vector<GraphEdge> edges;
  std::vector<TaintWitness> taint;
  std::vector<DeadSymbol> dead;
  int functions = 0;  ///< symbol-index size (definitions)
  int calls = 0;      ///< resolved call-graph edges
  int det_ok_used = 0;  ///< det-ok annotations that cut a live taint path
};

/// Run the four cross-TU rules over the models. File-level allow()
/// suppressions are honoured (and counted into report.suppressions);
/// det-ok annotations are counted under the pseudo-rule "det-ok".
ProgramAnalysis analyze_program(const std::vector<FileModel>& models,
                                const LayerManifest& manifest);

// ---------------------------------------------------------------------------
// pl-graph/1 artifact.

/// Parsed pl-graph/1 document (what pl-statusz renders).
struct GraphDoc {
  std::vector<std::vector<std::string>> levels;
  std::vector<std::pair<std::string, std::string>> nodes;  ///< file, subsystem
  std::vector<GraphEdge> edges;
  std::vector<TaintWitness> taint;
  std::vector<DeadSymbol> dead;
  int functions = 0;
  int calls = 0;

  friend bool operator==(const GraphDoc&, const GraphDoc&) = default;
};

/// Serialize the program model as a `pl-graph/1` JSON document.
std::string graph_json(const ProgramAnalysis& analysis,
                       const LayerManifest& manifest,
                       const std::vector<FileModel>& models,
                       std::string_view root);

/// Parse a `pl-graph/1` document back. nullopt on malformed input or a
/// foreign schema.
std::optional<GraphDoc> graph_from_json(std::string_view json);

// ---------------------------------------------------------------------------
// Baseline ratchet.

/// One frozen finding bucket: `count` findings of `rule` in `file` are
/// tolerated, with a one-line human reason. The gate fails when the actual
/// count exceeds `count`; `--update-baseline` only ever lowers counts (and
/// drops entries that reach zero) — the ratchet.
struct BaselineEntry {
  std::string rule;
  std::string file;
  int count = 0;
  std::string reason;

  friend bool operator==(const BaselineEntry&, const BaselineEntry&) = default;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  int total() const noexcept {
    int n = 0;
    for (const BaselineEntry& entry : entries) n += entry.count;
    return n;
  }
};

std::string baseline_json(const Baseline& baseline);
std::optional<Baseline> baseline_from_json(std::string_view json);

/// Result of ratcheting a report against the baseline.
struct RatchetResult {
  std::vector<Finding> failures;  ///< findings not absorbed by the baseline
  int baselined = 0;              ///< findings absorbed
  Baseline shrunk;     ///< the baseline as --update-baseline would write it
  bool can_shrink = false;  ///< shrunk differs from the input baseline
};

RatchetResult apply_baseline(const Report& report, const Baseline& baseline);

}  // namespace pl::lint
