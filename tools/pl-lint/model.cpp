// Whole-program model: per-file extraction (include edges + a heuristic
// symbol/call/sink index recovered from the shared tokenizer) and the four
// cross-TU passes — layer-violation, include-cycle, determinism-taint,
// dead-public-api. Serialization of the model documents lives in
// model_io.cpp.
//
// The symbol scanner is deliberately heuristic, like the per-file rules: it
// tracks namespace/class/function scopes with a brace stack, recognizes
// `name(...)` declarators at namespace/class scope, and records calls and
// nondeterminism sinks inside bodies. It over-approximates (overload- and
// template-insensitive), which is the right direction for a taint pass:
// false edges are cut by a justified det-ok annotation, false silence would
// be a hole in the determinism contract.
#include "model.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace pl::lint {

namespace {

using detail::DetOk;
using detail::DrainSite;
using detail::Lexed;
using detail::Suppressions;
using detail::Token;
using detail::Tokens;
using detail::ends_with;
using detail::is_header;
using detail::is_ident;
using detail::is_punct;
using detail::non_std_qualified;
using detail::skip_parens;
using detail::starts_with;

// ---------------------------------------------------------------------------
// Identifier classes.

bool call_keyword(const std::string& s) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",       "for",      "while",    "switch",        "return",
      "sizeof",   "alignof",  "alignas",  "static_assert", "decltype",
      "noexcept", "new",      "delete",   "catch",         "throw",
      "typeid",   "co_await", "co_return", "co_yield",     "defined",
      "assert"};
  return kKeywords.contains(s);
}

bool rand_sink_ident(const std::string& s) {
  return s == "random_device" || s == "srand" || s == "rand_r" ||
         s == "drand48" || s == "lrand48" || s == "mrand48";
}

bool clock_sink_ident(const std::string& s) {
  return s == "system_clock" || s == "steady_clock" ||
         s == "high_resolution_clock" || s == "gettimeofday" ||
         s == "localtime" || s == "localtime_r" || s == "gmtime" ||
         s == "gmtime_r" || s == "clock_gettime";
}

// ---------------------------------------------------------------------------
// Include directives, read off the raw lines (the tokenizer's token stream
// is not preprocessor-aware).

std::vector<IncludeEdge> scan_includes(
    const std::vector<std::string>& lines) {
  std::vector<IncludeEdge> out;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string_view s = lines[n];
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
      s.remove_prefix(1);
    if (s.empty() || s.front() != '#') continue;
    s.remove_prefix(1);
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
      s.remove_prefix(1);
    if (!starts_with(s, "include")) continue;
    const std::size_t q1 = s.find('"');
    if (q1 == std::string_view::npos) continue;  // <system> include
    const std::size_t q2 = s.find('"', q1 + 1);
    if (q2 == std::string_view::npos) continue;
    out.push_back(IncludeEdge{std::string(s.substr(q1 + 1, q2 - q1 - 1)),
                              static_cast<int>(n + 1)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbol scanner.

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind;
  std::string name;       ///< "" for anonymous / other
  std::size_t fn = 0;     ///< index into out for kFunction scopes
};

struct Scanner {
  const Lexed& lexed;
  const Tokens& t;
  std::vector<FunctionSym> out;
  std::vector<Scope> stack;
  std::set<std::string> clock_aliases;
  int function_depth = 0;  ///< count of kFunction scopes on the stack

  explicit Scanner(const Lexed& lexed_in)
      : lexed(lexed_in), t(lexed_in.tokens) {}

  // --- helpers -----------------------------------------------------------

  void push(Scope::Kind kind, std::string name = {}, std::size_t fn = 0) {
    if (kind == Scope::Kind::kFunction) ++function_depth;
    stack.push_back(Scope{kind, std::move(name), fn});
  }

  void pop(std::size_t close_index) {
    if (stack.empty()) return;
    if (stack.back().kind == Scope::Kind::kFunction) {
      --function_depth;
      out[stack.back().fn].end_line = t[close_index].line;
    }
    stack.pop_back();
  }

  std::string innermost_class() const {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (it->kind == Scope::Kind::kClass) return it->name;
    return {};
  }

  FunctionSym* current_fn() {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (it->kind == Scope::Kind::kFunction) return &out[it->fn];
    return nullptr;
  }

  std::string scope_prefix() const {
    std::string prefix;
    for (const Scope& scope : stack) {
      if (scope.name.empty()) continue;
      if (scope.kind != Scope::Kind::kNamespace &&
          scope.kind != Scope::Kind::kClass)
        continue;
      if (!prefix.empty()) prefix += "::";
      prefix += scope.name;
    }
    return prefix;
  }

  /// Skip a preprocessor directive (including backslash continuations).
  std::size_t skip_preproc(std::size_t i) {
    int last = t[i].line;
    while (last <= static_cast<int>(lexed.raw_lines.size()) &&
           ends_with(lexed.raw_lines[static_cast<std::size_t>(last - 1)],
                     "\\"))
      ++last;
    std::size_t j = i;
    while (j < t.size() && t[j].line <= last) ++j;
    return j;
  }

  /// Skip a balanced `< ... >` starting at `open` (must be `<`).
  std::size_t skip_angles(std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (is_punct(t, j, "<")) ++depth;
      if (is_punct(t, j, ">") && --depth == 0) return j + 1;
      if (is_punct(t, j, ";")) return j;  // give up: not a template list
    }
    return t.size();
  }

  // --- clock aliases (prepass) -------------------------------------------

  /// `using Clock = std::chrono::steady_clock;` (or typedef) makes
  /// `Clock::now()` a clock sink in every body below.
  void collect_clock_aliases() {
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      const bool is_using = is_ident(t, i, "using") &&
                            t[i + 1].kind == Token::Kind::kIdent &&
                            is_punct(t, i + 2, "=");
      const bool is_typedef = is_ident(t, i, "typedef");
      if (!is_using && !is_typedef) continue;
      std::size_t end = i;
      bool clocky = false;
      while (end < t.size() && !is_punct(t, end, ";")) {
        if (t[end].kind == Token::Kind::kIdent &&
            clock_sink_ident(t[end].text))
          clocky = true;
        ++end;
      }
      if (!clocky) continue;
      if (is_using) {
        clock_aliases.insert(t[i + 1].text);
      } else if (end > i + 1 && t[end - 1].kind == Token::Kind::kIdent) {
        clock_aliases.insert(t[end - 1].text);
      }
      i = end;
    }
  }

  // --- sinks and calls inside bodies -------------------------------------

  void check_sink(FunctionSym& fn, std::size_t j) {
    const std::string& s = t[j].text;
    const int line = t[j].line;
    if (rand_sink_ident(s) && !non_std_qualified(t, j)) {
      fn.sinks.push_back(SinkHit{"rand", s, line});
      return;
    }
    if (s == "rand" && is_punct(t, j + 1, "(") && !non_std_qualified(t, j)) {
      fn.sinks.push_back(SinkHit{"rand", "rand", line});
      return;
    }
    if (clock_sink_ident(s) &&
        (!non_std_qualified(t, j) || (j >= 2 && is_ident(t, j - 2, "chrono")))) {
      fn.sinks.push_back(SinkHit{"clock", s, line});
      return;
    }
    if (s == "time" && is_punct(t, j + 1, "(") && !non_std_qualified(t, j) &&
        (is_punct(t, j + 2, ")") ||
         (is_ident(t, j + 2, "nullptr") && is_punct(t, j + 3, ")")) ||
         (j + 2 < t.size() && t[j + 2].text == "0" &&
          is_punct(t, j + 3, ")")))) {
      fn.sinks.push_back(SinkHit{"time", "time", line});
      return;
    }
    if (clock_aliases.contains(s) && is_punct(t, j + 1, "::") &&
        is_ident(t, j + 2, "now"))
      fn.sinks.push_back(SinkHit{"clock", s + "::now", line});
  }

  void check_call(FunctionSym& fn, std::size_t j) {
    if (!is_punct(t, j + 1, "(")) return;
    const std::string& name = t[j].text;
    if (call_keyword(name) || name == "operator") return;
    CallSite call;
    call.name = name;
    call.member = j > 0 && (is_punct(t, j - 1, ".") || is_punct(t, j - 1, "->"));
    std::size_t k = j;
    while (k >= 2 && is_punct(t, k - 1, "::") &&
           t[k - 2].kind == Token::Kind::kIdent)
      k -= 2;
    for (std::size_t q = k; q < j; q += 2) {
      if (!call.qual.empty()) call.qual += "::";
      call.qual += t[q].text;
    }
    fn.calls.push_back(std::move(call));
  }

  // --- function recognition at namespace / class scope -------------------

  struct Tail {
    enum class Kind { kBody, kDecl, kNone };
    Kind kind = Kind::kNone;
    std::size_t pos = 0;  ///< `{` for kBody, `;` for kDecl, resume for kNone
  };

  /// Classify what follows a parameter list: a function body, a pure
  /// declaration, or neither.
  Tail classify_tail(std::size_t j) {
    int angle = 0;
    while (j < t.size()) {
      if (is_punct(t, j, "(")) {
        j = skip_parens(t, j);  // noexcept(...), attribute args
        continue;
      }
      if (angle == 0 && is_punct(t, j, "{")) return {Tail::Kind::kBody, j};
      if (angle == 0 && is_punct(t, j, ";")) return {Tail::Kind::kDecl, j};
      if (angle == 0 && is_punct(t, j, ":")) return ctor_init_tail(j + 1);
      if (angle == 0 && is_punct(t, j, "=")) {
        // `= default;` / `= delete;` / `= 0;` — all body-less.
        while (j < t.size() && !is_punct(t, j, ";")) ++j;
        return j < t.size() ? Tail{Tail::Kind::kDecl, j}
                            : Tail{Tail::Kind::kNone, j};
      }
      if (angle == 0 && is_punct(t, j, ",")) return {Tail::Kind::kNone, j};
      if (is_punct(t, j, "<")) ++angle;
      if (is_punct(t, j, ">")) {
        if (angle == 0) return {Tail::Kind::kNone, j};
        --angle;
      }
      if (is_punct(t, j, ")") || is_punct(t, j, "}") || is_punct(t, j, "]"))
        return {Tail::Kind::kNone, j};
      ++j;
    }
    return {Tail::Kind::kNone, j};
  }

  /// Walk a constructor initializer list to its body brace. The body `{` is
  /// the one following a `)` or `}`; a `{` after an identifier is a member
  /// brace-init. A `;` first means this was no init list (e.g. a bitfield).
  Tail ctor_init_tail(std::size_t j) {
    while (j < t.size()) {
      if (is_punct(t, j, "(")) {
        j = skip_parens(t, j);
        continue;
      }
      if (is_punct(t, j, "{")) {
        if (j > 0 && (is_punct(t, j - 1, ")") || is_punct(t, j - 1, "}")))
          return {Tail::Kind::kBody, j};
        int depth = 0;
        while (j < t.size()) {
          if (is_punct(t, j, "{")) ++depth;
          if (is_punct(t, j, "}") && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
        continue;
      }
      if (is_punct(t, j, ";")) return {Tail::Kind::kNone, j};
      ++j;
    }
    return {Tail::Kind::kNone, j};
  }

  /// Is the identifier at `p` (immediately before a `(`) a plausible
  /// function declarator? Fills name ("~"-prefixed for destructors) and the
  /// explicit `::` qualifier chain before it.
  bool candidate_name(std::size_t p, std::size_t stmt_begin,
                      std::string* name, std::vector<std::string>* quals) {
    std::size_t k = p;
    bool dtor = false;
    if (k > stmt_begin && is_punct(t, k - 1, "~")) {
      dtor = true;
      --k;
    }
    std::size_t chain = k;
    while (chain >= stmt_begin + 2 && is_punct(t, chain - 1, "::") &&
           t[chain - 2].kind == Token::Kind::kIdent)
      chain -= 2;
    for (std::size_t q = chain; q + 1 < k; q += 2)
      quals->push_back(t[q].text);
    *name = (dtor ? "~" : "") + t[p].text;
    const bool ctor_like =
        dtor || (!quals->empty() && quals->back() == t[p].text) ||
        (quals->empty() && innermost_class() == t[p].text);
    if (ctor_like) return true;
    if (chain <= stmt_begin) return false;  // nothing before the name
    const Token& prev = t[chain - 1];
    if (prev.kind == Token::Kind::kIdent)
      return !call_keyword(prev.text) && prev.text != "return" &&
             prev.text != "else" && prev.text != "case" &&
             prev.text != "goto";
    return prev.kind == Token::Kind::kPunct &&
           (prev.text == ">" || prev.text == "*" || prev.text == "&");
  }

  void record_function(std::string name, std::vector<std::string> quals,
                       int line, bool is_definition, std::size_t body) {
    FunctionSym fn;
    fn.name = name;
    std::string qname = scope_prefix();
    for (const std::string& q : quals) {
      if (!qname.empty()) qname += "::";
      qname += q;
    }
    if (!qname.empty()) qname += "::";
    fn.qname = qname + name;
    // Enclosing class: the scope stack when defined inline; the last
    // qualifier for out-of-line members (repo convention: namespaces are
    // lower_snake, classes are CamelCase — a heuristic, like the rest).
    const std::string scope_class = innermost_class();
    if (!scope_class.empty()) {
      fn.klass = scope_class;
    } else if (!quals.empty()) {
      const std::string& last = quals.back();
      const bool ctor_dtor = last == name || ("~" + last) == name;
      if (ctor_dtor ||
          (!last.empty() && std::isupper(static_cast<unsigned char>(last[0]))))
        fn.klass = last;
    }
    fn.line = line;
    fn.end_line = line;
    fn.is_definition = is_definition;
    out.push_back(std::move(fn));
    if (is_definition)
      push(Scope::Kind::kFunction, {}, out.size() - 1);
    (void)body;
  }

  /// Scan a token range (constructor init list, trailing specifiers) for
  /// calls and sinks on behalf of a just-recorded definition. Body braces
  /// are not entered here; [begin, end) stops at the body `{`.
  void scan_range(FunctionSym& fn, std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end && j < t.size(); ++j)
      if (t[j].kind == Token::Kind::kIdent) {
        check_sink(fn, j);
        check_call(fn, j);
      }
  }

  // --- drivers ------------------------------------------------------------

  /// One token in body mode (somewhere inside a function definition).
  std::size_t body_token(std::size_t j) {
    if (is_punct(t, j, "#")) return skip_preproc(j);
    if (is_punct(t, j, "{")) {
      push(Scope::Kind::kOther);
      return j + 1;
    }
    if (is_punct(t, j, "}")) {
      pop(j);
      return j + 1;
    }
    if (t[j].kind == Token::Kind::kIdent) {
      if (FunctionSym* fn = current_fn()) {
        check_sink(*fn, j);
        check_call(*fn, j);
      }
    }
    return j + 1;
  }

  /// One construct at namespace / class scope.
  std::size_t declaration(std::size_t i) {
    if (is_punct(t, i, "#")) return skip_preproc(i);
    if (is_punct(t, i, "}")) {
      pop(i);
      return i + 1;
    }
    if (is_punct(t, i, "{")) {
      push(Scope::Kind::kOther);
      return i + 1;
    }
    if (is_punct(t, i, ";")) return i + 1;
    if (is_ident(t, i, "template") && is_punct(t, i + 1, "<"))
      return skip_angles(i + 1);
    if (is_ident(t, i, "namespace")) {
      std::string name;
      std::size_t j = i + 1;
      while (j < t.size() && t[j].kind == Token::Kind::kIdent) {
        if (!name.empty()) name += "::";
        name += t[j].text;
        if (is_punct(t, j + 1, "::"))
          j += 2;
        else {
          ++j;
          break;
        }
      }
      if (is_punct(t, j, "{")) {
        push(Scope::Kind::kNamespace, std::move(name));
        return j + 1;
      }
      while (j < t.size() && !is_punct(t, j, ";")) ++j;  // namespace alias
      return j + 1;
    }
    if (is_ident(t, i, "enum")) {
      std::size_t j = i + 1;
      while (j < t.size() && !is_punct(t, j, "{") && !is_punct(t, j, ";"))
        ++j;
      if (is_punct(t, j, "{")) {
        push(Scope::Kind::kOther);
        return j + 1;
      }
      return j + 1;
    }
    if (is_ident(t, i, "class") || is_ident(t, i, "struct") ||
        is_ident(t, i, "union")) {
      std::string name;
      std::size_t j = i + 1;
      while (j < t.size() && name.empty()) {
        if (t[j].kind == Token::Kind::kIdent &&
            t[j].text != "alignas") {
          name = t[j].text;
          ++j;
          break;
        }
        if (is_punct(t, j, "(")) {
          j = skip_parens(t, j);
          continue;
        }
        ++j;
      }
      // Scan to the class body `{` or the `;` of a forward declaration.
      int angle = 0;
      while (j < t.size()) {
        if (is_punct(t, j, "(")) {
          j = skip_parens(t, j);
          continue;
        }
        if (is_punct(t, j, "<")) ++angle;
        if (is_punct(t, j, ">") && angle > 0) --angle;
        if (angle == 0 && is_punct(t, j, "{")) {
          push(Scope::Kind::kClass, std::move(name));
          return j + 1;
        }
        if (angle == 0 && (is_punct(t, j, ";") || is_punct(t, j, "=")))
          return j;  // fwd decl / `struct X v = ...`
        ++j;
      }
      return j;
    }
    if (is_ident(t, i, "using") || is_ident(t, i, "typedef")) {
      std::size_t j = i;
      while (j < t.size() && !is_punct(t, j, ";")) ++j;
      return j + 1;
    }
    return statement(i);
  }

  /// A generic statement at namespace / class scope: look for a function
  /// declarator `name ( params ) ...` and otherwise skip to the `;`.
  std::size_t statement(std::size_t i) {
    bool saw_assign = false;
    std::size_t j = i;
    while (j < t.size()) {
      if (is_punct(t, j, "#")) {
        j = skip_preproc(j);
        continue;
      }
      if (is_punct(t, j, ";")) return j + 1;
      if (is_punct(t, j, "}")) return j;  // caller pops
      if (is_punct(t, j, "=")) {
        saw_assign = true;
        ++j;
        continue;
      }
      if (is_punct(t, j, "{")) {
        push(Scope::Kind::kOther);  // brace initializer / unrecognized block
        return j + 1;
      }
      if (is_ident(t, j, "operator")) {
        // `operator<<(`, `operator()(`, `operator bool(` ...
        std::string name = "operator";
        std::size_t k = j + 1;
        if (is_punct(t, k, "(") && is_punct(t, k + 1, ")") &&
            is_punct(t, k + 2, "(")) {
          name += "()";
          k += 2;
        } else {
          while (k < t.size() && !is_punct(t, k, "(")) {
            name += t[k].text;
            ++k;
          }
        }
        if (k >= t.size() || !is_punct(t, k, "(")) return k;
        const std::size_t after = skip_parens(t, k);
        const Tail tail = classify_tail(after);
        if (tail.kind == Tail::Kind::kBody) {
          record_function(std::move(name), {}, t[j].line,
                          /*is_definition=*/true, tail.pos);
          scan_range(out[stack.back().fn], after, tail.pos);
          return tail.pos + 1;
        }
        if (tail.kind == Tail::Kind::kDecl) {
          record_function(std::move(name), {}, t[j].line,
                          /*is_definition=*/false, 0);
          return tail.pos + 1;
        }
        j = tail.pos;
        continue;
      }
      if (is_punct(t, j, "(")) {
        std::string name;
        std::vector<std::string> quals;
        const bool cand = !saw_assign && j > i &&
                          t[j - 1].kind == Token::Kind::kIdent &&
                          !call_keyword(t[j - 1].text) &&
                          candidate_name(j - 1, i, &name, &quals);
        const std::size_t after = skip_parens(t, j);
        if (cand) {
          const Tail tail = classify_tail(after);
          if (tail.kind == Tail::Kind::kBody) {
            record_function(std::move(name), std::move(quals), t[j - 1].line,
                            /*is_definition=*/true, tail.pos);
            scan_range(out[stack.back().fn], after, tail.pos);
            return tail.pos + 1;
          }
          if (tail.kind == Tail::Kind::kDecl) {
            record_function(std::move(name), std::move(quals), t[j - 1].line,
                            /*is_definition=*/false, 0);
            return tail.pos + 1;
          }
          j = tail.pos == after ? after : tail.pos;
          continue;
        }
        j = after;
        continue;
      }
      ++j;
    }
    return j;
  }

  void run() {
    collect_clock_aliases();
    std::size_t i = 0;
    while (i < t.size()) {
      const std::size_t next =
          function_depth > 0 ? body_token(i) : declaration(i);
      i = next > i ? next : i + 1;  // never stall
    }
    // Unbalanced input (shouldn't happen): close whatever is left.
    const int last_line =
        t.empty() ? 1 : t.back().line;
    for (const Scope& scope : stack)
      if (scope.kind == Scope::Kind::kFunction &&
          out[scope.fn].end_line < last_line)
        out[scope.fn].end_line = last_line;
  }
};

/// Innermost definition whose [line, end_line] covers `line`.
FunctionSym* enclosing_function(std::vector<FunctionSym>& fns, int line) {
  FunctionSym* best = nullptr;
  for (FunctionSym& fn : fns) {
    if (!fn.is_definition || line < fn.line || line > fn.end_line) continue;
    if (!best || fn.line > best->line) best = &fn;
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Extraction.

std::uint64_t content_hash(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

FileModel extract_file_model(std::string_view relpath,
                             std::string_view content) {
  FileModel model;
  model.relpath = std::string(relpath);
  model.hash = content_hash(content);

  const Lexed lexed = detail::lex(content);
  const Suppressions supp = detail::parse_suppressions(lexed.comments);
  model.file_report = detail::run_file_rules(relpath, lexed, supp);
  model.includes = scan_includes(lexed.raw_lines);
  model.allows = supp.spans;
  model.det_ok_declared = static_cast<int>(supp.det_ok.size());

  Scanner scanner(lexed);
  scanner.run();
  model.functions = std::move(scanner.out);

  // Unordered-drain sinks: every drain site (allow()'d or not — the per-file
  // suppression silences the diagnostic, not the physics) taints its
  // enclosing function.
  for (const DrainSite& site : detail::find_unordered_drains(lexed.tokens))
    if (FunctionSym* fn = enclosing_function(model.functions, site.line))
      fn->sinks.push_back(
          SinkHit{"unordered-drain", site.name, site.line});

  // det-ok annotations attach to the function whose body contains the
  // comment, or to the definition that starts on the first code line after
  // the comment block (small tolerance for multi-line signatures).
  for (const DetOk& det : supp.det_ok) {
    FunctionSym* target = enclosing_function(model.functions, det.line);
    if (!target) {
      for (FunctionSym& fn : model.functions) {
        if (fn.line < det.through || fn.line > det.through + 3) continue;
        if (!target || fn.line < target->line) target = &fn;
      }
    }
    if (target) {
      target->det_ok = true;
      target->det_ok_reason = det.reason;
    }
  }

  std::set<std::string> refs;
  for (const Token& token : lexed.tokens)
    if (token.kind == Token::Kind::kIdent) refs.insert(token.text);
  model.refs.assign(refs.begin(), refs.end());
  return model;
}

// ---------------------------------------------------------------------------
// Architecture manifest.

std::optional<LayerManifest> parse_layers(std::string_view text) {
  // Strip comments, join lines.
  std::string flat;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    flat += std::string(line);
    flat += ' ';
    if (eol == text.size()) break;
    pos = eol + 1;
  }

  LayerManifest manifest;
  const auto trim = [](std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
      s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
      s.remove_suffix(1);
    return s;
  };
  std::string_view rest = flat;
  bool any = false;
  while (true) {
    const std::size_t sep = rest.find('<');
    std::string_view segment = trim(rest.substr(0, sep));
    if (!segment.empty()) {
      any = true;
      std::vector<std::string> level;
      if (segment.front() == '{') {
        if (segment.back() != '}') return std::nullopt;
        std::string_view inner = segment.substr(1, segment.size() - 2);
        while (true) {
          const std::size_t comma = inner.find(',');
          const std::string_view name = trim(inner.substr(0, comma));
          if (!name.empty()) level.emplace_back(name);
          if (comma == std::string_view::npos) break;
          inner.remove_prefix(comma + 1);
        }
      } else {
        if (segment.find_first_of(" \t{},") != std::string_view::npos)
          return std::nullopt;
        level.emplace_back(segment);
      }
      if (level.empty()) return std::nullopt;
      const int rank = static_cast<int>(manifest.levels.size());
      for (const std::string& name : level) {
        if (manifest.rank.contains(name)) return std::nullopt;  // duplicate
        manifest.rank.emplace(name, rank);
      }
      manifest.levels.push_back(std::move(level));
    } else if (sep != std::string_view::npos) {
      return std::nullopt;  // empty segment between two '<'
    }
    if (sep == std::string_view::npos) break;
    rest.remove_prefix(sep + 1);
  }
  if (!any) return std::nullopt;
  return manifest;
}

std::string subsystem_of(std::string_view relpath) {
  if (!starts_with(relpath, "src/")) return {};
  const std::string_view rest = relpath.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

// ---------------------------------------------------------------------------
// Whole-program analysis.

namespace {

/// Normalize "a/b/../c" and "./" segments.
std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = std::min(path.find('/', pos), path.size());
    const std::string_view part = path.substr(pos, slash - pos);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == path.size()) break;
    pos = slash + 1;
  }
  std::string out;
  for (const std::string_view part : parts) {
    if (!out.empty()) out += '/';
    out += std::string(part);
  }
  return out;
}

struct Flagger {
  ProgramAnalysis& analysis;
  const std::map<std::string, const FileModel*>& by_path;

  void operator()(const std::string& rule, const std::string& file, int line,
                  std::string message) const {
    const auto it = by_path.find(file);
    if (it != by_path.end()) {
      for (const detail::AllowSpan& span : it->second->allows) {
        if (span.rule != rule) continue;
        if (span.file_wide || (line >= span.from && line <= span.to)) {
          ++analysis.report.suppressions[rule].used;
          return;
        }
      }
    }
    analysis.report.findings.push_back(
        Finding{file, line, rule, std::move(message)});
  }
};

}  // namespace

ProgramAnalysis analyze_program(const std::vector<FileModel>& models,
                                const LayerManifest& manifest) {
  ProgramAnalysis analysis;
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& model : models) by_path.emplace(model.relpath, &model);
  const Flagger flag{analysis, by_path};

  // --- resolve include edges ---------------------------------------------
  for (const FileModel& model : models) {
    const std::size_t slash = model.relpath.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : model.relpath.substr(0, slash);
    for (const IncludeEdge& inc : model.includes) {
      std::string resolved;
      for (const std::string& candidate :
           {normalize_path(dir + "/" + inc.target), "src/" + inc.target,
            inc.target, "tests/" + inc.target, "tools/" + inc.target}) {
        if (by_path.contains(candidate)) {
          resolved = candidate;
          break;
        }
      }
      if (!resolved.empty() && resolved != model.relpath)
        analysis.edges.push_back(
            GraphEdge{model.relpath, resolved, inc.line});
    }
  }

  // --- layer-violation ----------------------------------------------------
  if (!manifest.empty()) {
    for (const GraphEdge& edge : analysis.edges) {
      const std::string from = subsystem_of(edge.from);
      const std::string to = subsystem_of(edge.to);
      if (from.empty() || to.empty() || from == to) continue;
      const auto rank_from = manifest.rank.find(from);
      const auto rank_to = manifest.rank.find(to);
      if (rank_from == manifest.rank.end() || rank_to == manifest.rank.end()) {
        const std::string missing =
            rank_from == manifest.rank.end() ? from : to;
        flag("layer-violation", edge.from, edge.line,
             "subsystem '" + missing +
                 "' is not listed in tools/pl-lint/layers.txt; add it to the "
                 "manifest at its architectural rank");
        continue;
      }
      if (rank_to->second >= rank_from->second)
        flag("layer-violation", edge.from, edge.line,
             "src/" + from + " (layer " +
                 std::to_string(rank_from->second) + ") must not include src/" +
                 to + " (layer " + std::to_string(rank_to->second) +
                 "); dependencies point down the layers.txt DAG only");
    }
  }

  // --- include-cycle ------------------------------------------------------
  {
    std::map<std::string, std::vector<const GraphEdge*>> adjacency;
    for (const GraphEdge& edge : analysis.edges)
      adjacency[edge.from].push_back(&edge);
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> path;
    std::set<std::vector<std::string>> seen_cycles;

    // Recursive DFS via explicit stack: (node, next-edge-index).
    for (const FileModel& model : models) {
      if (color[model.relpath] != 0) continue;
      std::vector<std::pair<std::string, std::size_t>> dfs;
      dfs.emplace_back(model.relpath, 0);
      color[model.relpath] = 1;
      path.push_back(model.relpath);
      while (!dfs.empty()) {
        auto& [node, next] = dfs.back();
        const auto it = adjacency.find(node);
        if (it == adjacency.end() || next >= it->second.size()) {
          color[node] = 2;
          path.pop_back();
          dfs.pop_back();
          continue;
        }
        const GraphEdge* edge = it->second[next++];
        const int target_color = color[edge->to];
        if (target_color == 1) {
          // Back edge: the cycle is the path suffix from edge->to.
          const auto at = std::find(path.begin(), path.end(), edge->to);
          std::vector<std::string> cycle(at, path.end());
          // Canonical rotation: start at the smallest member.
          const auto smallest =
              std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          if (seen_cycles.insert(cycle).second) {
            std::string chain;
            for (const std::string& hop : cycle) chain += hop + " -> ";
            chain += cycle.front();
            // Anchor the finding at the smallest member's outgoing edge.
            const std::string& anchor = cycle.front();
            const std::string& succ =
                cycle.size() > 1 ? cycle[1] : cycle.front();
            int line = 1;
            for (const GraphEdge& candidate : analysis.edges)
              if (candidate.from == anchor && candidate.to == succ) {
                line = candidate.line;
                break;
              }
            flag("include-cycle", anchor, line,
                 "include cycle: " + chain);
          }
        } else if (target_color == 0) {
          color[edge->to] = 1;
          path.push_back(edge->to);
          dfs.emplace_back(edge->to, 0);
        }
      }
    }
  }

  // --- call graph + determinism taint ------------------------------------
  {
    struct Def {
      const FileModel* model;
      const FunctionSym* fn;
      std::size_t id;
    };
    std::vector<Def> defs;
    std::map<std::string, std::vector<std::size_t>> by_name;
    for (const FileModel& model : models)
      for (const FunctionSym& fn : model.functions)
        if (fn.is_definition) {
          by_name[fn.name].push_back(defs.size());
          defs.push_back(Def{&model, &fn, defs.size()});
        }
    analysis.functions = static_cast<int>(defs.size());

    // Overload-insensitive resolution. Bounded on purpose: a member call
    // resolves to methods of the caller's own class or an explicitly
    // qualified one; an unqualified free call resolves to free functions
    // (plus same-class methods — implicit this).
    std::vector<std::vector<std::size_t>> callees(defs.size());
    for (const Def& def : defs) {
      std::set<std::size_t> targets;
      for (const CallSite& call : def.fn->calls) {
        if (call.qual == "std" || starts_with(call.qual, "std::")) continue;
        const auto it = by_name.find(call.name);
        if (it == by_name.end()) continue;
        const std::string qual_last =
            call.qual.empty()
                ? std::string()
                : call.qual.substr(call.qual.rfind(':') == std::string::npos
                                       ? 0
                                       : call.qual.rfind(':') + 1);
        const bool caller_in_src = starts_with(def.model->relpath, "src/");
        for (const std::size_t target : it->second) {
          const FunctionSym& callee = *defs[target].fn;
          if (target == def.id) continue;
          // Production code cannot call into bench/tests/tools; an
          // unqualified name shared with one of those files is a different
          // function, not an edge.
          if (caller_in_src &&
              !starts_with(defs[target].model->relpath, "src/"))
            continue;
          if (!qual_last.empty()) {
            // Explicit qualifier: must appear in the callee's qname.
            if (defs[target].fn->qname.find(qual_last) == std::string::npos)
              continue;
          } else if (call.member) {
            if (callee.klass.empty()) continue;
          } else if (!callee.klass.empty() &&
                     callee.klass != def.fn->klass) {
            continue;  // unqualified call can't hit a foreign method
          }
          targets.insert(target);
        }
      }
      callees[def.id].assign(targets.begin(), targets.end());
      analysis.calls += static_cast<int>(callees[def.id].size());
    }

    std::vector<std::vector<std::size_t>> callers(defs.size());
    for (const Def& def : defs)
      for (const std::size_t target : callees[def.id])
        callers[target].push_back(def.id);

    // Fixed point: tainted(f) = !det_ok(f) && (sink(f) || ∃ tainted callee).
    std::vector<char> tainted(defs.size(), 0);
    std::deque<std::size_t> worklist;
    for (const Def& def : defs)
      if (!def.fn->sinks.empty() && !def.fn->det_ok) {
        tainted[def.id] = 1;
        worklist.push_back(def.id);
      }
    while (!worklist.empty()) {
      const std::size_t id = worklist.front();
      worklist.pop_front();
      for (const std::size_t caller : callers[id])
        if (!tainted[caller] && !defs[caller].fn->det_ok) {
          tainted[caller] = 1;
          worklist.push_back(caller);
        }
    }

    for (const Def& def : defs) {
      if (!def.fn->det_ok) continue;
      bool cuts = !def.fn->sinks.empty();
      for (const std::size_t target : callees[def.id])
        cuts = cuts || tainted[target];
      if (cuts) ++analysis.det_ok_used;
    }

    // Witness path per tainted src/ function: BFS to the nearest function
    // carrying its own sink, through tainted nodes only.
    for (const Def& def : defs) {
      if (!tainted[def.id] || !starts_with(def.model->relpath, "src/"))
        continue;
      std::map<std::size_t, std::size_t> parent;
      std::deque<std::size_t> bfs{def.id};
      parent.emplace(def.id, def.id);
      std::size_t sink_fn = defs.size();
      while (!bfs.empty() && sink_fn == defs.size()) {
        const std::size_t id = bfs.front();
        bfs.pop_front();
        if (!defs[id].fn->sinks.empty()) {
          sink_fn = id;
          break;
        }
        for (const std::size_t target : callees[id])
          if (tainted[target] && parent.emplace(target, id).second)
            bfs.push_back(target);
      }
      if (sink_fn == defs.size()) continue;  // shouldn't happen
      TaintWitness witness;
      witness.root = def.fn->qname;
      witness.file = def.model->relpath;
      witness.line = def.fn->line;
      for (std::size_t id = sink_fn;; id = parent.at(id)) {
        witness.path.push_back(defs[id].fn->qname);
        if (id == def.id) break;
      }
      std::reverse(witness.path.begin(), witness.path.end());
      witness.sink = defs[sink_fn].fn->sinks.front();
      witness.sink_file = defs[sink_fn].model->relpath;

      std::string chain;
      for (const std::string& hop : witness.path) {
        if (!chain.empty()) chain += " -> ";
        chain += hop;
      }
      flag("determinism-taint", witness.file, witness.line,
           "'" + witness.root + "' reaches nondeterminism sink '" +
               witness.sink.token + "' (" + witness.sink.kind + ") at " +
               witness.sink_file + ":" + std::to_string(witness.sink.line) +
               " via " + chain +
               "; annotate the boundary with // pl-lint: det-ok(reason) or "
               "remove the sink");
      analysis.taint.push_back(std::move(witness));
    }
  }

  // --- dead-public-api ----------------------------------------------------
  {
    // Files that declare or define a function of a given name: a reference
    // from one of those is the symbol talking about itself, not a use.
    std::map<std::string, std::set<std::string>> definers;
    for (const FileModel& model : models)
      for (const FunctionSym& fn : model.functions)
        definers[fn.name].insert(model.relpath);

    for (const FileModel& model : models) {
      if (!starts_with(model.relpath, "src/") || !is_header(model.relpath))
        continue;
      std::set<std::string> reported;
      for (const FunctionSym& fn : model.functions) {
        if (!fn.klass.empty()) continue;  // methods: out of scope
        if (fn.name == "main" || starts_with(fn.name, "operator") ||
            starts_with(fn.name, "~"))
          continue;
        // detail/internal namespaces are implementation, not exported API.
        if (fn.qname.find("detail::") != std::string::npos ||
            fn.qname.find("internal::") != std::string::npos)
          continue;
        if (!reported.insert(fn.qname).second) continue;
        const std::set<std::string>& own = definers[fn.name];
        bool alive = false;
        for (const FileModel& other : models) {
          if (other.relpath == model.relpath) continue;
          if (own.contains(other.relpath)) continue;
          if (std::binary_search(other.refs.begin(), other.refs.end(),
                                 fn.name)) {
            alive = true;
            break;
          }
        }
        if (alive) continue;
        flag("dead-public-api", model.relpath, fn.line,
             "free function '" + fn.qname +
                 "' is exported by this header but referenced by no other "
                 "translation unit; remove it or record a baseline entry "
                 "with a reason");
        analysis.dead.push_back(
            DeadSymbol{fn.qname, model.relpath, fn.line});
      }
    }
  }

  return analysis;
}

// ---------------------------------------------------------------------------
// Baseline ratchet.

RatchetResult apply_baseline(const Report& report, const Baseline& baseline) {
  RatchetResult result;
  std::map<std::pair<std::string, std::string>, int> allowance;
  std::map<std::pair<std::string, std::string>, int> actual;
  for (const BaselineEntry& entry : baseline.entries)
    allowance[{entry.rule, entry.file}] += entry.count;
  for (const Finding& finding : report.findings) {
    const std::pair<std::string, std::string> key{finding.rule, finding.file};
    ++actual[key];
    auto it = allowance.find(key);
    if (it != allowance.end() && it->second > 0) {
      --it->second;
      ++result.baselined;
    } else {
      result.failures.push_back(finding);
    }
  }
  for (const BaselineEntry& entry : baseline.entries) {
    const auto it = actual.find({entry.rule, entry.file});
    const int now = it == actual.end() ? 0 : it->second;
    const int kept = std::min(entry.count, now);
    if (kept != entry.count) result.can_shrink = true;
    if (kept > 0)
      result.shrunk.entries.push_back(
          BaselineEntry{entry.rule, entry.file, kept, entry.reason});
  }
  return result;
}

}  // namespace pl::lint
