#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <set>
#include <utility>

#include "bench/common.hpp"
#include "internal.hpp"

namespace pl::lint {

namespace detail {

// ---------------------------------------------------------------------------
// Tokenizer.

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool is_header(std::string_view relpath) {
  return ends_with(relpath, ".hpp") || ends_with(relpath, ".h");
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexed lex(std::string_view text) {
  Lexed out;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i)
      if (i == text.size() || text[i] == '\n') {
        out.raw_lines.emplace_back(text.substr(start, i - start));
        start = i + 1;
      }
  }

  int line = 1;
  std::size_t i = 0;
  const auto push = [&](Token::Kind kind, std::string token_text) {
    out.tokens.push_back(Token{kind, std::move(token_text), line});
  };

  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t end = text.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? text.size()
                                                             : end;
      out.comments.push_back(
          Comment{std::string(text.substr(i + 2, stop - i - 2)), line});
      i = stop;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t body_end =
          end == std::string_view::npos ? text.size() : end;
      const std::size_t stop =
          end == std::string_view::npos ? text.size() : end + 2;
      std::string body(text.substr(i + 2, body_end - i - 2));
      line += static_cast<int>(
          std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                     text.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      out.comments.push_back(Comment{std::move(body), line});
      i = stop;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < text.size() && text[i + 1] == '"' &&
        (out.tokens.empty() || out.tokens.back().text != "::")) {
      const std::size_t open = text.find('(', i + 2);
      if (open != std::string_view::npos) {
        const std::string delim(text.substr(i + 2, open - i - 2));
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = text.find(closer, open + 1);
        const std::size_t stop =
            end == std::string_view::npos ? text.size()
                                          : end + closer.size();
        push(Token::Kind::kString,
             std::string(text.substr(open + 1, end == std::string_view::npos
                                                   ? stop - open - 1
                                                   : end - open - 1)));
        line += static_cast<int>(std::count(
            text.begin() + static_cast<std::ptrdiff_t>(i),
            text.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
        i = stop;
        continue;
      }
    }
    // String literal.
    if (c == '"') {
      std::string content;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) {
          content += text[i];
          content += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;
        content += text[i];
        ++i;
      }
      ++i;  // closing quote
      push(Token::Kind::kString, std::move(content));
      continue;
    }
    // Character literal (also catches digit separators poorly — fine).
    if (c == '\'' && !out.tokens.empty() &&
        out.tokens.back().kind != Token::Kind::kNumber) {
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != '\'') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      push(Token::Kind::kChar, std::string(text.substr(i + 1, j - i - 1)));
      i = j + 1;
      continue;
    }
    if (c == '\'') {  // digit separator inside a number: skip
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < text.size() && ident_char(text[j])) ++j;
      push(Token::Kind::kIdent, std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < text.size() &&
             (ident_char(text[j]) || text[j] == '.' ||
              ((text[j] == '+' || text[j] == '-') &&
               (text[j - 1] == 'e' || text[j - 1] == 'E'))))
        ++j;
      push(Token::Kind::kNumber, std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    // Punctuation: keep `::` and `->` joined, everything else single-char.
    if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
      push(Token::Kind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      push(Token::Kind::kPunct, "->");
      i += 2;
      continue;
    }
    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// pl-lint: allow(rule-a, rule-b)` silences findings from
// the comment's own line through the first code line after the comment block
// (so a multi-line justification still covers the statement it precedes);
// `allow-file(...)` covers the file; `det-ok(reason)` annotates the
// enclosing function for the determinism-taint pass.

namespace {

void parse_directive(std::string_view body, bool file_wide, int comment_line,
                     int through_line, Suppressions& out) {
  const std::size_t open = body.find('(');
  const std::size_t close = body.find(')', open);
  if (open == std::string_view::npos || close == std::string_view::npos)
    return;
  std::string_view list = body.substr(open + 1, close - open - 1);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view id = list.substr(0, comma);
    while (!id.empty() && std::isspace(static_cast<unsigned char>(id.front())))
      id.remove_prefix(1);
    while (!id.empty() && std::isspace(static_cast<unsigned char>(id.back())))
      id.remove_suffix(1);
    if (!id.empty()) {
      ++out.budget[std::string(id)].declared;
      out.spans.push_back(AllowSpan{std::string(id), comment_line,
                                    through_line, file_wide});
      if (file_wide) {
        out.file_wide.insert(std::string(id));
      } else {
        for (int line = comment_line; line <= through_line; ++line)
          out.by_line[line].insert(std::string(id));
      }
    }
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

}  // namespace

Suppressions parse_suppressions(const std::vector<Comment>& comments) {
  Suppressions out;
  std::set<int> comment_lines;
  for (const Comment& comment : comments) comment_lines.insert(comment.line);
  for (const Comment& comment : comments) {
    const std::size_t at = comment.text.find("pl-lint:");
    if (at == std::string::npos) continue;
    // Extend through the contiguous comment block so the justification can
    // span lines and the suppression still reaches the code underneath.
    int through = comment.line;
    while (comment_lines.contains(through + 1)) ++through;
    ++through;  // the first code line after the block
    const std::string_view rest =
        std::string_view(comment.text).substr(at + 8);
    const std::size_t det_ok = rest.find("det-ok");
    if (det_ok != std::string_view::npos) {
      const std::size_t open = rest.find('(', det_ok);
      const std::size_t close = rest.find(')', open);
      std::string reason;
      if (open != std::string_view::npos && close != std::string_view::npos)
        reason = std::string(rest.substr(open + 1, close - open - 1));
      out.det_ok.push_back(DetOk{comment.line, through, std::move(reason)});
      continue;
    }
    const std::size_t allow_file = rest.find("allow-file");
    if (allow_file != std::string_view::npos) {
      parse_directive(rest.substr(allow_file), /*file_wide=*/true,
                      comment.line, through, out);
      continue;
    }
    const std::size_t allow = rest.find("allow");
    if (allow != std::string_view::npos)
      parse_directive(rest.substr(allow), /*file_wide=*/false, comment.line,
                      through, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared token helpers.

bool is_ident(const Tokens& tokens, std::size_t i, std::string_view text) {
  return i < tokens.size() && tokens[i].kind == Token::Kind::kIdent &&
         tokens[i].text == text;
}

bool is_punct(const Tokens& tokens, std::size_t i, std::string_view text) {
  return i < tokens.size() && tokens[i].kind == Token::Kind::kPunct &&
         tokens[i].text == text;
}

bool non_std_qualified(const Tokens& tokens, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(tokens, i - 1, ".") || is_punct(tokens, i - 1, "->"))
    return true;
  if (is_punct(tokens, i - 1, "::"))
    return !(i >= 2 && is_ident(tokens, i - 2, "std"));
  return false;
}

std::size_t skip_parens(const Tokens& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens, i, "(")) ++depth;
    if (is_punct(tokens, i, ")") && --depth == 0) return i + 1;
  }
  return tokens.size();
}

/// Index just past the statement starting at `i`: a balanced `{...}` block,
/// or everything up to and including the next top-level `;`.
std::size_t skip_statement(const Tokens& tokens, std::size_t i) {
  if (is_punct(tokens, i, "{")) {
    int depth = 0;
    for (std::size_t j = i; j < tokens.size(); ++j) {
      if (is_punct(tokens, j, "{")) ++depth;
      if (is_punct(tokens, j, "}") && --depth == 0) return j + 1;
    }
    return tokens.size();
  }
  int parens = 0;
  int braces = 0;
  for (std::size_t j = i; j < tokens.size(); ++j) {
    if (tokens[j].kind == Token::Kind::kPunct) {
      const std::string& p = tokens[j].text;
      if (p == "(" || p == "[") ++parens;
      if (p == ")" || p == "]") --parens;
      if (p == "{") ++braces;
      if (p == "}") --braces;
      if (p == ";" && parens <= 0 && braces <= 0) return j + 1;
    }
  }
  return tokens.size();
}

bool range_contains_ident(const Tokens& tokens, std::size_t begin,
                          std::size_t end, std::string_view text) {
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i)
    if (tokens[i].kind == Token::Kind::kIdent && tokens[i].text == text)
      return true;
  return false;
}

// Unordered-drain detection: iteration over an unordered container declared
// in this translation unit. Hash-table iteration order is
// implementation-defined, so any loop over one that feeds an exporter,
// report, or output vector injects nondeterminism. The accepted idiom is the
// sorted drain: collect keys, std::sort them (inside the loop's statement or
// the one immediately following), then walk in key order.

std::vector<DrainSite> find_unordered_drains(const Tokens& tokens) {
  std::vector<DrainSite> out;

  // Pass 1: names declared in this TU with an unordered container type.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string& type = tokens[i].text;
    if (type != "unordered_map" && type != "unordered_set" &&
        type != "unordered_multimap" && type != "unordered_multiset")
      continue;
    std::size_t j = i + 1;
    if (is_punct(tokens, j, "<")) {  // skip the template argument list
      int depth = 0;
      for (; j < tokens.size(); ++j) {
        if (is_punct(tokens, j, "<")) ++depth;
        if (is_punct(tokens, j, ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (is_punct(tokens, j, "&") || is_punct(tokens, j, "*") ||
           is_ident(tokens, j, "const"))
      ++j;
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent &&
        !is_punct(tokens, j + 1, "("))  // `(` ⇒ function returning one
      unordered_names.insert(tokens[j].text);
  }
  if (unordered_names.empty()) return out;

  // Pass 2: range-for statements whose range expression names one of them.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens, i, "for") || !is_punct(tokens, i + 1, "(")) continue;
    const std::size_t close = skip_parens(tokens, i + 1);
    // Locate the `:` introducing the range expression (depth 1 only).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(tokens, j, "(") || is_punct(tokens, j, "[") ||
          is_punct(tokens, j, "{"))
        ++depth;
      if (is_punct(tokens, j, ")") || is_punct(tokens, j, "]") ||
          is_punct(tokens, j, "}"))
        --depth;
      if (depth == 1 && is_punct(tokens, j, ":")) {
        colon = j;
        break;
      }
      if (depth == 1 && is_punct(tokens, j, ";")) break;  // classic for
    }
    if (colon == 0) continue;
    // Only the top level of the range expression counts: a container name
    // nested inside a call's argument list (`f(probe, &watch)`) is an
    // argument, not the range being iterated.
    std::string hit;
    int range_depth = 1;
    for (std::size_t j = colon + 1; j < close - 1; ++j) {
      if (is_punct(tokens, j, "(") || is_punct(tokens, j, "[") ||
          is_punct(tokens, j, "{"))
        ++range_depth;
      if (is_punct(tokens, j, ")") || is_punct(tokens, j, "]") ||
          is_punct(tokens, j, "}"))
        --range_depth;
      if (range_depth == 1 && tokens[j].kind == Token::Kind::kIdent &&
          unordered_names.contains(tokens[j].text) &&
          !is_punct(tokens, j + 1, "(")) {
        hit = tokens[j].text;
        break;
      }
    }
    if (hit.empty()) continue;
    // Sorted-drain escape: `sort` inside the loop body or the statement
    // immediately after it.
    const std::size_t body_end = skip_statement(tokens, close);
    const std::size_t next_end = skip_statement(tokens, body_end);
    if (range_contains_ident(tokens, close, next_end, "sort")) continue;
    out.push_back(DrainSite{i, tokens[i].line, hit});
  }
  return out;
}

}  // namespace detail

namespace {

using detail::DrainSite;
using detail::Lexed;
using detail::Suppressions;
using detail::Token;
using detail::Tokens;
using detail::ends_with;
using detail::is_header;
using detail::is_ident;
using detail::is_punct;
using detail::non_std_qualified;
using detail::range_contains_ident;
using detail::skip_parens;
using detail::skip_statement;
using detail::starts_with;

// ---------------------------------------------------------------------------
// Path policy: which rules run where.

/// Wall-clock whitelist: the trace layer and the latency histograms measure
/// real time by design (their timings are documented as outside the
/// determinism contract), and the bench/tool trees report human-facing
/// durations.
bool clock_whitelisted(std::string_view relpath) {
  return relpath.find("obs/span.hpp") != std::string_view::npos ||
         relpath.find("obs/latency.hpp") != std::string_view::npos ||
         starts_with(relpath, "bench/") || starts_with(relpath, "tools/");
}

// ---------------------------------------------------------------------------
// Rule context threaded through every pass.

struct Context {
  std::string_view relpath;
  const Lexed* lexed;
  const Suppressions* suppressions;
  Report* report;
  std::map<std::string, SuppressionBudget>* budget;

  void flag(std::string_view rule, int line, std::string message) const {
    if (suppressions->file_wide.contains(std::string(rule))) {
      ++(*budget)[std::string(rule)].used;
      return;
    }
    const auto it = suppressions->by_line.find(line);
    if (it != suppressions->by_line.end() &&
        it->second.contains(std::string(rule))) {
      ++(*budget)[std::string(rule)].used;
      return;
    }
    report->findings.push_back(Finding{std::string(relpath), line,
                                       std::string(rule),
                                       std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// nondet-rand: banned nondeterministic value sources. All randomness must
// come from util::Rng (seeded, forkable, stable across platforms).

void rule_nondet_rand(const Context& ctx) {
  static constexpr std::string_view kBanned[] = {
      "random_device", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    for (const std::string_view banned : kBanned)
      if (tokens[i].text == banned && !non_std_qualified(tokens, i))
        ctx.flag("nondet-rand", tokens[i].line,
                 "'" + tokens[i].text +
                     "' is a nondeterministic source; use util::Rng "
                     "(seeded, forkable) instead");
    if (tokens[i].text == "rand" && is_punct(tokens, i + 1, "(") &&
        !non_std_qualified(tokens, i))
      ctx.flag("nondet-rand", tokens[i].line,
               "'rand()' is a nondeterministic source; use util::Rng "
               "(seeded, forkable) instead");
  }
}

// ---------------------------------------------------------------------------
// nondet-time: wall-clock reads outside the whitelisted trace layer. Day
// arithmetic must flow from the simulated calendar (util::Day), never from
// the host clock.

void rule_nondet_time(const Context& ctx) {
  if (clock_whitelisted(ctx.relpath)) return;
  static constexpr std::string_view kBannedClocks[] = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "localtime", "localtime_r", "gmtime", "gmtime_r", "clock_gettime"};
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    for (const std::string_view banned : kBannedClocks)
      if (tokens[i].text == banned &&
          (!non_std_qualified(tokens, i) ||
           (i >= 2 && is_ident(tokens, i - 2, "chrono"))))
        ctx.flag("nondet-time", tokens[i].line,
                 "'" + tokens[i].text +
                     "' reads the host clock; derive time from util::Day / "
                     "the trace layer (obs/span.hpp) only");
    // Argless `time()` / `time(nullptr)` / `time(0)` — the classic seed.
    if (tokens[i].text == "time" && is_punct(tokens, i + 1, "(") &&
        !non_std_qualified(tokens, i) &&
        (is_punct(tokens, i + 2, ")") ||
         (is_ident(tokens, i + 2, "nullptr") && is_punct(tokens, i + 3, ")")) ||
         (i + 2 < tokens.size() && tokens[i + 2].text == "0" &&
          is_punct(tokens, i + 3, ")"))))
      ctx.flag("nondet-time", tokens[i].line,
               "argless 'time()' reads the host clock; derive time from "
               "util::Day only");
  }
}

// ---------------------------------------------------------------------------
// unordered-drain: see detail::find_unordered_drains for the detection; the
// rule is just the reporting half. Order-independent folds (e.g. keyed
// inserts into a std::map) need an explicit allow() with a justification.

void rule_unordered_drain(const Context& ctx) {
  for (const DrainSite& site :
       detail::find_unordered_drains(ctx.lexed->tokens))
    ctx.flag("unordered-drain", site.line,
             "iteration over unordered container '" + site.name +
                 "' has implementation-defined order; drain via sorted keys "
                 "or justify with an allow() comment");
}

// ---------------------------------------------------------------------------
// using-namespace-header: a `using namespace` at header scope leaks into
// every includer.

void rule_using_namespace_header(const Context& ctx) {
  if (!is_header(ctx.relpath)) return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i)
    if (is_ident(tokens, i, "using") && is_ident(tokens, i + 1, "namespace"))
      ctx.flag("using-namespace-header", tokens[i].line,
               "'using namespace' in a header leaks into every includer; "
               "use scoped using-declarations in .cpp files instead");
}

// ---------------------------------------------------------------------------
// missing-pragma-once: every header must be self-guarding.

void rule_missing_pragma_once(const Context& ctx) {
  if (!is_header(ctx.relpath)) return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i)
    if (is_punct(tokens, i, "#") && is_ident(tokens, i + 1, "pragma") &&
        is_ident(tokens, i + 2, "once"))
      return;
  ctx.flag("missing-pragma-once", 1,
           "header lacks '#pragma once'; every header must be "
           "self-guarding");
}

// ---------------------------------------------------------------------------
// naked-new: manual memory management in pipeline code. Ownership flows
// through containers and unique_ptr; a bare new/delete is either a leak
// waiting to happen or a missing std::make_unique.

void rule_naked_new(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/")) return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    if (tokens[i].text == "new") {
      ctx.flag("naked-new", tokens[i].line,
               "naked 'new' in pipeline code; use std::make_unique or a "
               "container");
    } else if (tokens[i].text == "delete") {
      if (i > 0 && is_punct(tokens, i - 1, "=")) continue;  // = delete;
      if (i > 0 && is_ident(tokens, i - 1, "operator")) continue;
      ctx.flag("naked-new", tokens[i].line,
               "naked 'delete' in pipeline code; ownership must be RAII");
    }
  }
}

// ---------------------------------------------------------------------------
// metric-name / span-name: the src/obs naming conventions. Metric names are
// Prometheus-style `pl_<module>_<what>` with optional `{key="value"}`
// labels; span names are lower_snake (":" and "-" allowed for instance
// qualifiers like `registry:apnic`).

bool valid_metric_chars(std::string_view name, bool is_prefix) {
  std::size_t i = 0;
  for (; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '{') break;
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  if (i == name.size()) return true;
  // A label block `{key="value"}` follows. A prefix under construction
  // (literal + dynamic tail) may open the block without closing it; a
  // complete literal must close it.
  return is_prefix || name.back() == '}';
}

void rule_metric_name(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/")) return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string& method = tokens[i].text;
    if (method != "counter" && method != "gauge" && method != "histogram" &&
        method != "latency")
      continue;
    if (i == 0 ||
        !(is_punct(tokens, i - 1, ".") || is_punct(tokens, i - 1, "->")))
      continue;  // only member calls: registry.counter(...)
    if (!is_punct(tokens, i + 1, "(") ||
        tokens[i + 2].kind != Token::Kind::kString)
      continue;
    const std::string& name = tokens[i + 2].text;
    // A literal followed by `+` is a prefix under construction: its tail is
    // dynamic, so only the spelled-out part is validated.
    const bool is_prefix = is_punct(tokens, i + 3, "+");
    const bool ok =
        starts_with(name, "pl_") && valid_metric_chars(name, is_prefix);
    if (!ok)
      ctx.flag("metric-name", tokens[i + 2].line,
               "metric name \"" + name +
                   "\" violates the convention pl_<module>_<what>"
                   "[{label=\"v\"}] (lower_snake, pl_ prefix)");
  }
}

void rule_span_name(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/")) return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 1; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string& method = tokens[i].text;
    if (method != "root" && method != "child") continue;
    if (!(is_punct(tokens, i - 1, ".") || is_punct(tokens, i - 1, "->")))
      continue;
    if (!is_punct(tokens, i + 1, "(") ||
        tokens[i + 2].kind != Token::Kind::kString)
      continue;
    const std::string& name = tokens[i + 2].text;
    const bool is_prefix = is_punct(tokens, i + 3, "+");
    bool ok = !name.empty();
    for (std::size_t c = 0; c < name.size() && ok; ++c) {
      const char ch = name[c];
      ok = std::islower(static_cast<unsigned char>(ch)) ||
           std::isdigit(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == ':' || ch == '-' || ch == '.';
    }
    if (is_prefix && !name.empty() && ok) continue;
    if (!ok)
      ctx.flag("span-name", tokens[i + 2].line,
               "span name \"" + name +
                   "\" violates the convention lower_snake (':' '-' '.' "
                   "allowed for instance qualifiers)");
  }
}

// ---------------------------------------------------------------------------
// self-include-first: a src/ .cpp must include its own header before
// anything else — the cheapest proof the header is self-contained.

void rule_self_include_first(const Context& ctx) {
  const std::string_view relpath = ctx.relpath;
  if (!starts_with(relpath, "src/") || !ends_with(relpath, ".cpp")) return;
  // src/<dir...>/<stem>.cpp  →  expected first include "<dir...>/<stem>.hpp"
  std::string expected(relpath.substr(4));
  expected.replace(expected.size() - 4, 4, ".hpp");

  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!(is_punct(tokens, i, "#") && is_ident(tokens, i + 1, "include")))
      continue;
    if (tokens[i + 2].kind != Token::Kind::kString) continue;  // <...> form
    if (tokens[i + 2].text != expected)
      ctx.flag("self-include-first", tokens[i + 2].line,
               "first project include is \"" + tokens[i + 2].text +
                   "\"; a source file must include its own header (\"" +
                   expected + "\") first to prove it self-contained");
    return;  // only the first quoted include matters
  }
  ctx.flag("self-include-first", 1,
           "source file never includes its own header \"" + expected + "\"");
}

// ---------------------------------------------------------------------------
// status-ignored: a statement that calls a pl::Status / pl::StatusOr
// returning function and discards the result. Both types are [[nodiscard]],
// so the bare call already warns under -W; this rule additionally catches
// the `(void)` cast that silences the compiler, and keeps the check alive
// in builds where the warning is off. Candidate names come from the TU's
// own `Status f(...)` / `StatusOr<T> f(...)` signatures plus a cross-TU
// seed of well-known Status-returning entry points.

void rule_status_ignored(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/")) return;
  const Tokens& tokens = ctx.lexed->tokens;

  // Pass 1: names with a Status/StatusOr return in this TU, seeded with the
  // Status-returning API surface callers reach through other headers.
  std::set<std::string> status_fns = {
      "save_admin_json", "save_op_json", "save_admin_csv", "save_op_csv",
      "save_snapshot",   "append_wal",   "advance_day",    "checkpoint"};
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    std::size_t j = i + 1;
    if (tokens[i].text == "StatusOr") {
      if (!is_punct(tokens, j, "<")) continue;
      int depth = 0;
      for (; j < tokens.size(); ++j) {
        if (is_punct(tokens, j, "<")) ++depth;
        if (is_punct(tokens, j, ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    } else if (tokens[i].text != "Status") {
      continue;
    }
    // `Status name (` / `StatusOr<T> name (` — a signature, not a variable.
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent &&
        is_punct(tokens, j + 1, "("))
      status_fns.insert(tokens[j].text);
  }

  // Pass 2: statements that are nothing but the call — `foo(...);`,
  // `obj->foo(...);`, `ns::foo(...);` — optionally behind a `(void)` cast.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const bool at_start =
        i == 0 || is_punct(tokens, i - 1, ";") ||
        is_punct(tokens, i - 1, "{") || is_punct(tokens, i - 1, "}");
    if (!at_start) continue;
    std::size_t j = i;
    bool void_cast = false;
    if (is_punct(tokens, j, "(") && is_ident(tokens, j + 1, "void") &&
        is_punct(tokens, j + 2, ")")) {
      void_cast = true;
      j += 3;
    }
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdent) continue;
    // Walk the qualified chain `ident ((:: | . | ->) ident)*`; a direct
    // ident-ident pair (declaration, `return foo(...)`) breaks the walk.
    std::size_t last = j;
    std::size_t k = j + 1;
    while (k + 1 < tokens.size() &&
           (is_punct(tokens, k, "::") || is_punct(tokens, k, ".") ||
            is_punct(tokens, k, "->")) &&
           tokens[k + 1].kind == Token::Kind::kIdent) {
      last = k + 1;
      k += 2;
    }
    if (!is_punct(tokens, k, "(")) continue;
    if (!status_fns.contains(tokens[last].text)) continue;
    const std::size_t close = skip_parens(tokens, k);
    if (!is_punct(tokens, close, ";")) continue;
    ctx.flag("status-ignored", tokens[last].line,
             void_cast
                 ? "'(void)' cast discards the pl::Status from '" +
                       tokens[last].text +
                       "' and defeats [[nodiscard]]; handle the status or "
                       "justify with an allow(status-ignored) comment"
                 : "result of '" + tokens[last].text +
                       "' (pl::Status/StatusOr) is discarded; check it, "
                       "propagate it, or justify with an "
                       "allow(status-ignored) comment");
  }
}

// ---------------------------------------------------------------------------
// hot-path-alloc: per-record allocation idioms on the ingest hot path. The
// restore and delegation layers run once per record over 17 years x 5
// registries of archive, so stream-based tokenization (std::stringstream /
// istringstream / ostringstream) and `std::stoi` over a `.substr(...)`
// temporary are banned there — tokenize with the memchr field splitter
// (util/strings.hpp) and parse numbers in place. Genuinely cold paths
// (once-per-run reports, error formatting) take an allow() with a
// justification.

void rule_hot_path_alloc(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/restore/") &&
      !starts_with(ctx.relpath, "src/delegation/"))
    return;
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string& text = tokens[i].text;
    if (text == "stringstream" || text == "istringstream" ||
        text == "ostringstream") {
      // Skip the include directive's own token (`<sstream>` never lexes as
      // one of these, but a forward mention in a comment is not a token
      // either — any ident hit is a real use or a declaration).
      ctx.flag("hot-path-alloc", tokens[i].line,
               "'std::" + text +
                   "' allocates per use on the ingest hot path; tokenize "
                   "with the memchr splitter (util/strings.hpp) or justify "
                   "with an allow(hot-path-alloc) comment");
    } else if (text == "stoi" || text == "stol" || text == "stoul" ||
               text == "stoll" || text == "stoull" || text == "stod") {
      if (!is_punct(tokens, i + 1, "(")) continue;
      // `std::stoi(x.substr(...))` materializes a std::string per field;
      // plain stoi over an existing string is not a per-record allocation.
      const std::size_t close = skip_parens(tokens, i + 1);
      if (range_contains_ident(tokens, i + 1, close, "substr"))
        ctx.flag("hot-path-alloc", tokens[i].line,
                 "'" + text +
                     "' over a '.substr(...)' temporary allocates per "
                     "field; parse in place (std::from_chars / the field "
                     "splitter) or justify with an allow(hot-path-alloc) "
                     "comment");
    }
  }
}

// ---------------------------------------------------------------------------
// query-path-untraced: the serving layer promises every query is
// attributable (DESIGN.md §14) — a QueryService / DurableService entry
// point that neither opens a span nor records a flight/request event breaks
// the per-query timeline silently. Heuristic: a non-const method definition
// of either class in src/serve must mention an observability identifier
// (span/child/root, record*, observe, latency, flight, gauge/counter, or a
// note_* helper) somewhere in its body. Const-qualified definitions answer
// from already-recorded state and are exempt, as are constructors.

void rule_query_path_untraced(const Context& ctx) {
  if (!starts_with(ctx.relpath, "src/serve/") ||
      !ends_with(ctx.relpath, ".cpp"))
    return;
  static constexpr std::string_view kMarkers[] = {
      "record", "observe",    "latency", "Span",          "span",
      "child",  "root",       "flight",  "note_crash",    "note_degraded",
      "gauge",  "counter"};
  const Tokens& tokens = ctx.lexed->tokens;
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    const std::string& cls = tokens[i].text;
    if (cls != "QueryService" && cls != "DurableService") continue;
    if (!is_punct(tokens, i + 1, "::")) continue;
    if (tokens[i + 2].kind != Token::Kind::kIdent) continue;
    const std::string& method = tokens[i + 2].text;
    if (method == cls) continue;  // constructor: wiring, not serving
    if (!is_punct(tokens, i + 3, "(")) continue;
    const std::size_t after_params = skip_parens(tokens, i + 3);

    // Find the body (skipping trailing qualifiers); a `;` first means this
    // was a declaration or a member call, not a definition.
    bool is_const = false;
    std::size_t body = tokens.size();
    for (std::size_t j = after_params; j < tokens.size(); ++j) {
      if (is_ident(tokens, j, "const")) is_const = true;
      if (is_punct(tokens, j, ";")) break;
      if (is_punct(tokens, j, "{")) {
        body = j;
        break;
      }
    }
    if (body == tokens.size()) continue;
    if (is_const) continue;  // read-only accessor: nothing new to attribute

    int depth = 0;
    std::size_t end = tokens.size();
    for (std::size_t j = body; j < tokens.size(); ++j) {
      if (is_punct(tokens, j, "{")) ++depth;
      if (is_punct(tokens, j, "}") && --depth == 0) {
        end = j;
        break;
      }
    }
    bool instrumented = false;
    for (std::size_t j = body; j < end && !instrumented; ++j) {
      if (tokens[j].kind != Token::Kind::kIdent) continue;
      for (const std::string_view marker : kMarkers) {
        if (tokens[j].text.find(marker) != std::string::npos) {
          instrumented = true;
          break;
        }
      }
    }
    if (!instrumented)
      ctx.flag("query-path-untraced", tokens[i + 2].line,
               cls + "::" + method +
                   " serves without opening a span or recording a "
                   "flight/request event; instrument it or justify with an "
                   "allow(query-path-untraced) comment");
    i = end;
  }
}

}  // namespace

// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"nondet-rand",
       "banned nondeterministic randomness (std::rand, random_device, ...); "
       "use util::Rng"},
      {"nondet-time",
       "banned wall-clock reads outside obs/span.hpp, bench/, tools/"},
      {"unordered-drain",
       "iteration over unordered containers needs the sorted-drain idiom or "
       "a justified allow()"},
      {"using-namespace-header", "no `using namespace` at header scope"},
      {"missing-pragma-once", "headers must carry #pragma once"},
      {"naked-new", "no naked new/delete in src/; ownership is RAII"},
      {"metric-name",
       "metric literals in src/ follow pl_<module>_<what>[{label=\"v\"}]"},
      {"span-name", "span literals in src/ are lower_snake identifiers"},
      {"self-include-first",
       "a src/ .cpp includes its own header before any other include"},
      {"status-ignored",
       "pl::Status / StatusOr returns in src/ must be checked, propagated, "
       "or carry a justified allow()"},
      {"hot-path-alloc",
       "no stream tokenization or stoi-on-substr in src/restore and "
       "src/delegation; use the memchr splitter or a justified allow()"},
      {"query-path-untraced",
       "non-const QueryService/DurableService definitions in src/serve must "
       "open a span or record a flight/request event"},
      {"layer-violation",
       "include edges in src/ must point down the layers.txt DAG (equal "
       "ranks only within the same subsystem)"},
      {"include-cycle",
       "the project include graph must stay acyclic (whole-program pass)"},
      {"determinism-taint",
       "src/ functions transitively reaching rand/clock/unordered-drain "
       "sinks need a det-ok(reason) annotation on every path"},
      {"dead-public-api",
       "free functions exported by src/ headers need at least one cross-TU "
       "reference (or a baseline entry with a reason)"},
  };
  return catalog;
}

void Report::merge(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  for (const auto& [rule, budget] : other.suppressions) {
    suppressions[rule].declared += budget.declared;
    suppressions[rule].used += budget.used;
  }
  files_scanned += other.files_scanned;
}

Report detail::run_file_rules(std::string_view relpath, const Lexed& lexed,
                              const Suppressions& suppressions) {
  Report report;
  report.files_scanned = 1;
  std::map<std::string, SuppressionBudget> budget = suppressions.budget;

  const Context ctx{relpath, &lexed, &suppressions, &report, &budget};
  rule_nondet_rand(ctx);
  rule_nondet_time(ctx);
  rule_unordered_drain(ctx);
  rule_using_namespace_header(ctx);
  rule_missing_pragma_once(ctx);
  rule_naked_new(ctx);
  rule_metric_name(ctx);
  rule_span_name(ctx);
  rule_self_include_first(ctx);
  rule_status_ignored(ctx);
  rule_hot_path_alloc(ctx);
  rule_query_path_untraced(ctx);

  report.suppressions = std::move(budget);
  return report;
}

Report lint_source(std::string_view relpath, std::string_view content) {
  const Lexed lexed = detail::lex(content);
  const Suppressions suppressions = detail::parse_suppressions(lexed.comments);
  return detail::run_file_rules(relpath, lexed, suppressions);
}

std::string report_json(const Report& report, std::string_view root,
                        const std::map<std::string, double>* timing_ms) {
  bench::JsonWriter json(/*pretty=*/true);
  json.begin_object();
  json.key("schema").value("pl-lint/1");
  json.key("root").value(root);
  if (timing_ms) {
    json.key("timing_ms").begin_object();
    for (const auto& [name, ms] : *timing_ms) json.key(name).value(ms, 3);
    json.end_object();
  }
  json.key("files_scanned")
      .value(static_cast<std::int64_t>(report.files_scanned));
  json.key("clean").value(report.clean());
  json.key("findings").begin_array();
  for (const Finding& finding : report.findings) {
    json.begin_object();
    json.key("file").value(finding.file);
    json.key("line").value(static_cast<std::int64_t>(finding.line));
    json.key("rule").value(finding.rule);
    json.key("message").value(finding.message);
    json.end_object();
  }
  json.end_array();
  json.key("suppressions").begin_array();
  for (const auto& [rule, budget] : report.suppressions) {
    json.begin_object();
    json.key("rule").value(rule);
    json.key("declared").value(static_cast<std::int64_t>(budget.declared));
    json.key("used").value(static_cast<std::int64_t>(budget.used));
    json.end_object();
  }
  json.end_array();
  json.key("rules").begin_array();
  for (const RuleInfo& rule : rule_catalog()) {
    json.begin_object();
    json.key("id").value(rule.id);
    json.key("summary").value(rule.summary);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<Report> report_from_json(std::string_view json) {
  detail::JsonCursor cursor{json};
  Report report;
  if (!cursor.consume('{')) return std::nullopt;
  bool saw_schema = false;
  while (cursor.ok && !cursor.peek('}')) {
    const std::string key = cursor.string();
    if (!cursor.consume(':')) return std::nullopt;
    if (key == "schema") {
      if (cursor.string() != "pl-lint/1") return std::nullopt;
      saw_schema = true;
    } else if (key == "files_scanned") {
      report.files_scanned = static_cast<int>(cursor.integer());
    } else if (key == "findings") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        Finding finding;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "file")
            finding.file = cursor.string();
          else if (field == "line")
            finding.line = static_cast<int>(cursor.integer());
          else if (field == "rule")
            finding.rule = cursor.string();
          else if (field == "message")
            finding.message = cursor.string();
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        report.findings.push_back(std::move(finding));
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else if (key == "suppressions") {
      if (!cursor.consume('[')) return std::nullopt;
      while (cursor.ok && !cursor.peek(']')) {
        if (!cursor.consume('{')) return std::nullopt;
        std::string rule;
        SuppressionBudget budget;
        while (cursor.ok && !cursor.peek('}')) {
          const std::string field = cursor.string();
          if (!cursor.consume(':')) return std::nullopt;
          if (field == "rule")
            rule = cursor.string();
          else if (field == "declared")
            budget.declared = static_cast<int>(cursor.integer());
          else if (field == "used")
            budget.used = static_cast<int>(cursor.integer());
          else
            cursor.skip_value();
          if (!cursor.peek('}')) cursor.consume(',');
        }
        cursor.consume('}');
        if (!rule.empty()) report.suppressions.emplace(rule, budget);
        if (!cursor.peek(']')) cursor.consume(',');
      }
      cursor.consume(']');
    } else {
      cursor.skip_value();
    }
    if (!cursor.peek('}')) cursor.consume(',');
  }
  if (!cursor.ok || !saw_schema) return std::nullopt;
  return report;
}

}  // namespace pl::lint
