// pl-lint: the project's in-tree static analyzer.
//
// A dependency-free (no libclang) tokenizer + rule engine that enforces the
// determinism and hygiene invariants the pipeline's bit-identity guarantee
// rests on (DESIGN.md §10). Rules are named, individually suppressible via
// `// pl-lint: allow(rule-id)` comments, and path-scoped: production rules
// (metric naming, naked new) apply under src/ only, while the
// nondeterminism bans cover tests and examples too.
//
// The engine is deliberately heuristic — it resolves declarations within a
// single translation unit's tokens, not across headers — so it errs on the
// side of flagging and lets a justified suppression comment record why a
// site is safe. The suppression budget (declared vs. used counts per rule)
// is part of every report, so silenced findings stay visible.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pl::lint {

/// One diagnostic: `file:line: rule-id: message`.
struct Finding {
  std::string file;  ///< repo-relative path
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Per-rule suppression accounting: how many allow() comments a file
/// declares and how many actually silenced a finding.
struct SuppressionBudget {
  int declared = 0;
  int used = 0;

  friend bool operator==(const SuppressionBudget&,
                         const SuppressionBudget&) = default;
};

/// Result of linting one file or a whole tree.
struct Report {
  std::vector<Finding> findings;
  std::map<std::string, SuppressionBudget> suppressions;  ///< by rule id
  int files_scanned = 0;

  bool clean() const noexcept { return findings.empty(); }
  void merge(const Report& other);
};

/// Static description of one rule for --list-rules and the JSON report.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The full rule catalog, in stable order.
const std::vector<RuleInfo>& rule_catalog();

/// Lint one source text. `relpath` is the repo-relative path ("src/..." /
/// "tests/..." / ...); it selects which rules apply and appears in the
/// findings. Pure: no filesystem access.
Report lint_source(std::string_view relpath, std::string_view content);

/// Serialize a report as a `pl-lint/1` JSON document (via the shared
/// bench::JsonWriter so the artifact matches the BENCH_*.json conventions).
/// `timing_ms`, when given, is emitted as a "timing_ms" object (gate wall
/// times, cache hit counts); readers that don't know it skip it.
std::string report_json(const Report& report, std::string_view root,
                        const std::map<std::string, double>* timing_ms =
                            nullptr);

/// Parse a `pl-lint/1` document back (findings, suppressions,
/// files_scanned). nullopt on malformed input or an unknown schema.
std::optional<Report> report_from_json(std::string_view json);

}  // namespace pl::lint
