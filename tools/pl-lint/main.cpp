// pl-lint CLI: walk the given files/directories, lint every C++ source, and
// print findings as `file:line: rule-id: message` plus a suppression-budget
// summary. Exit code 0 = clean, 1 = findings, 2 = usage/IO error.
//
//   pl-lint [--root DIR] [--json PATH] [--list-rules] PATH...
//
// `--root` anchors the repo-relative labels (and thereby the path-scoped
// rule policy); it defaults to the current directory. Directories are
// walked recursively in sorted order so the output is deterministic;
// build trees and the lint fixture corpus (which contains deliberate
// violations) are skipped.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git";
}

void collect(const fs::path& path, std::vector<fs::path>& out) {
  if (fs::is_directory(path)) {
    for (fs::directory_iterator it(path), end; it != end; ++it) {
      if (fs::is_directory(it->path())) {
        if (!skipped_directory(it->path())) collect(it->path(), out);
      } else if (lintable_extension(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::exists(path)) {
    out.push_back(path);
  } else {
    std::cerr << "pl-lint: no such path: " << path.string() << "\n";
    std::exit(2);
  }
}

std::string relative_label(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..")
    return path.generic_string();
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::vector<fs::path> inputs;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const pl::lint::RuleInfo& rule : pl::lint::rule_catalog())
        std::cout << rule.id << "  " << rule.summary << "\n";
      return 0;
    }
    if (arg == "--root" && a + 1 < argc) {
      root = argv[++a];
    } else if (arg == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pl-lint: unknown flag " << arg << "\n"
                << "usage: pl-lint [--root DIR] [--json PATH] "
                   "[--list-rules] PATH...\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: pl-lint [--root DIR] [--json PATH] [--list-rules] "
                 "PATH...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) collect(input, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  pl::lint::Report report;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "pl-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    report.merge(
        pl::lint::lint_source(relative_label(file, root), content.str()));
  }

  for (const pl::lint::Finding& finding : report.findings)
    std::cout << finding.file << ":" << finding.line << ": " << finding.rule
              << ": " << finding.message << "\n";

  int declared = 0;
  for (const auto& [rule, budget] : report.suppressions) {
    declared += budget.declared;
    std::cout << "suppression-budget: " << rule
              << " declared=" << budget.declared << " used=" << budget.used
              << "\n";
  }
  std::cout << "pl-lint: " << report.files_scanned << " files, "
            << report.findings.size() << " findings, " << declared
            << " suppressions declared\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "pl-lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << pl::lint::report_json(report, root.generic_string()) << "\n";
  }
  return report.clean() ? 0 : 1;
}
