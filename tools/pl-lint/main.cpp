// pl-lint CLI: walk the given files/directories, run the per-file rules and
// the whole-program passes (model.hpp), and print findings as
// `file:line: rule-id: message` plus the suppression and ratchet summaries.
//
//   pl-lint [--root DIR] [--json PATH] [--graph PATH] [--layers PATH]
//           [--baseline PATH] [--update-baseline] [--check-baseline]
//           [--cache PATH] [--list-rules] PATH...
//
// `--root` anchors the repo-relative labels (and thereby the path-scoped
// rule policy). `--layers` names the architecture manifest for the
// layer-violation pass (skipped without one). `--baseline` freezes known
// findings with per-entry reasons; the ratchet fails the run when a count
// grows, `--update-baseline` rewrites the file with only ever-lower counts,
// and `--check-baseline` is the CI dry-run: exit 3 when the baseline could
// shrink but wasn't updated. `--cache` persists per-file models keyed by
// content hash so unchanged files skip re-extraction.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error, 3 stale baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git";
}

void collect(const fs::path& path, std::vector<fs::path>& out) {
  if (fs::is_directory(path)) {
    for (fs::directory_iterator it(path), end; it != end; ++it) {
      if (fs::is_directory(it->path())) {
        if (!skipped_directory(it->path())) collect(it->path(), out);
      } else if (lintable_extension(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::exists(path)) {
    out.push_back(path);
  } else {
    std::cerr << "pl-lint: no such path: " << path.string() << "\n";
    std::exit(2);
  }
}

std::string relative_label(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..")
    return path.generic_string();
  return rel.generic_string();
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::string graph_path;
  std::string layers_path;
  std::string baseline_path;
  std::string cache_path;
  bool update_baseline = false;
  bool check_baseline = false;
  std::vector<fs::path> inputs;

  const auto usage = [] {
    std::cerr << "usage: pl-lint [--root DIR] [--json PATH] [--graph PATH] "
                 "[--layers PATH]\n"
                 "               [--baseline PATH] [--update-baseline] "
                 "[--check-baseline]\n"
                 "               [--cache PATH] [--list-rules] PATH...\n";
  };

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const pl::lint::RuleInfo& rule : pl::lint::rule_catalog())
        std::cout << rule.id << "  " << rule.summary << "\n";
      return 0;
    }
    if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--check-baseline") {
      check_baseline = true;
    } else if (arg == "--root" && a + 1 < argc) {
      root = argv[++a];
    } else if (arg == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (arg == "--graph" && a + 1 < argc) {
      graph_path = argv[++a];
    } else if (arg == "--layers" && a + 1 < argc) {
      layers_path = argv[++a];
    } else if (arg == "--baseline" && a + 1 < argc) {
      baseline_path = argv[++a];
    } else if (arg == "--cache" && a + 1 < argc) {
      cache_path = argv[++a];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pl-lint: unknown flag " << arg << "\n";
      usage();
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    usage();
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) collect(input, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // --- architecture manifest ----------------------------------------------
  pl::lint::LayerManifest manifest;
  if (!layers_path.empty()) {
    std::string text;
    if (!read_file(layers_path, &text)) {
      std::cerr << "pl-lint: cannot read layers manifest " << layers_path
                << "\n";
      return 2;
    }
    const auto parsed = pl::lint::parse_layers(text);
    if (!parsed) {
      std::cerr << "pl-lint: malformed layers manifest " << layers_path
                << "\n";
      return 2;
    }
    manifest = *parsed;
  }

  // --- per-file extraction, through the content-hash cache ----------------
  std::map<std::string, pl::lint::FileModel> cached;
  if (!cache_path.empty()) {
    std::string text;
    if (read_file(cache_path, &text))
      if (auto parsed = pl::lint::cache_from_json(text))
        for (pl::lint::FileModel& model : *parsed)
          cached.emplace(model.relpath, std::move(model));
    // A missing, stale, or foreign cache is not an error: extraction
    // simply re-runs.
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pl::lint::FileModel> models;
  models.reserve(files.size());
  int cache_hits = 0;
  int cache_misses = 0;
  for (const fs::path& file : files) {
    std::string content;
    if (!read_file(file, &content)) {
      std::cerr << "pl-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    const std::string label = relative_label(file, root);
    const std::uint64_t hash = pl::lint::content_hash(content);
    const auto it = cached.find(label);
    if (it != cached.end() && it->second.hash == hash) {
      ++cache_hits;
      models.push_back(std::move(it->second));
      cached.erase(it);
    } else {
      ++cache_misses;
      models.push_back(pl::lint::extract_file_model(label, content));
    }
  }

  pl::lint::Report report;
  for (const pl::lint::FileModel& model : models)
    report.merge(model.file_report);

  // --- whole-program passes ----------------------------------------------
  const auto t1 = std::chrono::steady_clock::now();
  const pl::lint::ProgramAnalysis analysis =
      pl::lint::analyze_program(models, manifest);
  const auto t2 = std::chrono::steady_clock::now();

  report.findings.insert(report.findings.end(),
                         analysis.report.findings.begin(),
                         analysis.report.findings.end());
  for (const auto& [rule, budget] : analysis.report.suppressions) {
    report.suppressions[rule].declared += budget.declared;
    report.suppressions[rule].used += budget.used;
  }
  int det_ok_declared = 0;
  for (const pl::lint::FileModel& model : models)
    det_ok_declared += model.det_ok_declared;
  report.suppressions["det-ok"].declared += det_ok_declared;
  report.suppressions["det-ok"].used += analysis.det_ok_used;

  // --- baseline ratchet ---------------------------------------------------
  pl::lint::Baseline baseline;
  bool have_baseline = false;
  if (!baseline_path.empty() && fs::exists(baseline_path)) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << "pl-lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    const auto parsed = pl::lint::baseline_from_json(text);
    if (!parsed) {
      std::cerr << "pl-lint: malformed baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = *parsed;
    have_baseline = true;
  }
  const pl::lint::RatchetResult ratchet =
      pl::lint::apply_baseline(report, baseline);

  for (const pl::lint::Finding& finding : ratchet.failures)
    std::cout << finding.file << ":" << finding.line << ": " << finding.rule
              << ": " << finding.message << "\n";

  int declared = 0;
  int used = 0;
  for (const auto& [rule, budget] : report.suppressions) {
    declared += budget.declared;
    used += budget.used;
    std::cout << "suppression-budget: " << rule
              << " declared=" << budget.declared << " used=" << budget.used
              << "\n";
  }

  const double extract_ms = ms_between(t0, t1);
  const double analyze_ms = ms_between(t1, t2);
  std::cout << "ratchet: baseline=" << baseline.total() << " entries="
            << baseline.entries.size() << " absorbed=" << ratchet.baselined
            << " suppressions declared=" << declared << " used=" << used
            << (ratchet.can_shrink ? " (baseline can shrink)" : "") << "\n";
  std::printf(
      "timing: extract=%.1fms analyze=%.1fms cache_hits=%d cache_misses=%d\n",
      extract_ms, analyze_ms, cache_hits, cache_misses);
  std::cout << "pl-lint: " << report.files_scanned << " files, "
            << analysis.functions << " functions, " << analysis.calls
            << " call edges, " << ratchet.failures.size() << " findings ("
            << ratchet.baselined << " baselined)\n";

  // --- artifacts ----------------------------------------------------------
  if (!json_path.empty()) {
    const std::map<std::string, double> timing = {
        {"extract", extract_ms},
        {"analyze", analyze_ms},
        {"cache_hits", static_cast<double>(cache_hits)},
        {"cache_misses", static_cast<double>(cache_misses)}};
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "pl-lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << pl::lint::report_json(report, root.generic_string(), &timing)
        << "\n";
  }
  if (!graph_path.empty()) {
    std::ofstream out(graph_path, std::ios::binary);
    if (!out) {
      std::cerr << "pl-lint: cannot write " << graph_path << "\n";
      return 2;
    }
    out << pl::lint::graph_json(analysis, manifest, models,
                                root.generic_string())
        << "\n";
  }
  if (!cache_path.empty()) {
    std::ofstream out(cache_path, std::ios::binary);
    if (out) out << pl::lint::cache_json(models) << "\n";
    // Best effort: an unwritable cache only costs the next run speed.
  }

  if (update_baseline && have_baseline && ratchet.can_shrink) {
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "pl-lint: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << pl::lint::baseline_json(ratchet.shrunk) << "\n";
    std::cout << "pl-lint: baseline shrunk to " << ratchet.shrunk.total()
              << " findings across " << ratchet.shrunk.entries.size()
              << " entries\n";
  }

  if (!ratchet.failures.empty()) return 1;
  if (check_baseline && ratchet.can_shrink) {
    std::cerr << "pl-lint: baseline " << baseline_path
              << " is stale (could shrink to " << ratchet.shrunk.total()
              << "); run with --update-baseline\n";
    return 3;
  }
  return 0;
}
