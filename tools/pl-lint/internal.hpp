// pl-lint internals shared between the per-file rule engine (lint.cpp) and
// the whole-program model extractor (model.cpp): the tokenizer, the
// suppression-directive parser, token-walk helpers, and the minimal JSON
// cursor used by every pl-lint document reader (report, cache, baseline,
// graph). Nothing here is part of the public analyzer API (lint.hpp /
// model.hpp); tests reach it only through those.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace pl::lint::detail {

// ---------------------------------------------------------------------------
// Tokenizer. Comments and literals never reach the rule passes as code;
// comments are kept separately (they carry the suppression directives) and
// string literals keep their content (the naming rules inspect them).

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;  ///< for kString: the unquoted content
  int line;
};

struct Comment {
  std::string text;
  int line;  ///< line the comment ends on
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<std::string> raw_lines;
};

Lexed lex(std::string_view text);

// ---------------------------------------------------------------------------
// Suppressions: `// pl-lint: allow(rule)` / `allow-file(rule)` silence the
// per-file rules; `// pl-lint: det-ok(reason)` annotates the enclosing
// function as determinism-reviewed for the cross-TU taint pass. Every
// directive keeps its source span so the program model can re-apply file
// suppressions to model-rule findings without re-lexing.

/// One allow() directive, resolved to the line range it covers.
struct AllowSpan {
  std::string rule;
  int from = 0;       ///< first covered line
  int to = 0;         ///< last covered line (== from for single-line)
  bool file_wide = false;

  friend bool operator==(const AllowSpan&, const AllowSpan&) = default;
};

/// One det-ok(reason) annotation; attaches to the function whose definition
/// contains (or immediately follows) the comment block.
struct DetOk {
  int line = 0;     ///< line of the directive comment
  int through = 0;  ///< first code line after the comment block
  std::string reason;

  friend bool operator==(const DetOk&, const DetOk&) = default;
};

struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  ///< line -> rule ids
  std::set<std::string> file_wide;
  std::map<std::string, SuppressionBudget> budget;
  std::vector<AllowSpan> spans;
  std::vector<DetOk> det_ok;
};

Suppressions parse_suppressions(const std::vector<Comment>& comments);

// ---------------------------------------------------------------------------
// Shared token helpers.

using Tokens = std::vector<Token>;

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool is_header(std::string_view relpath);
bool is_ident(const Tokens& tokens, std::size_t i, std::string_view text);
bool is_punct(const Tokens& tokens, std::size_t i, std::string_view text);

/// True when token `i` is reached through `.` / `->`, or through a `::`
/// whose qualifier is not `std` — i.e. it is NOT the bare/std-qualified
/// name the nondeterminism bans target.
bool non_std_qualified(const Tokens& tokens, std::size_t i);

/// Index just past a balanced `( ... )` starting at `open` (which must be
/// `(`); tokens.size() when unbalanced.
std::size_t skip_parens(const Tokens& tokens, std::size_t open);

/// One unordered-container drain site (a range-for over an unordered
/// container declared in this TU, with no sorted-drain escape). Shared by
/// the per-file unordered-drain rule and the taint pass's sink scan.
struct DrainSite {
  std::size_t token_index = 0;  ///< the `for` token
  int line = 0;
  std::string name;  ///< the container variable
};

std::vector<DrainSite> find_unordered_drains(const Tokens& tokens);

/// Run the per-file rule passes over an already-lexed file. lint_source is
/// a thin wrapper (lex + parse_suppressions + this); the program-model
/// extractor calls it directly so a file is lexed exactly once.
Report run_file_rules(std::string_view relpath, const Lexed& lexed,
                      const Suppressions& suppressions);

// ---------------------------------------------------------------------------
// Minimal JSON reader shared by every pl-lint document parser (objects,
// arrays, strings, ints, bools — exactly what the JsonWriter emitters
// produce).

struct JsonCursor {
  std::string_view text;
  std::size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  }

  bool consume(char c) {
    skip_ws();
    if (i < text.size() && text[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return i < text.size() && text[i] == c;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (i >= text.size() || text[i] != '"') {
      ok = false;
      return out;
    }
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            if (i + 4 < text.size()) {
              out += static_cast<char>(
                  std::strtol(std::string(text.substr(i + 1, 4)).c_str(),
                              nullptr, 16));
              i += 4;
            }
            break;
          default: out += text[i];
        }
      } else {
        out += text[i];
      }
      ++i;
    }
    if (i >= text.size()) ok = false;
    ++i;
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    const std::size_t start = i;
    if (i < text.size() && (text[i] == '-' || text[i] == '+')) ++i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])))
      ++i;
    if (i == start) {
      ok = false;
      return 0;
    }
    return std::strtoll(std::string(text.substr(start, i - start)).c_str(),
                        nullptr, 10);
  }

  bool boolean() {
    skip_ws();
    if (text.compare(i, 4, "true") == 0) {
      i += 4;
      return true;
    }
    if (text.compare(i, 5, "false") == 0) {
      i += 5;
      return false;
    }
    ok = false;
    return false;
  }

  /// Skip any value (used for keys the reader does not model).
  void skip_value() {
    skip_ws();
    if (i >= text.size()) {
      ok = false;
      return;
    }
    const char c = text[i];
    if (c == '"') {
      string();
    } else if (c == '{' || c == '[') {
      const char closer = c == '{' ? '}' : ']';
      ++i;
      int depth = 1;
      bool in_string = false;
      while (i < text.size() && depth > 0) {
        const char d = text[i];
        if (in_string) {
          if (d == '\\')
            ++i;
          else if (d == '"')
            in_string = false;
        } else if (d == '"') {
          in_string = true;
        } else if (d == c) {
          ++depth;
        } else if (d == closer) {
          --depth;
        }
        ++i;
      }
      if (depth != 0) ok = false;
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ']')
        ++i;
    }
  }
};

}  // namespace pl::lint::detail
