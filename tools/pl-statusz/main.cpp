// pl-statusz: render serving observability artifacts from files.
//
// The serving layer leaves two kinds of artifact behind: pl-obs JSON
// reports (trace + metrics + latency histograms, written via PL_TRACE or
// QueryService::report()) and pl-flight/1 flight-recorder dumps (written by
// DurableService on crash / quarantine / degradation, or by the pipeline
// via PL_FLIGHT). The lint gate leaves a third: the pl-graph/1 program
// model pl-lint writes next to its report. The history layer leaves a
// fourth: saved HistoryStore files (manifest + keyframe + delta frames).
// This tool is the human front-end: counters and gauges, latency
// percentiles (p50/p90/p99/p999), the tail of the flight timeline, the
// architecture view, and the history-file census — a plain-text /statusz
// for a process that is no longer running.
//
//   pl-statusz --obs report.json            # metrics + latency percentiles
//   pl-statusz --flight dump.plflight       # flight-recorder tail
//   pl-statusz --tail 16 --flight d.plflight
//   pl-statusz --graph pl-graph.json        # layer table + taint witnesses
//   pl-statusz --history days.plhist        # keyframe/delta census
//   pl-statusz --selftest                   # exercise the formats in-process
//
// --selftest round-trips both formats (including damaged-file salvage) and
// exits non-zero on any mismatch; the verify matrix runs it in every build
// configuration, including -DPL_OBS_OFF, so the readers stay honest even
// when recording is compiled out.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "history/store.hpp"
#include "model.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "robust/checkpoint.hpp"
#include "util/strings.hpp"

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void print_latency(const std::string& name,
                   const pl::obs::LatencyHistoSnapshot& latency) {
  std::cout << "latency " << name << "\n"
            << "  count=" << latency.count << " sum=" << latency.sum
            << " p50=" << latency.percentile(0.50)
            << " p90=" << latency.percentile(0.90)
            << " p99=" << latency.percentile(0.99)
            << " p999=" << latency.percentile(0.999) << "\n";
}

int render_obs(const std::string& path) {
  const std::optional<std::string> json = read_file(path);
  if (!json.has_value()) {
    std::cerr << "pl-statusz: cannot read " << path << "\n";
    return 1;
  }
  const std::optional<pl::obs::Report> report = pl::obs::from_json(*json);
  if (!report.has_value()) {
    std::cerr << "pl-statusz: " << path << " is not a pl-obs document\n";
    return 1;
  }
  std::cout << "== metrics (" << path << ") ==\n";
  for (const auto& [name, value] : report->metrics.counters)
    std::cout << "counter " << name << " = " << value << "\n";
  for (const auto& [name, value] : report->metrics.gauges)
    std::cout << "gauge " << name << " = " << value << "\n";
  for (const auto& [name, latency] : report->metrics.latencies)
    print_latency(name, latency);
  return 0;
}

int render_flight(const std::string& path, std::size_t tail) {
  const pl::obs::FlightRead read = pl::obs::read_flight(path);
  if (read.status == pl::obs::FlightIoStatus::kNotFound) {
    std::cerr << "pl-statusz: no flight dump at " << path << "\n";
    return 1;
  }
  if (read.status == pl::obs::FlightIoStatus::kIoError) {
    std::cerr << "pl-statusz: cannot read " << path << "\n";
    return 1;
  }
  std::cout << "== flight (" << path << ") ==\n"
            << pl::obs::render_flight_text(read, tail);
  // kDataLoss still rendered (salvaged prefix) but reported on the exit
  // code so scripts notice the damage.
  return read.ok() ? 0 : 1;
}

/// pl-graph/1 view: the layers.txt table with per-subsystem file counts,
/// then every taint witness as a call chain ending at its sink, then the
/// dead exported symbols. The layer table reads bottom-up, like the
/// manifest: a subsystem may only include rows printed above itself.
int render_graph(const std::string& path) {
  const std::optional<std::string> json = read_file(path);
  if (!json.has_value()) {
    std::cerr << "pl-statusz: cannot read " << path << "\n";
    return 1;
  }
  const std::optional<pl::lint::GraphDoc> doc =
      pl::lint::graph_from_json(*json);
  if (!doc.has_value()) {
    std::cerr << "pl-statusz: " << path << " is not a pl-graph document\n";
    return 1;
  }

  std::cout << "== program model (" << path << ") ==\n"
            << doc->nodes.size() << " files, " << doc->functions
            << " functions, " << doc->calls << " call edges, "
            << doc->edges.size() << " include edges\n";

  std::cout << "\nlayers (low to high; includes may only point up this "
               "table)\n";
  for (std::size_t rank = 0; rank < doc->levels.size(); ++rank) {
    std::cout << "  " << rank << "  ";
    for (std::size_t i = 0; i < doc->levels[rank].size(); ++i) {
      const std::string& name = doc->levels[rank][i];
      std::size_t files = 0;
      for (const auto& [file, subsystem] : doc->nodes)
        if (subsystem == name) ++files;
      if (i) std::cout << "  ";
      std::cout << name << " (" << files << ")";
    }
    std::cout << "\n";
  }

  if (!doc->taint.empty()) {
    std::cout << "\ntaint witnesses (" << doc->taint.size() << ")\n";
    for (const pl::lint::TaintWitness& witness : doc->taint) {
      std::cout << "  " << witness.root << " (" << witness.file << ":"
                << witness.line << ")\n    ";
      for (std::size_t i = 0; i < witness.path.size(); ++i) {
        if (i) std::cout << " -> ";
        std::cout << witness.path[i];
      }
      std::cout << " -> [" << witness.sink.kind << "] "
                << witness.sink.token << " (" << witness.sink_file << ":"
                << witness.sink.line << ")\n";
    }
  }

  if (!doc->dead.empty()) {
    std::cout << "\ndead exported symbols (" << doc->dead.size() << ")\n";
    for (const pl::lint::DeadSymbol& dead : doc->dead)
      std::cout << "  " << dead.qname << " (" << dead.file << ":"
                << dead.line << ")\n";
  }

  if (doc->taint.empty() && doc->dead.empty())
    std::cout << "\nno taint witnesses, no dead exported symbols\n";
  return 0;
}

/// History-file census via history::inspect — structural only (frame
/// boundaries, manifest, per-frame CRCs), no snapshot decode, so it is
/// fast even on paper-scale files and safe to point at a damaged one.
int render_history(const std::string& path) {
  const auto info = pl::history::inspect(path);
  if (!info.ok()) {
    std::cerr << "pl-statusz: " << path << ": " << info.status().to_string()
              << "\n";
    return 1;
  }
  const std::int64_t days =
      static_cast<std::int64_t>(info->last_day - info->base_day) + 1;
  std::cout << "== history (" << path << ") ==\n"
            << "format pl-history/" << info->version << ", "
            << pl::util::format_iso(info->base_day) << " .. "
            << pl::util::format_iso(info->last_day) << " (" << days
            << " days), keyframe every " << info->keyframe_interval
            << " days\n"
            << "keyframes " << info->keyframes << " ("
            << info->keyframe_bytes << " bytes), deltas " << info->deltas
            << " (" << info->delta_bytes << " bytes)\n";
  if (info->keyframes > 0 && info->deltas > 0) {
    const double keyframe_per_day =
        static_cast<double>(info->keyframe_bytes) /
        static_cast<double>(info->keyframes);
    const double delta_per_day = static_cast<double>(info->delta_bytes) /
                                 static_cast<double>(info->deltas);
    std::cout << "bytes/day: delta "
              << static_cast<std::int64_t>(delta_per_day) << " vs keyframe "
              << static_cast<std::int64_t>(keyframe_per_day) << " ("
              << 100.0 * delta_per_day / keyframe_per_day
              << "% of a keyframe)\n";
  }
  return 0;
}

#define SELF_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "pl-statusz selftest failed at " << __FILE__ << ":"     \
                << __LINE__ << ": " #cond "\n";                            \
      return 1;                                                            \
    }                                                                      \
  } while (0)

/// In-process exercise of both file formats. Everything here uses the
/// mode-independent half of the obs API, so the selftest passes — and means
/// the same thing — under -DPL_OBS_OFF.
int selftest() {
  using namespace pl::obs;

  // Slot math: every sample lands in a slot whose bound is >= the sample
  // and within the documented 12.5% relative error.
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{7},
                         std::int64_t{8}, std::int64_t{100},
                         std::int64_t{4096}, std::int64_t{123456789},
                         std::int64_t{1} << 40}) {
    const std::size_t slot = latency_slot(v);
    SELF_CHECK(slot < kLatencySlots);
    const std::int64_t bound = latency_slot_bound(slot);
    SELF_CHECK(bound >= v);
    SELF_CHECK(static_cast<double>(bound - v) <=
               0.125 * static_cast<double>(v) + 1.0);
  }

  // Percentile + merge on hand-built snapshots: exact integer semantics.
  LatencyHistoSnapshot a;
  a.slots = {static_cast<std::uint32_t>(latency_slot(100))};
  a.counts = {9};
  a.count = 9;
  a.sum = 900;
  LatencyHistoSnapshot b;
  b.slots = {static_cast<std::uint32_t>(latency_slot(1000000))};
  b.counts = {1};
  b.count = 1;
  b.sum = 1000000;
  a.merge(b);
  SELF_CHECK(a.count == 10);
  SELF_CHECK(a.sum == 1000900);
  SELF_CHECK(a.percentile(0.50) == latency_slot_bound(latency_slot(100)));
  SELF_CHECK(a.percentile(0.999) ==
             latency_slot_bound(latency_slot(1000000)));

  // pl-obs JSON round trip with a latency histogram attached.
  Report report;
  report.metrics.counters["pl_statusz_selftest"] = 1;
  report.metrics.latencies["pl_statusz_latency"] = a;
  const std::string json = to_json(report);
  const std::optional<Report> parsed = from_json(json);
  SELF_CHECK(parsed.has_value());
  SELF_CHECK(parsed->metrics.latencies == report.metrics.latencies);

  // pl-flight/1 round trip through a real file in the working directory.
  const std::string path = "pl-statusz-selftest.plflight";
  const std::vector<FlightEvent> events = {
      {derive_request_id(kQueryStream, 0, 0).value,
       static_cast<std::uint32_t>(EventKind::kLookup),
       query_detail(kCacheMiss, 3, 0, true), 42, 0},
      {0, static_cast<std::uint32_t>(EventKind::kCheckpoint), 0, 7, 1},
  };
  SELF_CHECK(write_flight_events(path, events, 2, 0) == FlightIoStatus::kOk);
  const FlightRead read = read_flight(path);
  SELF_CHECK(read.ok());
  SELF_CHECK(read.events == events);
  SELF_CHECK(render_flight_text(read).find("lookup") != std::string::npos);

  // Damage the file: truncate away the CRC trailer and the second event so
  // exactly one whole event remains. The reader must salvage that prefix
  // and report kDataLoss, never crash.
  const std::optional<std::string> bytes = read_file(path);
  SELF_CHECK(bytes.has_value());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes->data(),
              static_cast<std::streamsize>(bytes->size() - 36));
  }
  const FlightRead damaged = read_flight(path);
  SELF_CHECK(damaged.status == FlightIoStatus::kDataLoss);
  SELF_CHECK(damaged.events.size() == 1);
  SELF_CHECK(damaged.events[0] == events[0]);
  std::remove(path.c_str());

  // pl-graph/1 round trip through the real writer: a two-file program with
  // one taint chain must come back with its layer table and witness intact.
  {
    using namespace pl::lint;
    const std::vector<FileModel> models = {
        extract_file_model("src/util/stamp.cpp",
                           "// pl-lint: allow(nondet-time) selftest\n"
                           "namespace pl::util {\n"
                           "long stamp_ms() {\n"
                           "  return std::chrono::steady_clock::now()\n"
                           "      .time_since_epoch().count();\n"
                           "}\n"
                           "}  // namespace pl::util\n"),
        extract_file_model("src/high/use.cpp",
                           "namespace pl::high {\n"
                           "long next() { return pl::util::stamp_ms() + 1; }\n"
                           "}  // namespace pl::high\n")};
    const std::optional<LayerManifest> manifest = parse_layers("util < high");
    SELF_CHECK(manifest.has_value());
    const ProgramAnalysis analysis = analyze_program(models, *manifest);
    const std::optional<GraphDoc> doc =
        graph_from_json(graph_json(analysis, *manifest, models, "selftest"));
    SELF_CHECK(doc.has_value());
    SELF_CHECK(doc->levels.size() == 2);
    SELF_CHECK(doc->nodes.size() == 2);
    SELF_CHECK(!doc->taint.empty());
    SELF_CHECK(doc->taint[0].sink.kind == "clock");
    SELF_CHECK(!graph_from_json("{\"schema\":\"pl-obs/1\"}").has_value());
  }

  // History-file census: hand-craft the smallest structurally valid store
  // file (manifest + 2 keyframes + 2 deltas over a 3-day range, each a CRC
  // frame — inspect() never decodes payloads, so placeholder payloads are
  // enough to prove the walker). Then tear it and require kDataLoss.
  {
    namespace history = pl::history;
    namespace robust = pl::robust;
    const auto frame = [](const std::string& payload) {
      robust::CheckpointWriter w;
      w.str(payload);
      return std::move(w).finish();
    };
    robust::CheckpointWriter manifest;
    manifest.u32(history::kHistoryFormatVersion);
    manifest.i32(100);  // base_day
    manifest.i32(102);  // last_day
    manifest.i32(2);    // keyframe_interval
    manifest.varint(2);
    manifest.i32(100);
    manifest.i32(102);
    manifest.varint(2);  // deltas for days 101, 102
    const std::string blob = std::move(manifest).finish() +
                             frame("keyframe 100") + frame("keyframe 102") +
                             frame("delta 101") + frame("delta 102");
    const std::string hist_path = "pl-statusz-selftest.plhist";
    {
      std::ofstream out(hist_path, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    const auto info = pl::history::inspect(hist_path);
    SELF_CHECK(info.ok());
    SELF_CHECK(info->version == history::kHistoryFormatVersion);
    SELF_CHECK(info->base_day == 100 && info->last_day == 102);
    SELF_CHECK(info->keyframes == 2 && info->deltas == 2);
    SELF_CHECK(info->keyframe_bytes > 0 && info->delta_bytes > 0);
    SELF_CHECK(render_history(hist_path) == 0);
    {
      std::ofstream out(hist_path, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(blob.size() - 7));
    }
    SELF_CHECK(pl::history::inspect(hist_path).status().code() ==
               pl::StatusCode::kDataLoss);
    SELF_CHECK(render_history(hist_path) == 1);
    std::remove(hist_path.c_str());
  }

  std::cout << "pl-statusz selftest: ok\n";
  return 0;
}

int usage() {
  std::cerr << "usage: pl-statusz [--obs report.json] "
               "[--flight dump.plflight] [--tail N] "
               "[--graph pl-graph.json] [--history days.plhist] "
               "[--selftest]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string obs_path;
  std::string flight_path;
  std::string graph_path;
  std::string history_path;
  std::size_t tail = 32;
  bool run_selftest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      run_selftest = true;
    } else if (arg == "--obs" && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (arg == "--flight" && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (arg == "--graph" && i + 1 < argc) {
      graph_path = argv[++i];
    } else if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--tail" && i + 1 < argc) {
      tail = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else {
      return usage();
    }
  }
  if (run_selftest) return selftest();
  if (obs_path.empty() && flight_path.empty() && graph_path.empty() &&
      history_path.empty())
    return usage();

  int rc = 0;
  if (!obs_path.empty()) rc |= render_obs(obs_path);
  if (!flight_path.empty()) rc |= render_flight(flight_path, tail);
  if (!graph_path.empty()) rc |= render_graph(graph_path);
  if (!history_path.empty()) rc |= render_history(history_path);
  return rc;
}
