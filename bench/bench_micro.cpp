// Microbenchmarks (google-benchmark): the hot paths of the pipeline —
// delegation-file parsing/serialization, interval-set algebra, AS-path loop
// detection, the sanitizer, and the visibility aggregator.
#include <benchmark/benchmark.h>

#include "bgp/activity.hpp"
#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "bgp/sanitizer.hpp"
#include "delegation/archive.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace {

using namespace pl;

dele::DelegationFile make_file(int records) {
  dele::DelegationFile file;
  file.extended = true;
  file.header.registry = asn::Rir::kRipeNcc;
  file.header.serial = util::make_day(2020, 1, 1);
  file.header.start_date = util::make_day(1984, 1, 1);
  file.header.end_date = util::make_day(2019, 12, 31);
  file.header.record_count = records;
  util::Rng rng(7);
  std::uint32_t next = 100;
  for (int i = 0; i < records; ++i) {
    dele::AsnRecord record;
    record.registry = file.header.registry;
    record.first = asn::Asn{next};
    next += static_cast<std::uint32_t>(rng.uniform(1, 4));
    record.status = dele::Status::kAllocated;
    record.country = asn::CountryCode::literal('D', 'E');
    record.date = util::make_day(2000, 1, 1) +
                  static_cast<util::Day>(rng.uniform(0, 7000));
    record.opaque_id = rng() % 65536 + 1;
    file.asn_records.push_back(record);
  }
  return file;
}

void BM_SerializeDelegationFile(benchmark::State& state) {
  const dele::DelegationFile file =
      make_file(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const std::string text = dele::serialize(file);
    benchmark::DoNotOptimize(text.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeDelegationFile)->Arg(1000)->Arg(30000);

void BM_ParseDelegationFile(benchmark::State& state) {
  const std::string text =
      dele::serialize(make_file(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const dele::ParseResult result = dele::parse_delegation_file(text);
    benchmark::DoNotOptimize(result.file.asn_records.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParseDelegationFile)->Arg(1000)->Arg(30000);

void BM_DiffSnapshots(benchmark::State& state) {
  const auto before = dele::expand_asn_records(
      make_file(static_cast<int>(state.range(0))));
  auto file_after = make_file(static_cast<int>(state.range(0)));
  // Perturb ~1% of records.
  util::Rng rng(9);
  for (auto& record : file_after.asn_records)
    if (rng.chance(0.01)) record.date = util::make_day(2021, 1, 1);
  const auto after = dele::expand_asn_records(file_after);
  for (auto _ : state) {
    const auto changes = dele::diff_snapshots(before, after);
    benchmark::DoNotOptimize(changes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiffSnapshots)->Arg(30000);

void BM_IntervalSetAdd(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<util::DayInterval> intervals;
  for (int i = 0; i < state.range(0); ++i) {
    const util::Day first = static_cast<util::Day>(rng.uniform(0, 20000));
    intervals.push_back(
        {first, first + static_cast<util::Day>(rng.uniform(0, 200))});
  }
  for (auto _ : state) {
    util::IntervalSet set;
    for (const util::DayInterval& interval : intervals) set.add(interval);
    benchmark::DoNotOptimize(set.runs().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalSetAdd)->Arg(100)->Arg(5000);

void BM_PathLoopDetection(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<bgp::AsPath> paths;
  for (int i = 0; i < 1024; ++i) {
    std::vector<asn::Asn> hops;
    const int length = static_cast<int>(rng.uniform(2, 8));
    for (int h = 0; h < length; ++h)
      hops.push_back(asn::Asn{static_cast<std::uint32_t>(
          rng.uniform(1, 400000))});
    paths.emplace_back(std::move(hops));
  }
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(paths[index % paths.size()].has_loop());
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathLoopDetection);

void BM_SanitizerClassify(benchmark::State& state) {
  bgp::Element element;
  element.prefix = *bgp::Prefix::parse("93.184.216.0/20");
  element.path = bgp::AsPath({64500, 3356, 1299, 205334});
  const bgp::Sanitizer sanitizer;
  for (auto _ : state)
    benchmark::DoNotOptimize(sanitizer.classify(element));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SanitizerClassify);

void BM_VisibilityAggregator(benchmark::State& state) {
  util::Rng rng(17);
  std::vector<bgp::Element> elements;
  for (int i = 0; i < state.range(0); ++i) {
    bgp::Element element;
    element.day = static_cast<util::Day>(rng.uniform(0, 30));
    element.peer = asn::Asn{static_cast<std::uint32_t>(
        3900000000U + rng.uniform(0, 30))};
    element.prefix = bgp::Prefix::ipv4(
        static_cast<std::uint32_t>(rng()), 20);
    element.path = bgp::AsPath(
        {element.peer.value, 3356,
         static_cast<std::uint32_t>(rng.uniform(1, 60000))});
    elements.push_back(std::move(element));
  }
  for (auto _ : state) {
    bgp::VisibilityAggregator aggregator;
    for (const bgp::Element& element : elements)
      aggregator.observe(element);
    benchmark::DoNotOptimize(aggregator.build().asn_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VisibilityAggregator)->Arg(10000);

void BM_ActivityDailyCounts(benchmark::State& state) {
  util::Rng rng(19);
  bgp::ActivityTable table;
  for (int i = 0; i < 50000; ++i) {
    const util::Day first = static_cast<util::Day>(rng.uniform(0, 6000));
    table.mark_active(
        asn::Asn{static_cast<std::uint32_t>(i + 1)},
        util::DayInterval{first,
                          first + static_cast<util::Day>(
                              rng.uniform(0, 2000))});
  }
  for (auto _ : state) {
    const auto counts = table.daily_counts(0, 6500);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_ActivityDailyCounts);

std::vector<bgp::Element> make_elements(int count) {
  util::Rng rng(23);
  std::vector<bgp::Element> elements;
  elements.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bgp::Element e;
    e.day = static_cast<util::Day>(rng.uniform(12000, 18000));
    e.type = rng.chance(0.1) ? bgp::ElementType::kWithdrawal
                             : bgp::ElementType::kRibEntry;
    e.collector = static_cast<bgp::CollectorId>(rng.uniform(1, 30));
    e.peer = asn::Asn{static_cast<std::uint32_t>(
        3900000000U + rng.uniform(0, 60))};
    e.prefix = bgp::Prefix::ipv4(static_cast<std::uint32_t>(rng()),
                                 static_cast<std::uint8_t>(
                                     rng.uniform(8, 24)));
    if (e.type != bgp::ElementType::kWithdrawal)
      e.path = bgp::AsPath({e.peer.value, 3356,
                            static_cast<std::uint32_t>(
                                rng.uniform(1, 400000))});
    elements.push_back(std::move(e));
  }
  return elements;
}

void BM_MrtEncode(benchmark::State& state) {
  const auto elements = make_elements(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto encoded = bgp::encode_elements(elements);
    benchmark::DoNotOptimize(encoded.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MrtEncode)->Arg(100000);

void BM_MrtDecode(benchmark::State& state) {
  const auto encoded =
      bgp::encode_elements(make_elements(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const auto decoded = bgp::decode_elements(encoded);
    benchmark::DoNotOptimize(decoded->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_MrtDecode)->Arg(100000);

void BM_RibReconstruction(benchmark::State& state) {
  const auto elements = make_elements(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bgp::RibReconstructor reconstructor;
    for (const bgp::Element& element : elements)
      reconstructor.apply(element);
    benchmark::DoNotOptimize(reconstructor.total_routes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RibReconstruction)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
