// Figure 11 (Appendix A): quarterly balance between new allocations and
// deaths per RIR — RIPE's 2005-2013 volume, APNIC/LACNIC exceeding ARIN
// around 2017.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 11",
                      "quarterly balance between ASN births and deaths");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day begin = util::make_day(2004, 1, 1);
  const util::Day end = p.truth.archive_end;
  const joint::QuarterlySeries series =
      joint::compute_quarterly(p.admin, begin, end);

  std::cout << "quarterly net balance per RIR (sparkline 2004..2021):\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::vector<double> values(series.balance[r].begin(),
                               series.balance[r].end());
    std::cout << "  " << asn::display_name(rir) << "\t"
              << util::sparkline(values) << "\n";
  }

  const auto net_since = [&](std::size_t r, int from_year) {
    std::int64_t total = 0;
    for (std::size_t q = 0; q < series.balance[r].size(); ++q)
      if (series.quarter_index[q] / 4 >= from_year)
        total += series.balance[r][q];
    return total;
  };

  std::cout << "\nnet allocations since 2018 (paper: ~4,000 APNIC and "
               "LACNIC, ~3,000 ARIN, ~4,400 RIPE NCC):\n";
  util::TextTable table({"RIR", "net since 2018"});
  for (asn::Rir rir : asn::kAllRirs)
    table.add_row({std::string(asn::display_name(rir)),
                   bench::fmt_count(net_since(asn::index_of(rir), 2018))});
  table.print(std::cout);

  const std::int64_t apnic = net_since(asn::index_of(asn::Rir::kApnic), 2018);
  const std::int64_t lacnic =
      net_since(asn::index_of(asn::Rir::kLacnic), 2018);
  const std::int64_t arin = net_since(asn::index_of(asn::Rir::kArin), 2018);
  std::cout << "\nAPNIC > ARIN in recent net growth: "
            << (apnic > arin ? "yes" : "no")
            << "; LACNIC > ARIN: " << (lacnic > arin ? "yes" : "no")
            << " (paper: both yes)\n";
  return 0;
}
