// Table 1: overview of the delegation files collected per RIR — first
// regular file, first extended file, number of files — plus the archive
// health statistics from 3.1 (missing-file rate, restoration step counts).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Table 1",
                      "delegation files collected per RIR + archive health");

  const bench::Pipeline& p = bench::Pipeline::instance();

  util::TextTable table({"RIR", "First regular", "First extended",
                         "Files present", "Missing", "Corrupt",
                         "Missing rate"});
  std::int64_t total_files = 0;
  for (asn::Rir rir : asn::kAllRirs) {
    const asn::RirFacts& facts = asn::facts(rir);
    const restore::RestorationReport& report =
        p.restored.registry(rir).report;

    // Days each channel was expected to publish within the archive window.
    const util::Day end = p.truth.archive_end;
    std::int64_t expected = 0;
    expected += end - std::max(p.truth.archive_begin,
                               facts.first_regular_file) + 1;
    if (facts.last_regular_file)
      expected -= end - *facts.last_regular_file;
    expected += end - std::max(p.truth.archive_begin,
                               facts.first_extended_file) + 1;

    const std::int64_t present =
        expected - report.files_missing - report.files_corrupt;
    total_files += present;
    table.add_row({std::string(asn::display_name(rir)),
                   util::format_iso(facts.first_regular_file),
                   util::format_iso(facts.first_extended_file),
                   bench::fmt_count(present),
                   bench::fmt_count(report.files_missing),
                   bench::fmt_count(report.files_corrupt),
                   bench::fmt_pct(static_cast<double>(report.files_missing) /
                                  static_cast<double>(expected))});
  }
  table.print(std::cout);
  std::cout << "\ntotal files: " << bench::fmt_count(total_files)
            << "  (paper: 30,945 across RIRs; <1% of days missing, longest "
               "run 7 days)\n";

  std::cout << "\nrestoration audit (3.1):\n";
  util::TextTable audit({"RIR", "gap-filled days", "recovered from regular",
                         "same-day conflicts", "duplicates", "future dates",
                         "placeholder dates"});
  for (asn::Rir rir : asn::kAllRirs) {
    const restore::RestorationReport& report =
        p.restored.registry(rir).report;
    audit.add_row({std::string(asn::display_name(rir)),
                   bench::fmt_count(report.gap_filled_days),
                   bench::fmt_count(report.recovered_from_regular),
                   bench::fmt_count(report.newest_conflict_days),
                   bench::fmt_count(report.duplicates_resolved),
                   bench::fmt_count(report.future_dates_fixed),
                   bench::fmt_count(report.placeholder_dates_restored)});
  }
  audit.print(std::cout);
  std::cout << "\ncross-RIR (3.1.vi): "
            << bench::fmt_count(p.restored.cross.overlapping_asns)
            << " overlapping ASNs (paper: ~450), "
            << bench::fmt_count(p.restored.cross.stale_spans_trimmed)
            << " stale transfer spans trimmed, "
            << bench::fmt_count(p.restored.cross.mistaken_spans_removed)
            << " mistaken allocations removed\n";
  return 0;
}
