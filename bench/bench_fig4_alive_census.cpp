// Figure 4 (and the single-axis Figure 13 variant): number of ASNs per day
// that are administratively and operationally alive, per RIR and overall —
// including the RIPE-overtakes-ARIN crossovers and the allocated-but-unrouted
// gap.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 4",
                      "administrative vs BGP alive ASNs per day, per RIR");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day begin = p.truth.archive_begin;
  const util::Day end = p.truth.archive_end;
  const joint::DailyCensus census = joint::compute_census(p.admin, p.op,
                                                          begin, end);

  // Yearly sample table.
  util::TextTable table({"date", "AfriNIC", "APNIC", "ARIN", "LACNIC",
                         "RIPE NCC", "Overall adm", "Overall BGP", "gap"});
  for (int year = 2004; year <= 2021; year += 2) {
    const util::Day day = util::make_day(year, 3, 1);
    if (day < begin || day > end) continue;
    const auto index = static_cast<std::size_t>(day - begin);
    std::vector<std::string> row = {util::format_iso(day)};
    for (asn::Rir rir : asn::kAllRirs) {
      const std::size_t r = asn::index_of(rir);
      row.push_back(bench::fmt_count(census.admin_per_rir[r][index]) + "/" +
                    bench::fmt_count(census.op_per_rir[r][index]));
    }
    const std::int32_t admin_total = census.admin_overall[index];
    const std::int32_t op_total = census.op_overall[index];
    row.push_back(bench::fmt_count(admin_total));
    row.push_back(bench::fmt_count(op_total));
    row.push_back(bench::fmt_pct(
        admin_total == 0 ? 0
                         : static_cast<double>(admin_total - op_total) /
                               static_cast<double>(admin_total)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nper-RIR admin series (sparklines over the archive):\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::cout << "  " << asn::display_name(rir) << "\tadm "
              << util::sparkline(bench::downsample(census.admin_per_rir[r]))
              << "\n\t\tbgp "
              << util::sparkline(bench::downsample(census.op_per_rir[r]))
              << "\n";
  }

  const std::size_t ripe = asn::index_of(asn::Rir::kRipeNcc);
  const std::size_t arin = asn::index_of(asn::Rir::kArin);
  const util::Day admin_crossover = joint::crossover_day(
      census.admin_per_rir[ripe], census.admin_per_rir[arin], begin);
  const util::Day op_crossover = joint::crossover_day(
      census.op_per_rir[ripe], census.op_per_rir[arin], begin);
  std::cout << "\nRIPE NCC overtakes ARIN:\n";
  std::cout << "  administrative: "
            << (admin_crossover < 0 ? std::string("never")
                                    : util::format_iso(admin_crossover))
            << "  (paper: 2012)\n";
  std::cout << "  operational:    "
            << (op_crossover < 0 ? std::string("never")
                                 : util::format_iso(op_crossover))
            << "  (paper: 2009)\n";

  const auto last = census.days() - 1;
  const std::int32_t final_admin = census.admin_overall[last];
  const std::int32_t final_op = census.op_overall[last];
  std::cout << "\nMarch 2021: " << bench::fmt_count(final_admin)
            << " allocated vs " << bench::fmt_count(final_op)
            << " alive in BGP -> gap " << bench::fmt_count(final_admin -
                                                           final_op)
            << " ASNs = " << bench::fmt_pct(
                   static_cast<double>(final_admin - final_op) /
                   static_cast<double>(final_admin))
            << " of allocations (paper: >27,800 ASNs, ~28%)\n";
  return 0;
}
