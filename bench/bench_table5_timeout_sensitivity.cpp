// Table 5 (Appendix C): how the taxonomy distribution shifts when the
// inactivity timeout is 15 / 30 / 50 days instead of 30.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Table 5 / Appendix C",
                      "taxonomy sensitivity to the inactivity timeout");

  const bench::Pipeline& p = bench::Pipeline::instance();

  constexpr std::int64_t kPaper[3][3] = {
      {99834, 4390, 1750},  // 15 days
      {99790, 4434, 1667},  // 30 days (baseline)
      {99713, 4511, 1592},  // 50 days
  };

  util::TextTable table({"Timeout", "Complete overlap", "Partial overlap",
                         "Op. outside delegation", "paper (C/P/O)"});
  std::int64_t baseline[3] = {0, 0, 0};
  const int timeouts[] = {15, 30, 50};
  for (int t = 0; t < 3; ++t) {
    const lifetimes::OpDataset op =
        lifetimes::build_op_lifetimes(p.op_world.activity, timeouts[t]);
    const joint::Taxonomy taxonomy = joint::classify(p.admin, op);
    const joint::OutsideSplit split =
        joint::split_outside(taxonomy, p.admin, op);
    const std::int64_t outside_asns = static_cast<std::int64_t>(
        split.ever_allocated.size() + split.never_allocated.size());
    const std::int64_t values[3] = {taxonomy.admin_counts[0],
                                    taxonomy.admin_counts[1], outside_asns};
    if (timeouts[t] == 30)
      for (int i = 0; i < 3; ++i) baseline[i] = values[i];

    const auto cell = [&](int i) {
      std::string text = bench::fmt_count(values[i]);
      if (timeouts[t] != 30 && baseline[i] != 0) {
        const double delta =
            (static_cast<double>(values[i]) - static_cast<double>(
                 baseline[i])) /
            static_cast<double>(baseline[i]);
        char buf[32];
        std::snprintf(buf, sizeof buf, " (%+.2f%%)", delta * 100);
        text += buf;
      }
      return text;
    };
    char paper[64];
    std::snprintf(paper, sizeof paper, "%lld/%lld/%lld",
                  static_cast<long long>(kPaper[t][0]),
                  static_cast<long long>(kPaper[t][1]),
                  static_cast<long long>(kPaper[t][2]));
    table.add_row({std::to_string(timeouts[t]), cell(0), cell(1), cell(2),
                   paper});
  }
  table.print(std::cout);
  std::cout << "\n(deltas are computed against the 30-day baseline in run "
               "order: the 15-day row shows raw counts; the paper reports "
               "fluctuations under 5%, symmetric around 30 days — the "
               "never-used category is timeout-invariant and omitted)\n";
  return 0;
}
