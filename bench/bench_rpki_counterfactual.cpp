// RPKI counterfactual (paper 9): if victims had issued ROAs and networks
// dropped RPKI-invalid announcements, how much of the squatting and
// misconfiguration activity would have been contained? Sweeps ROA coverage
// and validates the announcements of every labelled event day.
#include <unordered_set>

#include "common.hpp"
#include "joint/rpki.hpp"

int main() {
  using namespace pl;
  bench::print_banner("RPKI counterfactual",
                      "ROA coverage vs contained malicious/misconfig "
                      "announcements");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(p.op_world, infra, p.seed + 13);

  // The legitimate prefix universe: every planned benign life announces its
  // ASN's own deterministic prefixes.
  struct Event {
    asn::Asn origin;
    util::Day probe;
    bool malicious;
  };
  std::vector<Event> events;
  for (const bgpsim::SquatEvent& event : p.op_world.attacks.events)
    events.push_back({event.asn,
                      event.days.first + static_cast<util::Day>(
                          event.days.length() / 2),
                      true});
  for (const bgpsim::MisconfigEvent& event : p.op_world.misconfigs.events)
    events.push_back({event.bogus_origin,
                      event.days.first + static_cast<util::Day>(
                          event.days.length() / 2),
                      false});

  util::TextTable table({"ROA coverage", "ROAs", "squat ann. dropped",
                         "misconfig ann. dropped", "legit ann. dropped "
                         "(false positives)"});

  for (const double coverage : {0.25, 0.50, 0.75, 1.00}) {
    // Issue ROAs for a deterministic slice of legitimate holders.
    joint::RoaTable roas;
    util::Rng rng(p.seed + static_cast<std::uint64_t>(coverage * 100));
    for (const bgpsim::AsnOpPlan& plan : p.op_world.behavior.plans) {
      if (plan.truth_life_index < 0) continue;  // never-allocated: no ROA
      if (!rng.chance(coverage)) continue;
      int max_prefixes = 0;
      for (const bgpsim::OpLifePlan& life : plan.lives)
        if (!life.malicious && life.victim == 0)
          max_prefixes = std::max(max_prefixes, life.prefixes_per_day);
      for (int i = 0; i < max_prefixes; ++i) {
        const bgp::Prefix prefix =
            bgpsim::RouteGenerator::origin_prefix(plan.asn, i);
        roas.add(joint::Roa{prefix, plan.asn, prefix.length()});
      }
    }

    joint::RpkiStats squat_stats;
    joint::RpkiStats misconfig_stats;
    joint::RpkiStats legit_stats;
    for (const Event& event : events) {
      const std::unordered_set<std::uint32_t> watch = {event.origin.value};
      for (const bgp::Element& element :
           generator.elements_for_day(event.probe, &watch)) {
        const auto origin = element.path.origin();
        if (!origin || !(origin == event.origin)) continue;
        const joint::RpkiValidity validity =
            roas.validate(element.prefix, *origin);
        (event.malicious ? squat_stats : misconfig_stats).record(validity);
      }
    }
    // Legitimate traffic sample: every benign life's own announcements
    // (victim-space lives and malicious lives excluded by construction).
    for (const bgpsim::AsnOpPlan& plan : p.op_world.behavior.plans) {
      if (plan.truth_life_index < 0) continue;
      for (const bgpsim::OpLifePlan& life : plan.lives) {
        if (life.malicious || life.victim != 0 || life.peer_visibility < 2)
          continue;
        for (int i = 0; i < life.prefixes_per_day; ++i)
          legit_stats.record(roas.validate(
              bgpsim::RouteGenerator::origin_prefix(plan.asn, i), plan.asn));
        break;  // one life per plan is a representative sample
      }
    }

    const auto dropped = [](const joint::RpkiStats& stats) {
      return stats.total() == 0
                 ? std::string("-")
                 : util::percent(static_cast<double>(stats.invalid) /
                                 static_cast<double>(stats.total()));
    };
    table.add_row({bench::fmt_pct(coverage, 0),
                   bench::fmt_count(static_cast<std::int64_t>(roas.size())),
                   dropped(squat_stats), dropped(misconfig_stats),
                   dropped(legit_stats)});
  }
  table.print(std::cout);

  std::cout << "\n(the paper's 9 conclusion, quantified: typo MOAS "
               "conflicts announce actively-ROA'd space and are fully "
               "contained at high coverage; squats are contained only for "
               "the slice of hijacked space whose holders registered ROAs — "
               "squatted-but-never-announced space stays RPKI-unknown, "
               "matching the paper's caveat. Partial-coverage false "
               "positives are more-specifics of covered aggregates whose "
               "holders lack their own ROAs — the known deployment-order "
               "hazard; at full coverage they vanish.)\n";
  return 0;
}
