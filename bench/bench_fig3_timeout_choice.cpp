// Figure 3: sensitivity analysis behind the 30-day inactivity timeout —
// the CDF of per-ASN BGP activity gaps and the fraction of administrative
// lives containing one or no operational life, as the timeout sweeps.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 3", "BGP activity timeout sensitivity");

  const bench::Pipeline& p = bench::Pipeline::instance();

  std::vector<int> timeouts;
  for (int t = 1; t <= 360; t += (t < 60 ? 1 : 10)) timeouts.push_back(t);
  const lifetimes::SensitivityCurves curves =
      lifetimes::analyze_timeout_sensitivity(p.op_world.activity, p.admin,
                                             timeouts);

  util::TextTable table({"timeout (days)", "gap CDF", "<=1 op life CDF"});
  for (const int probe : {1, 5, 10, 15, 20, 30, 50, 100, 180, 360}) {
    const auto it =
        std::find(curves.timeouts.begin(), curves.timeouts.end(), probe);
    if (it == curves.timeouts.end()) continue;
    const auto index =
        static_cast<std::size_t>(it - curves.timeouts.begin());
    table.add_row({std::to_string(probe),
                   bench::fmt_pct(curves.gap_cdf[index]),
                   bench::fmt_pct(curves.one_or_less_cdf[index])});
  }
  table.print(std::cout);

  std::vector<double> gap_series(curves.gap_cdf.begin(),
                                 curves.gap_cdf.end());
  std::vector<double> one_series(curves.one_or_less_cdf.begin(),
                                 curves.one_or_less_cdf.end());
  std::cout << "\ngap CDF      " << util::sparkline(gap_series) << "\n";
  std::cout << "<=1 op life  " << util::sparkline(one_series) << "\n";

  const lifetimes::TimeoutChoice choice =
      lifetimes::evaluate_choice(p.op_world.activity, p.admin, 30);
  std::cout << "\nchosen timeout 30 days: covers "
            << bench::fmt_pct(choice.gap_fraction)
            << " of activity gaps (paper: 70.1%) and "
            << bench::fmt_pct(choice.one_or_less_fraction)
            << " of admin lives have <=1 op life (paper: 83%)\n";
  return 0;
}
