// Figure 5: CDF of the duration of administrative lifetimes per RIR, with
// the short-life zoom the paper highlights (life <= 1 year fractions).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 5",
                      "CDF of administrative lifetime duration per RIR");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const auto durations = joint::durations_per_rir(p.admin);

  util::TextTable table({"RIR", "<=1y", ">5y", ">10y", "paper <=1y",
                         "paper >5y", "paper >10y"});
  constexpr const char* kPaperShort[] = {"9%", "11%", "6%", "13%", "8%"};
  constexpr const char* kPaperFive[] = {"-", "-", "65%", "44%", "-"};
  constexpr const char* kPaperTen[] = {"-", "-", "42%", "19%", "-"};
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    const util::Ecdf ecdf{std::vector<double>(durations[r].begin(),
                                              durations[r].end())};
    table.add_row({std::string(asn::display_name(rir)),
                   bench::fmt_pct(ecdf.at(365)),
                   bench::fmt_pct(1.0 - ecdf.at(5 * 365)),
                   bench::fmt_pct(1.0 - ecdf.at(10 * 365)),
                   kPaperShort[r], kPaperFive[r], kPaperTen[r]});
  }
  table.print(std::cout);

  std::cout << "\nCDF tabulation (fraction of lives with duration <= d):\n";
  util::TextTable cdf({"days", "AfriNIC", "APNIC", "ARIN", "LACNIC",
                       "RIPE NCC"});
  for (const int days : {90, 180, 365, 730, 1825, 3650, 5475, 6500}) {
    std::vector<std::string> row = {std::to_string(days)};
    for (asn::Rir rir : asn::kAllRirs) {
      const std::size_t r = asn::index_of(rir);
      const util::Ecdf ecdf{std::vector<double>(durations[r].begin(),
                                                durations[r].end())};
      row.push_back(bench::fmt_pct(ecdf.at(days)));
    }
    cdf.add_row(std::move(row));
  }
  cdf.print(std::cout);
  std::cout << "\n(paper shape: ARIN longest-lived, LACNIC shortest; a "
               "significant share of lives under 1 year in the smaller "
               "RIRs)\n";
  return 0;
}
