// Figure 7: CDF of the utilization of administrative lifetimes that fully
// contain their operational lifetimes, plus the 6.1.1 companion statistics
// (deallocation lag, activation delay, sporadic use).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 7",
                      "utilization of complete-overlap administrative lives");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::UtilizationAnalysis analysis =
      joint::analyze_utilization(p.taxonomy, p.admin, p.op);

  const util::Ecdf ecdf{std::vector<double>(analysis.ratios.begin(),
                                            analysis.ratios.end())};
  util::TextTable table({"usage threshold", "fraction of lives above",
                         "paper"});
  table.add_row({">95%", bench::fmt_pct(1.0 - ecdf.at(0.95)), "45%"});
  table.add_row({">75%", bench::fmt_pct(1.0 - ecdf.at(0.75)), "70%"});
  table.add_row({"<30%", bench::fmt_pct(ecdf.at(0.30)), "10%"});
  table.print(std::cout);

  std::cout << "\nutilization CDF: ";
  std::vector<double> series;
  for (int i = 0; i <= 50; ++i)
    series.push_back(ecdf.at(static_cast<double>(i) / 50.0));
  std::cout << util::sparkline(series) << " (x: usage 0..1)\n";

  std::cout << "\nlate deallocations — median days from last BGP activity "
               "to deallocation (paper: APNIC >6mo, others >10mo, AfriNIC "
               "~530d):\n";
  util::TextTable lag({"RIR", "median lag (days)", "median activation delay "
                       "(days, paper: >1 month all RIRs)"});
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    lag.add_row({std::string(asn::display_name(rir)),
                 std::to_string(static_cast<int>(util::median(
                     analysis.dealloc_lag_days[r]))),
                 std::to_string(static_cast<int>(util::median(
                     analysis.activation_delay_days[r])))});
  }
  lag.print(std::cout);

  // Sporadic / intermittent use.
  std::int64_t one = 0;
  std::int64_t two = 0;
  std::int64_t more = 0;
  for (const int lives : analysis.op_lives_per_admin)
    (lives == 1 ? one : lives == 2 ? two : more) += 1;
  const double total = static_cast<double>(one + two + more);
  std::cout << "\nop lives per complete-overlap admin life: 1 -> "
            << bench::fmt_pct(one / total) << " (paper 84.1%), 2 -> "
            << bench::fmt_pct(two / total) << " (paper 10.4%), >2 -> "
            << bench::fmt_pct(more / total) << " (paper 5.4%)\n";
  std::cout << "ASNs with >10 op lives in one admin life: "
            << bench::fmt_count(static_cast<std::int64_t>(
                   analysis.hyperactive_asns.size()))
            << " (paper: 287, mostly sibling-rich organizations)\n";
  std::cout << "multi-op-life lives with >365-day spacing: "
            << bench::fmt_count(analysis.largely_spaced_lives) << " of "
            << bench::fmt_count(analysis.multi_op_lives) << " = "
            << bench::fmt_pct(analysis.multi_op_lives == 0
                                  ? 0
                                  : static_cast<double>(
                                        analysis.largely_spaced_lives) /
                                        static_cast<double>(
                                            analysis.multi_op_lives))
            << " (paper: 3,789 = 23.9%)\n";
  return 0;
}
