// Shared harness for the reproduction benches: builds the full paper-scale
// pipeline once per binary and offers the printing conventions all benches
// share (paper reference value next to the measured one).
//
// Environment knobs:
//   PL_BENCH_SCALE  world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED   world seed  (default 42)
//   PL_THREADS      worker threads for the parallel stages (0 = serial)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "joint/birdseye.hpp"
#include "obs/latency.hpp"
#include "joint/outside.hpp"
#include "joint/partial.hpp"
#include "joint/squat.hpp"
#include "joint/unused.hpp"
#include "joint/utilization.hpp"
#include "lifetimes/sensitivity.hpp"
#include "pipeline/pipeline.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pl::bench {

/// The whole pipeline at paper scale, built once. A thin adapter over
/// `pipeline::run_simulated` — the five-stage wiring (seed offsets,
/// ERX/IANA hooks, BGP duplicate hint) lives only in pl_pipeline, so the
/// benches can never drift from what the tests and deployments run.
struct Pipeline {
  double scale = 1.0;
  std::uint64_t seed = 42;
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;

  static const Pipeline& instance() {
    static const Pipeline pipeline = build();
    return pipeline;
  }

  static Pipeline build() {
    Pipeline p;
    if (const char* env = std::getenv("PL_BENCH_SCALE"))
      p.scale = std::atof(env);
    if (const char* env = std::getenv("PL_BENCH_SEED"))
      p.seed = std::strtoull(env, nullptr, 10);

    std::cerr << "[bench] building world: scale=" << p.scale
              << " seed=" << p.seed << "\n";
    pipeline::Config config;
    config.seed = p.seed;
    config.scale = p.scale;
    pipeline::Result result = pipeline::run_simulated(config);
    p.truth = std::move(result.truth);
    p.op_world = std::move(result.op_world);
    p.restored = std::move(result.restored);
    p.admin = std::move(result.admin);
    p.op = std::move(result.op);
    p.taxonomy = std::move(result.taxonomy);
    std::cerr << "[bench] pipeline ready: "
              << util::with_commas(static_cast<std::int64_t>(
                     p.admin.lifetimes.size()))
              << " admin lives, "
              << util::with_commas(static_cast<std::int64_t>(
                     p.op.lifetimes.size()))
              << " op lives\n";
    return p;
  }
};

inline std::string fmt_count(std::int64_t value) {
  return util::with_commas(value);
}

inline std::string fmt_pct(double fraction, int decimals = 1) {
  return util::percent(fraction, decimals);
}

/// Header every bench prints: which paper artifact it regenerates.
inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "== " << artifact << " — " << description << " ==\n";
  std::cout << "(reproduction of 'The parallel lives of Autonomous Systems: "
               "ASN Allocations vs. BGP', IMC '21; synthetic world, shapes "
               "comparable, absolute numbers scale with PL_BENCH_SCALE)\n\n";
}

/// Minimal JSON emitter for the machine-readable bench artifacts
/// (BENCH_*.json). Tracks nesting and comma placement so callers never
/// hand-place separators; `pretty` adds two-space-indented newlines. Keys
/// and string values are escaped per RFC 8259 (the artifacts are re-parsed
/// by obs::from_json-style tooling and by the dashboards).
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    element();
    quote(name);
    out_ += ": ";
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    element();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v) {
    element();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v) {
    element();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    element();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v, int decimals = 3) {
    element();
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, v);
    out_ += buffer;
    return *this;
  }

  /// The finished document (call after the outermost container closes).
  const std::string& str() const noexcept { return out_; }

 private:
  JsonWriter& open(char bracket) {
    element();
    out_ += bracket;
    first_.push_back(true);
    return *this;
  }

  JsonWriter& close(char bracket) {
    const bool was_empty = first_.back();
    first_.pop_back();
    if (pretty_ && !was_empty) {
      out_ += '\n';
      out_.append(2 * first_.size(), ' ');
    }
    out_ += bracket;
    return *this;
  }

  /// Comma/indent bookkeeping before every element (key, value, or nested
  /// container start). A value directly after `key()` attaches in place.
  void element() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (!first_.back()) out_ += ',';
    first_.back() = false;
    if (pretty_) {
      out_ += '\n';
      out_.append(2 * first_.size(), ' ');
    }
  }

  void quote(std::string_view text) {
    out_ += '"';
    for (const char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  bool pretty_;
  bool after_key_ = false;
  std::string out_;
  std::vector<bool> first_;  ///< per open container: no elements yet
};

/// Down-sample a daily series to at most `points` + 1 values for
/// sparklines. The stride rounds up so long series cannot overshoot the
/// budget, and the final day is always included so the tail of the series
/// is never dropped.
inline std::vector<double> downsample(const std::vector<std::int32_t>& series,
                                      std::size_t points = 60) {
  std::vector<double> out;
  if (series.empty() || points == 0) return out;
  const std::size_t stride = (series.size() + points - 1) / points;
  for (std::size_t i = 0; i < series.size(); i += stride)
    out.push_back(series[i]);
  if ((series.size() - 1) % stride != 0) out.push_back(series.back());
  return out;
}

/// Shared percentile-summary block for BENCH_*.json artifacts: every bench
/// that reports a latency distribution emits the same shape (count, sum,
/// p50/p90/p99/p999 in the histogram's native unit), so trajectory tooling
/// can diff serve and pipeline runs with one parser. The quantiles are the
/// deterministic upper-bound reading of the log2 histogram (DESIGN.md §14.3),
/// never an interpolation. Under PL_OBS_OFF the snapshot is empty and every
/// field reads zero — the block stays present so the schema is stable.
inline void emit_latency_summary(JsonWriter& json,
                                 const obs::LatencyHistoSnapshot& latency) {
  json.begin_object();
  json.key("count").value(latency.count);
  json.key("sum").value(latency.sum);
  json.key("p50").value(latency.percentile(0.50));
  json.key("p90").value(latency.percentile(0.90));
  json.key("p99").value(latency.percentile(0.99));
  json.key("p999").value(latency.percentile(0.999));
  json.end_object();
}

}  // namespace pl::bench
