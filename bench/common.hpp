// Shared harness for the reproduction benches: builds the full paper-scale
// pipeline once per binary and offers the printing conventions all benches
// share (paper reference value next to the measured one).
//
// Environment knobs:
//   PL_BENCH_SCALE  world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED   world seed  (default 42)
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "bgpsim/route_gen.hpp"
#include "joint/birdseye.hpp"
#include "joint/outside.hpp"
#include "joint/partial.hpp"
#include "joint/squat.hpp"
#include "joint/taxonomy.hpp"
#include "joint/unused.hpp"
#include "joint/utilization.hpp"
#include "lifetimes/sensitivity.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pl::bench {

/// The whole pipeline at paper scale, built once.
struct Pipeline {
  double scale = 1.0;
  std::uint64_t seed = 42;
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;

  static const Pipeline& instance() {
    static const Pipeline pipeline = build();
    return pipeline;
  }

  static Pipeline build() {
    Pipeline p;
    if (const char* env = std::getenv("PL_BENCH_SCALE"))
      p.scale = std::atof(env);
    if (const char* env = std::getenv("PL_BENCH_SEED"))
      p.seed = std::strtoull(env, nullptr, 10);

    std::cerr << "[bench] building world: scale=" << p.scale
              << " seed=" << p.seed << "\n";
    p.truth = rirsim::build_world(
        rirsim::WorldConfig{p.seed, p.scale, asn::archive_begin_day(),
                            asn::archive_end_day()});

    bgpsim::OpWorldConfig op_config;
    op_config.behavior.seed = p.seed + 1;
    op_config.attacks.seed = p.seed + 2;
    op_config.attacks.scale = p.scale;
    op_config.misconfigs.seed = p.seed + 3;
    op_config.misconfigs.scale = p.scale;
    p.op_world = bgpsim::build_op_world(p.truth, op_config);

    rirsim::InjectorConfig injector;
    injector.seed = p.seed + 4;
    injector.scale = p.scale;
    const rirsim::SimulatedArchive archive(p.truth, injector);
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
    for (asn::Rir rir : asn::kAllRirs)
      streams[asn::index_of(rir)] = archive.stream(rir);
    const rirsim::GroundTruth& truth_ref = p.truth;
    p.restored = restore::restore_archive(
        std::move(streams), restore::RestoreConfig{}, &p.truth.erx,
        [&truth_ref](asn::Asn a) { return truth_ref.iana.owner(a); },
        p.truth.archive_begin, &p.op_world.activity);

    p.admin = lifetimes::build_admin_lifetimes(p.restored,
                                               p.truth.archive_end);
    p.op = lifetimes::build_op_lifetimes(p.op_world.activity);
    p.taxonomy = joint::classify(p.admin, p.op);
    std::cerr << "[bench] pipeline ready: "
              << util::with_commas(static_cast<std::int64_t>(
                     p.admin.lifetimes.size()))
              << " admin lives, "
              << util::with_commas(static_cast<std::int64_t>(
                     p.op.lifetimes.size()))
              << " op lives\n";
    return p;
  }
};

inline std::string fmt_count(std::int64_t value) {
  return util::with_commas(value);
}

inline std::string fmt_pct(double fraction, int decimals = 1) {
  return util::percent(fraction, decimals);
}

/// Header every bench prints: which paper artifact it regenerates.
inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "== " << artifact << " — " << description << " ==\n";
  std::cout << "(reproduction of 'The parallel lives of Autonomous Systems: "
               "ASN Allocations vs. BGP', IMC '21; synthetic world, shapes "
               "comparable, absolute numbers scale with PL_BENCH_SCALE)\n\n";
}

/// Down-sample a daily series to roughly `points` values for sparklines.
inline std::vector<double> downsample(const std::vector<std::int32_t>& series,
                                      std::size_t points = 60) {
  std::vector<double> out;
  if (series.empty()) return out;
  const std::size_t stride = std::max<std::size_t>(1, series.size() / points);
  for (std::size_t i = 0; i < series.size(); i += stride)
    out.push_back(series[i]);
  return out;
}

}  // namespace pl::bench
