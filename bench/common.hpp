// Shared harness for the reproduction benches: builds the full paper-scale
// pipeline once per binary and offers the printing conventions all benches
// share (paper reference value next to the measured one).
//
// Environment knobs:
//   PL_BENCH_SCALE  world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED   world seed  (default 42)
//   PL_THREADS      worker threads for the parallel stages (0 = serial)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "joint/birdseye.hpp"
#include "joint/outside.hpp"
#include "joint/partial.hpp"
#include "joint/squat.hpp"
#include "joint/unused.hpp"
#include "joint/utilization.hpp"
#include "lifetimes/sensitivity.hpp"
#include "pipeline/pipeline.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pl::bench {

/// The whole pipeline at paper scale, built once. A thin adapter over
/// `pipeline::run_simulated` — the five-stage wiring (seed offsets,
/// ERX/IANA hooks, BGP duplicate hint) lives only in pl_pipeline, so the
/// benches can never drift from what the tests and deployments run.
struct Pipeline {
  double scale = 1.0;
  std::uint64_t seed = 42;
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;

  static const Pipeline& instance() {
    static const Pipeline pipeline = build();
    return pipeline;
  }

  static Pipeline build() {
    Pipeline p;
    if (const char* env = std::getenv("PL_BENCH_SCALE"))
      p.scale = std::atof(env);
    if (const char* env = std::getenv("PL_BENCH_SEED"))
      p.seed = std::strtoull(env, nullptr, 10);

    std::cerr << "[bench] building world: scale=" << p.scale
              << " seed=" << p.seed << "\n";
    pipeline::Config config;
    config.seed = p.seed;
    config.scale = p.scale;
    pipeline::Result result = pipeline::run_simulated(config);
    p.truth = std::move(result.truth);
    p.op_world = std::move(result.op_world);
    p.restored = std::move(result.restored);
    p.admin = std::move(result.admin);
    p.op = std::move(result.op);
    p.taxonomy = std::move(result.taxonomy);
    std::cerr << "[bench] pipeline ready: "
              << util::with_commas(static_cast<std::int64_t>(
                     p.admin.lifetimes.size()))
              << " admin lives, "
              << util::with_commas(static_cast<std::int64_t>(
                     p.op.lifetimes.size()))
              << " op lives\n";
    return p;
  }
};

inline std::string fmt_count(std::int64_t value) {
  return util::with_commas(value);
}

inline std::string fmt_pct(double fraction, int decimals = 1) {
  return util::percent(fraction, decimals);
}

/// Header every bench prints: which paper artifact it regenerates.
inline void print_banner(const std::string& artifact,
                         const std::string& description) {
  std::cout << "== " << artifact << " — " << description << " ==\n";
  std::cout << "(reproduction of 'The parallel lives of Autonomous Systems: "
               "ASN Allocations vs. BGP', IMC '21; synthetic world, shapes "
               "comparable, absolute numbers scale with PL_BENCH_SCALE)\n\n";
}

/// Down-sample a daily series to at most `points` + 1 values for
/// sparklines. The stride rounds up so long series cannot overshoot the
/// budget, and the final day is always included so the tail of the series
/// is never dropped.
inline std::vector<double> downsample(const std::vector<std::int32_t>& series,
                                      std::size_t points = 60) {
  std::vector<double> out;
  if (series.empty() || points == 0) return out;
  const std::size_t stride = (series.size() + points - 1) / points;
  for (std::size_t i = 0; i < series.size(); i += stride)
    out.push_back(series[i]);
  if ((series.size() - 1) % stride != 0) out.push_back(series.back());
  return out;
}

}  // namespace pl::bench
