// Figure 14 (Appendix A): administrative life duration per registry by
// birth year (boxplot five-number summaries) and the number of new
// allocations per (RIR, year) — life expectancy converges across RIRs
// after ~2010.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 14",
                      "life duration by birth year per RIR (boxplots)");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::BirthYearStats stats =
      joint::compute_birth_year_stats(p.admin, 2004, 2021);

  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::cout << asn::display_name(rir) << ":\n";
    util::TextTable table({"birth year", "n", "min", "Q1", "median", "Q3",
                           "max"});
    for (int year = 2004; year <= 2021; year += 2) {
      const auto y = static_cast<std::size_t>(year - stats.first_year);
      const auto& sample = stats.durations[r][y];
      if (sample.empty()) continue;
      const util::FiveNumberSummary s = util::summarize(sample);
      table.add_row({std::to_string(year),
                     bench::fmt_count(static_cast<std::int64_t>(s.count)),
                     std::to_string(static_cast<int>(s.min)),
                     std::to_string(static_cast<int>(s.q1)),
                     std::to_string(static_cast<int>(s.median)),
                     std::to_string(static_cast<int>(s.q3)),
                     std::to_string(static_cast<int>(s.max))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Convergence check: cross-RIR spread of median duration for pre-2010 vs
  // post-2010 cohorts (durations censored by the horizon; compare same
  // cohort year across RIRs).
  const auto median_of = [&](std::size_t r, int year) {
    const auto y = static_cast<std::size_t>(year - stats.first_year);
    return util::median(stats.durations[r][y]);
  };
  const auto spread = [&](int year) {
    double lo = 1e18;
    double hi = 0;
    for (asn::Rir rir : asn::kAllRirs) {
      const double m = median_of(asn::index_of(rir), year);
      if (m <= 0) continue;
      lo = std::min(lo, m);
      hi = std::max(hi, m);
    }
    return hi <= lo ? 0.0 : (hi - lo) / hi;
  };
  std::cout << "cross-RIR relative spread of median duration: 2006 cohort "
            << bench::fmt_pct(spread(2006)) << ", 2008 cohort "
            << bench::fmt_pct(spread(2008)) << ", 2012 cohort "
            << bench::fmt_pct(spread(2012)) << ", 2014 cohort "
            << bench::fmt_pct(spread(2014))
            << " (paper: life expectancy becomes similar across RIRs from "
               "~2010)\n";

  std::cout << "\nnew allocations per year (sparkline 2004..2021):\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::vector<double> values(stats.births[r].begin(),
                               stats.births[r].end());
    std::cout << "  " << asn::display_name(rir) << "\t"
              << util::sparkline(values) << "\n";
  }
  return 0;
}
