// Table 3: distribution of the four joint-taxonomy categories over
// administrative and operational lives (Fig. 6's buckets).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Table 3", "joint taxonomy category distribution");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::Taxonomy& taxonomy = p.taxonomy;

  constexpr std::int64_t kPaperAdmin[] = {99790, 4434, 22729, 0};
  constexpr std::int64_t kPaperOp[] = {130397, 5434, 0, 2382};
  constexpr const char* kLabels[] = {
      "6.1 - Complete overlap", "6.2 - Partial overlap",
      "6.3 - Unused administrative lives",
      "6.4 - Op. lives outside delegation"};

  util::TextTable table({"Category", "Adm. lives", "(share)", "Op. lives",
                         "paper Adm.", "paper Op."});
  const double admin_total = static_cast<double>(taxonomy.total_admin());
  for (int c = 0; c < 4; ++c) {
    const auto index = static_cast<std::size_t>(c);
    table.add_row(
        {kLabels[index], bench::fmt_count(taxonomy.admin_counts[index]),
         c < 3 ? bench::fmt_pct(
                     static_cast<double>(taxonomy.admin_counts[index]) /
                     admin_total)
               : "-",
         bench::fmt_count(taxonomy.op_counts[index]),
         bench::fmt_count(kPaperAdmin[index]),
         bench::fmt_count(kPaperOp[index])});
  }
  table.add_row({"Total", bench::fmt_count(taxonomy.total_admin()), "",
                 bench::fmt_count(taxonomy.total_op()),
                 bench::fmt_count(126953), bench::fmt_count(138213)});
  table.print(std::cout);

  const joint::OutsideSplit split =
      joint::split_outside(taxonomy, p.admin, p.op);
  std::cout << "\noutside-delegation ASNs: "
            << bench::fmt_count(static_cast<std::int64_t>(
                   split.ever_allocated.size() +
                   split.never_allocated.size()))
            << " total = "
            << bench::fmt_count(static_cast<std::int64_t>(
                   split.ever_allocated.size()))
            << " previously allocated + "
            << bench::fmt_count(static_cast<std::int64_t>(
                   split.never_allocated.size()))
            << " never allocated   (paper: 1,667 = 799 + 868)\n";
  return 0;
}
