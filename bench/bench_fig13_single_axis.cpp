// Figure 13 (Appendix): the Figure 4 data on a single shared axis — all
// per-RIR and overall admin/BGP series together.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 13",
                      "admin vs BGP alive ASNs, single-axis view");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day begin = p.truth.archive_begin;
  const util::Day end = p.truth.archive_end;
  const joint::DailyCensus census = joint::compute_census(p.admin, p.op,
                                                          begin, end);

  // Global maximum for a shared scale.
  std::int32_t max_value = 0;
  for (const std::int32_t v : census.admin_overall)
    max_value = std::max(max_value, v);

  const auto scaled_sparkline = [&](const std::vector<std::int32_t>& series) {
    // Append the global max as an off-screen sentinel so every sparkline
    // shares the same scale, then drop its glyph.
    std::vector<double> values = bench::downsample(series);
    values.push_back(max_value);
    std::string line = util::sparkline(values);
    // Remove the sentinel glyph (3 UTF-8 bytes).
    if (line.size() >= 3) line.resize(line.size() - 3);
    return line;
  };

  std::cout << "shared-axis series (max = "
            << bench::fmt_count(max_value) << " ASNs):\n";
  std::cout << "  Overall adm\t" << scaled_sparkline(census.admin_overall)
            << "\n";
  std::cout << "  Overall BGP\t" << scaled_sparkline(census.op_overall)
            << "\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::cout << "  " << asn::display_name(rir) << " adm\t"
              << scaled_sparkline(census.admin_per_rir[r]) << "\n";
    std::cout << "  " << asn::display_name(rir) << " BGP\t"
              << scaled_sparkline(census.op_per_rir[r]) << "\n";
  }

  // Yearly numeric rows.
  std::cout << "\n";
  util::TextTable table({"date", "overall adm", "overall BGP",
                         "largest RIR (adm)"});
  for (int year = 2005; year <= 2021; year += 4) {
    const util::Day day = util::make_day(year, 3, 1);
    if (day < begin || day > end) continue;
    const auto index = static_cast<std::size_t>(day - begin);
    asn::Rir largest = asn::Rir::kArin;
    for (asn::Rir rir : asn::kAllRirs)
      if (census.admin_per_rir[asn::index_of(rir)][index] >
          census.admin_per_rir[asn::index_of(largest)][index])
        largest = rir;
    table.add_row({util::format_iso(day),
                   bench::fmt_count(census.admin_overall[index]),
                   bench::fmt_count(census.op_overall[index]),
                   std::string(asn::display_name(largest))});
  }
  table.print(std::cout);
  return 0;
}
