// Figure 8: daily prefix-origination series for ASNs that suddenly "wake
// up" after years of dormancy — the squatting case studies — plus the
// 6.1.2 detector evaluated against the simulator's ground-truth labels
// (which the paper did not have).
#include <unordered_set>

#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 8",
                      "awakening of dormant ASNs and squat detection");

  const bench::Pipeline& p = bench::Pipeline::instance();

  // Run the 6.1.2 detector.
  const auto candidates =
      joint::detect_dormant_squats(p.taxonomy, p.admin, p.op);
  std::unordered_set<std::uint32_t> flagged;
  for (const joint::SquatCandidate& candidate : candidates)
    flagged.insert(candidate.asn.value);

  // Ground-truth comparison (the paper could only cross-validate 76 cases
  // by hand; the simulator gives exact labels).
  std::size_t attacks = 0;
  std::size_t caught = 0;
  for (const bgpsim::SquatEvent& event : p.op_world.attacks.events) {
    if (event.post_deallocation) continue;
    ++attacks;
    if (flagged.contains(event.asn.value)) ++caught;
  }
  std::cout << "detector (dormancy >= 1000 days, relative duration <= 5%): "
            << bench::fmt_count(static_cast<std::int64_t>(candidates.size()))
            << " candidate op lives (paper: 3,051)\n";
  std::cout << "ground truth: " << attacks << " injected dormant squats, "
            << caught << " flagged -> recall "
            << bench::fmt_pct(attacks == 0 ? 0
                                           : static_cast<double>(caught) /
                                                 static_cast<double>(attacks))
            << "; precision vs labels "
            << bench::fmt_pct(candidates.empty()
                                  ? 0
                                  : static_cast<double>(caught) /
                                        static_cast<double>(
                                            candidates.size()))
            << " (paper: >=76 of 3,051 confirmed — most candidates are "
               "benign irregular operations)\n\n";

  // Case-study series: regenerate the daily prefix counts for a handful of
  // malicious awakenings via the route generator.
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(p.op_world, infra, p.seed + 9);

  std::vector<const bgpsim::SquatEvent*> cases;
  for (const bgpsim::SquatEvent& event : p.op_world.attacks.events) {
    if (event.post_deallocation || event.coordinated) continue;
    cases.push_back(&event);
    if (cases.size() == 6) break;
  }

  util::TextTable table({"ASN", "awakening", "duration (d)",
                         "prefixes/day", "upstream", "peak day sample"});
  for (const bgpsim::SquatEvent* event : cases) {
    // Count distinct prefixes on the middle day of the event via the
    // element-level path (what the paper's semi-automated inspection did).
    const util::Day mid =
        event->days.first + static_cast<util::Day>(event->days.length() / 2);
    const std::unordered_set<std::uint32_t> watch = {event->asn.value};
    bgp::OriginationTracker tracker;
    for (const bgp::Element& element :
         generator.elements_for_day(mid, &watch))
      tracker.observe(element);
    table.add_row({asn::to_string(event->asn),
                   util::format_iso(event->days.first),
                   std::to_string(event->days.length()),
                   std::to_string(event->prefixes_per_day),
                   "AS" + std::to_string(event->upstream),
                   std::to_string(tracker.prefixes_on(event->asn, mid)) +
                       " prefixes observed"});
  }
  table.print(std::cout);
  std::cout << "\n(paper cases: AS10512 — 60 /16s in Dec 2017, Spectrum "
               "hijack; AS7449 sharing upstream AS203040 'BGP Hijack "
               "Factory'; AS28071/AS262916 behind AS52302)\n";

  // Coordinated wake-up (Apr-Jul 2020, 31 ASNs, few prefixes each).
  std::size_t coordinated = 0;
  util::Day window_first = 0;
  util::Day window_last = 0;
  for (const bgpsim::SquatEvent& event : p.op_world.attacks.events) {
    if (!event.coordinated) continue;
    ++coordinated;
    if (coordinated == 1) {
      window_first = event.days.first;
      window_last = event.days.last;
    } else {
      window_first = std::min(window_first, event.days.first);
      window_last = std::max(window_last, event.days.last);
    }
  }
  std::cout << "\ncoordinated wake-up group: " << coordinated
            << " ASNs between " << util::format_iso(window_first) << " and "
            << util::format_iso(window_last)
            << " (paper: 31 ASNs, April-July 2020, a few /20s each)\n";
  return 0;
}
