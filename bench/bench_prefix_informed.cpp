// Prefix-informed lifetimes (paper 8, Limitations): compare the plain
// 30-day-timeout operational lifetimes with the prefix-continuity-aware
// builder, and show the taxonomy impact.
#include <set>
#include <unordered_set>

#include "common.hpp"
#include "lifetimes/prefix_informed.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Prefix-informed lifetimes",
                      "timeout-only vs prefix-continuity op lifetimes");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(p.op_world, infra, p.seed + 19);

  // Prefix provider: probe the middle day of a run through the route
  // generator (cached per (asn, run start) to bound work).
  std::map<std::pair<std::uint32_t, util::Day>, std::set<bgp::Prefix>> cache;
  const lifetimes::PrefixSetProvider provider =
      [&](asn::Asn asn, const util::DayInterval& run) {
        const auto key = std::make_pair(asn.value, run.first);
        const auto it = cache.find(key);
        if (it != cache.end()) return it->second;
        const util::Day probe =
            run.first + static_cast<util::Day>(run.length() / 2);
        const std::unordered_set<std::uint32_t> watch = {asn.value};
        std::set<bgp::Prefix> prefixes;
        for (const bgp::Element& element :
             generator.elements_for_day(probe, &watch))
          prefixes.insert(element.prefix);
        cache.emplace(key, prefixes);
        return prefixes;
      };

  // Restrict the comparison to ASNs with more than one activity run (the
  // only place the builders can disagree) to keep the probe count sane.
  bgp::ActivityTable multi_run;
  std::int64_t single_run_asns = 0;
  for (const auto& [asn, days] : p.op_world.activity.entries()) {
    if (days.run_count() < 2) {
      ++single_run_asns;
      continue;
    }
    for (const util::DayInterval& run : days.runs())
      multi_run.mark_active(asn, run);
  }

  const lifetimes::OpDataset plain =
      lifetimes::build_op_lifetimes(multi_run, 30);
  const lifetimes::OpDataset informed =
      lifetimes::build_prefix_informed_lifetimes(multi_run, provider);

  util::TextTable table({"builder", "op lifetimes (multi-run ASNs)",
                         "lives/ASN"});
  const auto rate = [](const lifetimes::OpDataset& dataset) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f",
                  dataset.by_asn.empty()
                      ? 0.0
                      : static_cast<double>(dataset.lifetimes.size()) /
                            static_cast<double>(dataset.by_asn.size()));
    return std::string(buf);
  };
  table.add_row({"30-day timeout (paper 4.2)",
                 bench::fmt_count(static_cast<std::int64_t>(
                     plain.lifetimes.size())),
                 rate(plain)});
  table.add_row({"prefix-informed (8)",
                 bench::fmt_count(static_cast<std::int64_t>(
                     informed.lifetimes.size())),
                 rate(informed)});
  table.print(std::cout);
  std::cout << "(" << bench::fmt_count(single_run_asns)
            << " single-run ASNs are identical under both builders and "
               "excluded)\n";

  // Where they disagree: count merges (outage continuity) and splits
  // (prefix-set changes inside the timeout).
  std::int64_t merges = 0;
  std::int64_t splits = 0;
  for (const auto& [asn, plain_indices] : plain.by_asn) {
    const auto informed_it = informed.by_asn.find(asn);
    if (informed_it == informed.by_asn.end()) continue;
    const auto plain_count = plain_indices.size();
    const auto informed_count = informed_it->second.size();
    if (informed_count < plain_count) merges += static_cast<std::int64_t>(
        plain_count - informed_count);
    if (informed_count > plain_count) splits += static_cast<std::int64_t>(
        informed_count - plain_count);
  }
  std::cout << "\nprefix continuity merged " << bench::fmt_count(merges)
            << " over-timeout outage gaps and split "
            << bench::fmt_count(splits)
            << " sub-timeout lives whose announced space changed — the two "
               "refinements 8 predicts prefix data would enable.\n";

  // Squatted awakenings announce victim space: verify the informed builder
  // never merges a malicious awakening into the preceding benign life.
  std::int64_t checked = 0;
  std::int64_t kept_separate = 0;
  for (const bgpsim::SquatEvent& event : p.op_world.attacks.events) {
    const auto it = informed.by_asn.find(event.asn.value);
    if (it == informed.by_asn.end()) continue;
    for (const std::size_t index : it->second) {
      const lifetimes::OpLifetime& life = informed.lifetimes[index];
      if (!life.days.overlaps(event.days)) continue;
      ++checked;
      if (life.days.first >= event.days.first - 1) ++kept_separate;
    }
  }
  if (checked > 0)
    std::cout << "\nmalicious awakenings kept as separate lives: "
              << kept_separate << "/" << checked << "\n";
  return 0;
}
