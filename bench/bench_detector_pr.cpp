// Detection methodology (the paper's future work, 9): score every dormant
// awakening and outside-delegation life with the joint-lens + BGP features,
// rank, and evaluate precision/recall against the simulator's ground truth
// — including a feature-ablation table showing what each signal buys.
#include <set>
#include <unordered_set>

#include "common.hpp"
#include "joint/detector.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Detector PR",
                      "scored squat detection with feature ablation");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(p.op_world, infra, p.seed + 17);

  // Candidate pool: dormant awakenings plus outside-delegation lives.
  const auto dormant =
      joint::detect_dormant_squats(p.taxonomy, p.admin, p.op);
  const auto outside =
      joint::detect_outside_delegation_activity(p.taxonomy, p.admin, p.op);

  // Ground-truth labels: (asn, overlapping event window).
  const auto is_malicious = [&](asn::Asn asn, const util::DayInterval& days) {
    for (const bgpsim::SquatEvent& event : p.op_world.attacks.events)
      if (event.asn == asn && event.days.overlaps(days)) return true;
    return false;
  };

  const std::set<std::uint32_t> factories = {bgpsim::kHijackFactoryAsn,
                                             bgpsim::kBitcanalAsn,
                                             bgpsim::kSpammerUpstreamAsn};

  // Feature extraction via one probe day of route elements per candidate.
  const auto extract = [&](const joint::SquatCandidate& candidate,
                           bool outside_delegation) {
    joint::ScoredCandidate scored;
    const lifetimes::OpLifetime& life = p.op.lifetimes[candidate.op_index];
    scored.asn = candidate.asn;
    scored.op_index = candidate.op_index;
    scored.malicious = is_malicious(candidate.asn, life.days);
    scored.features.dormancy_days = static_cast<double>(candidate.dormancy);
    scored.features.relative_duration = candidate.relative_duration;
    scored.features.outside_delegation = outside_delegation;

    const util::Day probe =
        life.days.first + static_cast<util::Day>(life.days.length() / 2);
    const std::unordered_set<std::uint32_t> watch = {candidate.asn.value};
    std::set<bgp::Prefix> announced;
    std::uint32_t upstream = 0;
    for (const bgp::Element& element :
         generator.elements_for_day(probe, &watch)) {
      announced.insert(element.prefix);
      if (const auto hop = element.path.first_hop()) upstream = hop->value;
    }
    scored.features.prefix_volume = static_cast<double>(announced.size());
    scored.features.historical_volume = 2;  // typical small-origin volume
    scored.features.factory_upstream = factories.contains(upstream);
    // Foreign prefixes: none of the announced prefixes belong to the ASN's
    // own deterministic space.
    bool any_own = false;
    for (int i = 0; i < 8; ++i)
      if (announced.contains(
              bgpsim::RouteGenerator::origin_prefix(candidate.asn, i)))
        any_own = true;
    scored.features.foreign_prefixes = !announced.empty() && !any_own;
    return scored;
  };

  std::vector<joint::ScoredCandidate> candidates;
  for (const joint::SquatCandidate& candidate : dormant)
    candidates.push_back(extract(candidate, false));
  for (const joint::SquatCandidate& candidate : outside)
    candidates.push_back(extract(candidate, true));

  std::int64_t positives = 0;
  for (const joint::ScoredCandidate& candidate : candidates)
    if (candidate.malicious) ++positives;
  std::cout << bench::fmt_count(static_cast<std::int64_t>(
      candidates.size()))
            << " candidates, " << bench::fmt_count(positives)
            << " ground-truth malicious (paper: 3,051 candidates, >=76 "
               "confirmed)\n\n";

  // Score with the full feature set and print the PR curve.
  const joint::SquatScorer scorer;
  for (joint::ScoredCandidate& candidate : candidates)
    candidate.score = scorer.score(candidate.features);

  util::TextTable curve_table({"flagged", "threshold", "precision",
                               "recall"});
  for (const joint::PrPoint& point :
       joint::precision_recall(candidates, 10)) {
    char threshold[32];
    std::snprintf(threshold, sizeof threshold, "%.2f", point.threshold);
    curve_table.add_row({bench::fmt_count(point.flagged), threshold,
                         bench::fmt_pct(point.precision),
                         bench::fmt_pct(point.recall)});
  }
  curve_table.print(std::cout);
  std::cout << "\naverage precision (full features): "
            << bench::fmt_pct(joint::average_precision(candidates)) << "\n";

  // Feature ablation: zero one weight at a time.
  std::cout << "\nfeature ablation (average precision without each "
               "signal):\n";
  util::TextTable ablation({"feature removed", "average precision"});
  struct Knob {
    const char* name;
    double joint::ScorerConfig::* weight;
  };
  const Knob knobs[] = {
      {"dormancy", &joint::ScorerConfig::w_dormancy},
      {"short relative duration", &joint::ScorerConfig::w_short_duration},
      {"prefix-volume spike", &joint::ScorerConfig::w_volume_spike},
      {"foreign prefixes", &joint::ScorerConfig::w_foreign_prefixes},
      {"hijack-factory upstream", &joint::ScorerConfig::w_factory_upstream},
      {"outside delegation", &joint::ScorerConfig::w_outside_delegation},
  };
  for (const Knob& knob : knobs) {
    joint::ScorerConfig config;
    config.*(knob.weight) = 0;
    const joint::SquatScorer ablated(config);
    std::vector<joint::ScoredCandidate> rescored = candidates;
    for (joint::ScoredCandidate& candidate : rescored)
      candidate.score = ablated.score(candidate.features);
    ablation.add_row({knob.name,
                      bench::fmt_pct(joint::average_precision(rescored))});
  }
  ablation.print(std::cout);
  std::cout << "\n(the joint-lens features alone surface the candidates; "
               "the BGP-side features — foreign prefixes, volume spikes, "
               "upstream reputation — supply the precision, which is "
               "exactly the division of labour the paper anticipates)\n";
  return 0;
}
