// Figure 12 (Appendix A/B): per-day count of allocated 16-bit vs 32-bit
// ASNs per RIR — the diverse 32-bit transition, ARIN's late ramp, and the
// 16-bit exhaustion dynamics.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 12",
                      "16-bit vs 32-bit allocated ASNs per day per RIR");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day begin = util::make_day(2005, 1, 1);
  const util::Day end = p.truth.archive_end;
  const joint::WidthCensus census =
      joint::compute_width_census(p.admin, begin, end);

  std::cout << "per-RIR series (16-bit solid / 32-bit dashed in the paper):\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::cout << "  " << asn::display_name(rir) << "\t16 "
              << util::sparkline(bench::downsample(census.bits16[r]))
              << "\n\t\t32 "
              << util::sparkline(bench::downsample(census.bits32[r]))
              << "\n";
  }

  util::TextTable table({"date", "ARIN 16/32", "RIPE 16/32", "APNIC 16/32",
                         "LACNIC 16/32", "AfriNIC 16/32"});
  for (int year = 2007; year <= 2021; year += 2) {
    const util::Day day = util::make_day(year, 3, 1);
    if (day < begin || day > end) continue;
    const auto index = static_cast<std::size_t>(day - begin);
    const auto cell = [&](asn::Rir rir) {
      const std::size_t r = asn::index_of(rir);
      return bench::fmt_count(census.bits16[r][index]) + "/" +
             bench::fmt_count(census.bits32[r][index]);
    };
    table.add_row({util::format_iso(day), cell(asn::Rir::kArin),
                   cell(asn::Rir::kRipeNcc), cell(asn::Rir::kApnic),
                   cell(asn::Rir::kLacnic), cell(asn::Rir::kAfrinic)});
  }
  table.print(std::cout);

  // ARIN late-ramp check: ARIN's 32-bit count in 2013 vs APNIC's.
  const auto at = [&](asn::Rir rir, int year) {
    const util::Day day = util::make_day(year, 3, 1);
    return census.bits32[asn::index_of(rir)]
                        [static_cast<std::size_t>(day - begin)];
  };
  std::cout << "\n2013 32-bit counts — ARIN: "
            << bench::fmt_count(at(asn::Rir::kArin, 2013)) << ", APNIC: "
            << bench::fmt_count(at(asn::Rir::kApnic, 2013))
            << ", RIPE NCC: " << bench::fmt_count(at(asn::Rir::kRipeNcc,
                                                     2013))
            << " (paper: ARIN ramps up only around 2014 despite being the "
               "2nd largest registry)\n";

  // New-allocation 16-bit share in 2020 (paper: ARIN ~30%, younger RIRs
  // 1..1.7%).
  std::cout << "\n16-bit share of 2020 new allocations:\n";
  util::TextTable share({"RIR", "2020 births", "16-bit share", "paper"});
  constexpr const char* kPaper[] = {"~1-1.7%", "~1-1.7%", "~30%", "~1-1.7%",
                                    "-"};
  for (asn::Rir rir : asn::kAllRirs) {
    std::int64_t births = 0;
    std::int64_t births16 = 0;
    for (const lifetimes::AdminLifetime& life : p.admin.lifetimes) {
      if (life.registry != rir) continue;
      if (util::year_of(life.days.first) != 2020) continue;
      ++births;
      if (life.asn.is_16bit()) ++births16;
    }
    share.add_row({std::string(asn::display_name(rir)),
                   bench::fmt_count(births),
                   births == 0 ? "-" : bench::fmt_pct(
                       static_cast<double>(births16) /
                       static_cast<double>(births)),
                   kPaper[asn::index_of(rir)]});
  }
  share.print(std::cout);
  return 0;
}
