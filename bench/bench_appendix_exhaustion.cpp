// Appendix A: 16-bit exhaustion — when each registry's 16-bit allocation
// count peaked, the global maximum (paper: 60,455 on 2019-01-23), and the
// 16-bit numbers still available at that moment (paper: 4,039).
#include "common.hpp"
#include "joint/exhaustion.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Appendix A: 16-bit exhaustion",
                      "per-RIR and global 16-bit allocation peaks");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::WidthCensus census = joint::compute_width_census(
      p.admin, util::make_day(2005, 1, 1), p.truth.archive_end);
  const joint::ExhaustionAnalysis analysis =
      joint::analyze_16bit_exhaustion(census);

  constexpr const char* kPaperPeaks[] = {"end of 2013", "mid-2016",
                                         "beginning of 2019", "mid-2015",
                                         "end of 2018"};
  util::TextTable table({"RIR", "16-bit peak day", "peak count",
                         "paper peak era"});
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    table.add_row({std::string(asn::display_name(rir)),
                   util::format_iso(analysis.peak_day[r]),
                   bench::fmt_count(analysis.peak_count[r]),
                   kPaperPeaks[r]});
  }
  table.print(std::cout);

  std::cout << "\nglobal 16-bit peak: "
            << bench::fmt_count(analysis.global_peak_count) << " on "
            << util::format_iso(analysis.global_peak_day)
            << " (paper: 60,455 on 2019-01-23)\n";
  std::cout << "allocatable 16-bit universe (non-reserved): "
            << bench::fmt_count(analysis.allocatable_universe)
            << "; still unallocated at the peak: "
            << bench::fmt_count(analysis.available_at_peak)
            << " (paper: 4,039)\n";
  std::cout << "\n(none of the registries ever used every 16-bit number "
               "they could allocate — the paper's App. A conclusion; at "
               "synthetic scale the per-RIR lane sizes bound the peaks, so "
               "compare the *timing* of the peaks, which is driven by the "
               "32-bit transition schedule)\n";
  return 0;
}
