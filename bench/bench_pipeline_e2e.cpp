// End-to-end pipeline performance harness: runs the full Fig. 1 pipeline at
// a sweep of worker-thread counts for each interchange format (the wire
// format of the render→restore boundary), prints stage-by-stage wall-clock
// and speedup tables, verifies every run is bit-identical to the serial text
// baseline, and writes machine-readable BENCH_pipeline.json so successive
// PRs accumulate a perf trajectory.
//
// Environment knobs:
//   PL_BENCH_SCALE        world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED         world seed (default 42)
//   PL_BENCH_THREADS      comma-separated sweep, default "0,1,2,4,8"
//                         (0 = serial baseline; always run even if omitted)
//   PL_BENCH_INTERCHANGE  comma-separated formats, default "text,binary"
//   PL_BENCH_OUT          JSON output path (default BENCH_pipeline.json)
//
// JSON format (schema pl-bench-pipeline/3):
//   {
//     "schema": "pl-bench-pipeline/3",
//     "scale": 1.0, "seed": 42, "hardware_threads": N,
//     "before": {pre-interchange committed baseline stages at t=0, for the
//                before/after table},
//     "runs": [
//       {"interchange": "text", "threads": 0, "stages": {"world": ms, ...},
//        "total_ms": ms, "speedup": x, "fingerprint": "0x..."}
//     ],
//     "interchange": {per-stage text vs binary ms at t=0 plus speedup},
//     "identical": true,
//     "metrics": {workload counters from the serial text run's obs snapshot},
//     "stage_latency_us": {stage wall-clock distribution across every run in
//                          the sweep, as the shared percentile summary from
//                          bench/common.hpp (count/sum/p50/p90/p99/p999)}
//   }
//
// Exit status is non-zero when any run's fingerprint deviates from the
// serial text baseline, or when the single-worker run (t=1) regresses
// beyond noise against the serial path (the t<=1 configurations share the
// same serial code path and must not diverge; see exec/pool.cpp).

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "delegation/interchange.hpp"
#include "exec/pool.hpp"

namespace {

using pl::pipeline::Config;
using pl::pipeline::Result;
using pl::pipeline::StageTimings;

/// t=1 must stay within this factor of t=0: both run the exact same serial
/// code (a single worker falls through to the caller's thread), so anything
/// beyond measurement noise is a scheduling regression.
constexpr double kSingleWorkerNoiseFactor = 1.35;

/// The committed pre-interchange baseline (schema pl-bench-pipeline/2, this
/// machine, scale 1.0 / seed 42 / t=0) — the "before" half of the
/// before/after table. Update when re-anchoring the trajectory.
constexpr double kBeforeStagesMs[] = {151.546, 107.788, 505.201, 1091.315,
                                      182.719, 48.355,  40.012};
constexpr double kBeforeTotalMs = 2126.965;

const char* const kStageNames[] = {"world", "op_world", "render",  "restore",
                                   "admin", "op",       "taxonomy"};

/// FNV-1a over the fields that define a run's output, so "bit-identical"
/// is a single comparable number instead of a field-by-field diff.
class Fingerprint {
 public:
  void mix(std::uint64_t value) {
    hash_ ^= value;
    hash_ *= 0x100000001b3ULL;
  }

  void mix_result(const Result& result) {
    mix(result.admin.lifetimes.size());
    for (const pl::lifetimes::AdminLifetime& life : result.admin.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
      mix(static_cast<std::uint64_t>(life.registration_date));
      mix(static_cast<std::uint64_t>(life.registry));
      mix(life.opaque_id);
      mix(life.open_ended ? 1 : 0);
      mix(life.transferred ? 1 : 0);
    }
    mix(result.op.lifetimes.size());
    for (const pl::lifetimes::OpLifetime& life : result.op.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
    }
    for (const std::int64_t count : result.taxonomy.admin_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t count : result.taxonomy.op_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t link : result.taxonomy.op_to_admin)
      mix(static_cast<std::uint64_t>(link));
    mix(static_cast<std::uint64_t>(result.robustness.days_applied));
    mix(static_cast<std::uint64_t>(result.robustness.days_delivered));
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Run {
  pl::dele::Interchange interchange = pl::dele::Interchange::kText;
  int threads = 0;
  StageTimings timings;
  std::uint64_t fingerprint = 0;
};

double stage_ms(const StageTimings& t, std::size_t stage) {
  const double values[] = {t.world_ms, t.op_world_ms, t.render_ms,
                           t.restore_ms, t.admin_ms, t.op_ms, t.taxonomy_ms};
  return values[stage];
}

std::vector<int> thread_sweep() {
  std::string spec = "0,1,2,4,8";
  if (const char* env = std::getenv("PL_BENCH_THREADS")) spec = env;
  std::vector<int> sweep;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ','))
    if (!token.empty()) sweep.push_back(std::atoi(token.c_str()));
  if (sweep.empty() || sweep.front() != 0)
    sweep.insert(sweep.begin(), 0);  // the serial baseline anchors speedups
  return sweep;
}

std::vector<pl::dele::Interchange> interchange_sweep() {
  std::string spec = "text,binary";
  if (const char* env = std::getenv("PL_BENCH_INTERCHANGE")) spec = env;
  std::vector<pl::dele::Interchange> sweep;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    const auto format = pl::dele::parse_interchange(token);
    if (!format) {
      std::cerr << "unknown interchange format: " << token << "\n";
      continue;
    }
    sweep.push_back(*format);
  }
  if (sweep.empty()) sweep.push_back(pl::dele::Interchange::kText);
  return sweep;
}

std::string fmt_ms(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << ms;
  return out.str();
}

std::string fmt_speedup(double speedup) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << speedup << "x";
  return out.str();
}

std::string fmt_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << "0x" << std::hex << fingerprint;
  return out.str();
}

/// The workload block: non-timing counters from the serial run's metrics
/// snapshot, so the perf trajectory records *what* was processed next to
/// how long it took. Cross-registry counters aggregate over labels via
/// `counter_sum`.
void write_metrics_block(pl::bench::JsonWriter& json,
                         const pl::obs::Snapshot& metrics) {
  json.key("metrics").begin_object();
  json.key("restored_days")
      .value(metrics.counter_sum("pl_restore_days_processed"));
  json.key("restored_asns").value(metrics.counter_sum("pl_restore_asns"));
  json.key("restored_spans").value(metrics.counter_sum("pl_restore_spans"));
  json.key("admin_lifetimes").value(metrics.counter_value("pl_admin_lifetimes"));
  json.key("op_lifetimes").value(metrics.counter_value("pl_op_lifetimes"));
  json.key("active_asn_days")
      .value(metrics.counter_sum("pl_bgp_active_asn_days"));
  json.key("faults_injected")
      .value(metrics.counter_sum("pl_fault_days_dropped") +
             metrics.counter_sum("pl_fault_days_duplicated") +
             metrics.counter_sum("pl_fault_days_reordered"));
  json.key("faults_recovered")
      .value(metrics.counter_sum("pl_ingest_days_reorder_recovered") +
             metrics.counter_sum("pl_fault_fetch_retries"));
  json.key("taxonomy_admin").begin_object();
  json.key("complete_overlap")
      .value(metrics.counter_value(
          "pl_taxonomy_admin{class=\"complete_overlap\"}"));
  json.key("partial_overlap")
      .value(metrics.counter_value(
          "pl_taxonomy_admin{class=\"partial_overlap\"}"));
  json.key("unused")
      .value(metrics.counter_value("pl_taxonomy_admin{class=\"unused\"}"));
  json.end_object();
  json.key("taxonomy_op").begin_object();
  json.key("complete_overlap")
      .value(
          metrics.counter_value("pl_taxonomy_op{class=\"complete_overlap\"}"));
  json.key("partial_overlap")
      .value(
          metrics.counter_value("pl_taxonomy_op{class=\"partial_overlap\"}"));
  json.key("outside_delegation")
      .value(metrics.counter_value(
          "pl_taxonomy_op{class=\"outside_delegation\"}"));
  json.end_object();
  json.end_object();
}

void write_json(const std::string& path, double scale, std::uint64_t seed,
                const std::vector<Run>& runs, const Run* text_serial,
                const Run* binary_serial, bool identical,
                const pl::obs::Snapshot& metrics) {
  pl::bench::JsonWriter json;
  json.begin_object();
  json.key("schema").value("pl-bench-pipeline/3");
  json.key("scale").value(scale);
  json.key("seed").value(static_cast<std::uint64_t>(seed));
  json.key("hardware_threads").value(pl::exec::hardware_threads());

  // The "before" half of the before/after table: the committed
  // pre-interchange trajectory point this PR optimizes against.
  json.key("before").begin_object();
  json.key("schema").value("pl-bench-pipeline/2");
  json.key("stages").begin_object();
  for (std::size_t s = 0; s < std::size(kStageNames); ++s)
    json.key(kStageNames[s]).value(kBeforeStagesMs[s]);
  json.end_object();
  json.key("total_ms").value(kBeforeTotalMs);
  json.end_object();

  json.key("runs").begin_array();
  for (const Run& run : runs) {
    // Speedups anchor at the same interchange's serial run, so the thread
    // sweep measures sharding alone and the interchange block below
    // measures the format alone.
    const Run* anchor =
        run.interchange == pl::dele::Interchange::kText ? text_serial
                                                        : binary_serial;
    const double base = anchor != nullptr ? anchor->timings.total_ms : 0.0;
    const StageTimings& t = run.timings;
    json.begin_object();
    json.key("interchange")
        .value(std::string(pl::dele::interchange_token(run.interchange)));
    json.key("threads").value(run.threads);
    json.key("stages").begin_object();
    for (std::size_t s = 0; s < std::size(kStageNames); ++s)
      json.key(kStageNames[s]).value(stage_ms(t, s));
    json.end_object();
    json.key("total_ms").value(t.total_ms);
    json.key("speedup").value(t.total_ms > 0 ? base / t.total_ms : 0.0);
    json.key("fingerprint").value(fmt_fingerprint(run.fingerprint));
    json.end_object();
  }
  json.end_array();

  // Per-stage text vs binary at t=0 — the interchange dimension itself.
  if (text_serial != nullptr && binary_serial != nullptr) {
    json.key("interchange").begin_object();
    json.key("stages").begin_object();
    for (std::size_t s = 0; s < std::size(kStageNames); ++s) {
      const double text_ms = stage_ms(text_serial->timings, s);
      const double binary_ms = stage_ms(binary_serial->timings, s);
      json.key(kStageNames[s]).begin_object();
      json.key("text_ms").value(text_ms);
      json.key("binary_ms").value(binary_ms);
      json.key("speedup").value(binary_ms > 0 ? text_ms / binary_ms : 0.0);
      json.end_object();
    }
    json.end_object();
    json.key("total").begin_object();
    json.key("text_ms").value(text_serial->timings.total_ms);
    json.key("binary_ms").value(binary_serial->timings.total_ms);
    json.key("speedup")
        .value(binary_serial->timings.total_ms > 0
                   ? text_serial->timings.total_ms /
                         binary_serial->timings.total_ms
                   : 0.0);
    json.key("speedup_vs_before")
        .value(binary_serial->timings.total_ms > 0
                   ? kBeforeTotalMs / binary_serial->timings.total_ms
                   : 0.0);
    json.end_object();
    json.end_object();
  }

  json.key("identical").value(identical);
  write_metrics_block(json, metrics);

  // Stage wall-clock distribution over the whole sweep, folded through the
  // log2 latency histogram so the artifact carries the same percentile
  // shape as BENCH_serve.json's observability block (one parser for both
  // trajectories). Microsecond unit: stage times are ms-scale doubles and
  // the histogram is integer-valued.
  pl::obs::LatencyHisto stage_histo;
  for (const Run& run : runs) {
    for (std::size_t s = 0; s < std::size(kStageNames); ++s) {
      const double stage = stage_ms(run.timings, s);
      if (stage > 0)
        stage_histo.observe(static_cast<std::int64_t>(stage * 1000.0));
    }
  }
  json.key("stage_latency_us");
  pl::bench::emit_latency_summary(json, stage_histo.snapshot());
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
}

}  // namespace

int main() {
  pl::bench::print_banner(
      "pipeline e2e",
      "stage wall-clock vs. worker threads (PL_THREADS) x interchange");

  double scale = 1.0;
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("PL_BENCH_SCALE")) scale = std::atof(env);
  if (const char* env = std::getenv("PL_BENCH_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  std::string out_path = "BENCH_pipeline.json";
  if (const char* env = std::getenv("PL_BENCH_OUT")) out_path = env;

  const std::vector<int> threads_sweep = thread_sweep();
  const std::vector<pl::dele::Interchange> formats = interchange_sweep();
  std::cout << "scale=" << scale << " seed=" << seed
            << " hardware_threads=" << pl::exec::hardware_threads() << "\n\n";

  std::vector<Run> runs;
  pl::obs::Snapshot serial_metrics;
  bool have_metrics = false;
  for (const pl::dele::Interchange format : formats) {
    for (const int threads : threads_sweep) {
      Config config;
      config.seed = seed;
      config.scale = scale;
      config.threads = threads;
      config.interchange = format;
      std::cerr << "[bench] running with interchange="
                << pl::dele::interchange_token(format)
                << " threads=" << threads << "\n";
      const Result result = pl::pipeline::run_simulated(config);
      Fingerprint fingerprint;
      fingerprint.mix_result(result);
      runs.push_back(Run{format, threads, result.timings,
                         fingerprint.value()});
      // The first serial run's snapshot feeds the workload block; every
      // sweep entry holds identical metric values by the determinism
      // contract.
      if (threads == 0 && !have_metrics) {
        serial_metrics = result.report.metrics;
        have_metrics = true;
      }
    }
  }

  bool identical = true;
  for (const Run& run : runs)
    identical = identical && run.fingerprint == runs.front().fingerprint;

  const auto find_serial = [&](pl::dele::Interchange format) -> const Run* {
    for (const Run& run : runs)
      if (run.interchange == format && run.threads == 0) return &run;
    return nullptr;
  };
  const auto find_single = [&](pl::dele::Interchange format) -> const Run* {
    for (const Run& run : runs)
      if (run.interchange == format && run.threads == 1) return &run;
    return nullptr;
  };
  const Run* text_serial = find_serial(pl::dele::Interchange::kText);
  const Run* binary_serial = find_serial(pl::dele::Interchange::kBinary);

  // Stage-by-stage table per interchange, one column per thread count.
  for (const pl::dele::Interchange format : formats) {
    std::vector<const Run*> cols;
    for (const Run& run : runs)
      if (run.interchange == format) cols.push_back(&run);
    if (cols.empty()) continue;
    std::cout << "interchange=" << pl::dele::interchange_token(format)
              << "\n";
    std::cout << std::left << std::setw(10) << "stage";
    for (const Run* run : cols)
      std::cout << std::right << std::setw(12)
                << ("t=" + std::to_string(run->threads) + " ms");
    std::cout << "\n";
    for (std::size_t s = 0; s < std::size(kStageNames); ++s) {
      std::cout << std::left << std::setw(10) << kStageNames[s];
      for (const Run* run : cols)
        std::cout << std::right << std::setw(12)
                  << fmt_ms(stage_ms(run->timings, s));
      std::cout << "\n";
    }
    std::cout << std::left << std::setw(10) << "total";
    for (const Run* run : cols)
      std::cout << std::right << std::setw(12)
                << fmt_ms(run->timings.total_ms);
    std::cout << "\n" << std::left << std::setw(10) << "speedup";
    const double base = cols.front()->timings.total_ms;
    for (const Run* run : cols)
      std::cout << std::right << std::setw(12)
                << fmt_speedup(run->timings.total_ms > 0
                                   ? base / run->timings.total_ms
                                   : 0.0);
    std::cout << "\n\n";
  }

  // The before/after table the interchange work is judged by: committed
  // pre-interchange baseline vs this build's text and binary paths at t=0.
  if (text_serial != nullptr) {
    std::cout << "before/after (t=0, before = committed pre-interchange "
                 "baseline)\n";
    std::cout << std::left << std::setw(10) << "stage" << std::right
              << std::setw(12) << "before ms" << std::setw(12) << "text ms";
    if (binary_serial != nullptr)
      std::cout << std::setw(12) << "binary ms" << std::setw(12) << "speedup";
    std::cout << "\n";
    for (std::size_t s = 0; s < std::size(kStageNames); ++s) {
      std::cout << std::left << std::setw(10) << kStageNames[s] << std::right
                << std::setw(12) << fmt_ms(kBeforeStagesMs[s]) << std::setw(12)
                << fmt_ms(stage_ms(text_serial->timings, s));
      if (binary_serial != nullptr) {
        const double binary_ms = stage_ms(binary_serial->timings, s);
        std::cout << std::setw(12) << fmt_ms(binary_ms) << std::setw(12)
                  << fmt_speedup(binary_ms > 0 ? kBeforeStagesMs[s] / binary_ms
                                               : 0.0);
      }
      std::cout << "\n";
    }
    std::cout << std::left << std::setw(10) << "total" << std::right
              << std::setw(12) << fmt_ms(kBeforeTotalMs) << std::setw(12)
              << fmt_ms(text_serial->timings.total_ms);
    if (binary_serial != nullptr) {
      std::cout << std::setw(12) << fmt_ms(binary_serial->timings.total_ms)
                << std::setw(12)
                << fmt_speedup(binary_serial->timings.total_ms > 0
                                   ? kBeforeTotalMs /
                                         binary_serial->timings.total_ms
                                   : 0.0);
    }
    std::cout << "\n\n";
  }

  std::cout << "all runs bit-identical to the first serial run: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  // Single-worker regression guard: t=1 routes through the serial path
  // (exec/pool.cpp), so it must track t=0 within measurement noise.
  bool single_ok = true;
  for (const pl::dele::Interchange format : formats) {
    const Run* serial = find_serial(format);
    const Run* single = find_single(format);
    if (serial == nullptr || single == nullptr) continue;
    const double ratio = serial->timings.total_ms > 0
                             ? single->timings.total_ms /
                                   serial->timings.total_ms
                             : 1.0;
    const bool ok = ratio <= kSingleWorkerNoiseFactor;
    single_ok = single_ok && ok;
    std::cout << "t=1 vs t=0 (" << pl::dele::interchange_token(format)
              << "): " << fmt_speedup(ratio)
              << (ok ? " (within noise)" : " — SINGLE-WORKER REGRESSION")
              << "\n";
  }
  if (pl::exec::hardware_threads() == 1)
    std::cout << "(note: 1 hardware thread — speedups are bounded by the "
                 "machine, not the sharding)\n";

  write_json(out_path, scale, seed, runs, text_serial, binary_serial,
             identical, serial_metrics);
  std::cout << "wrote " << out_path << "\n";
  return identical && single_ok ? 0 : 1;
}
