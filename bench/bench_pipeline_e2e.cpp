// End-to-end pipeline performance harness: runs the full Fig. 1 pipeline at
// a sweep of worker-thread counts, prints a stage-by-stage wall-clock and
// speedup table, verifies every parallel run is bit-identical to the serial
// baseline, and writes machine-readable BENCH_pipeline.json so successive
// PRs accumulate a perf trajectory.
//
// Environment knobs:
//   PL_BENCH_SCALE    world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED     world seed (default 42)
//   PL_BENCH_THREADS  comma-separated sweep, default "0,1,2,4,8"
//                     (0 = serial baseline; always run even if omitted)
//   PL_BENCH_OUT      JSON output path (default BENCH_pipeline.json)
//
// JSON format (schema pl-bench-pipeline/1):
//   {
//     "schema": "pl-bench-pipeline/1",
//     "scale": 1.0, "seed": 42, "hardware_threads": N,
//     "runs": [
//       {"threads": 0, "stages": {"world": ms, "op_world": ms, "render": ms,
//        "restore": ms, "admin": ms, "op": ms, "taxonomy": ms},
//        "total_ms": ms, "speedup": x, "fingerprint": "0x..."}
//     ],
//     "identical": true
//   }

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "exec/pool.hpp"

namespace {

using pl::pipeline::Config;
using pl::pipeline::Result;
using pl::pipeline::StageTimings;

/// FNV-1a over the fields that define a run's output, so "bit-identical"
/// is a single comparable number instead of a field-by-field diff.
class Fingerprint {
 public:
  void mix(std::uint64_t value) {
    hash_ ^= value;
    hash_ *= 0x100000001b3ULL;
  }

  void mix_result(const Result& result) {
    mix(result.admin.lifetimes.size());
    for (const pl::lifetimes::AdminLifetime& life : result.admin.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
      mix(static_cast<std::uint64_t>(life.registration_date));
      mix(static_cast<std::uint64_t>(life.registry));
      mix(life.opaque_id);
      mix(life.open_ended ? 1 : 0);
      mix(life.transferred ? 1 : 0);
    }
    mix(result.op.lifetimes.size());
    for (const pl::lifetimes::OpLifetime& life : result.op.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
    }
    for (const std::int64_t count : result.taxonomy.admin_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t count : result.taxonomy.op_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t link : result.taxonomy.op_to_admin)
      mix(static_cast<std::uint64_t>(link));
    mix(static_cast<std::uint64_t>(result.robustness.days_applied));
    mix(static_cast<std::uint64_t>(result.robustness.days_delivered));
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Run {
  int threads = 0;
  StageTimings timings;
  std::uint64_t fingerprint = 0;
};

std::vector<int> thread_sweep() {
  std::string spec = "0,1,2,4,8";
  if (const char* env = std::getenv("PL_BENCH_THREADS")) spec = env;
  std::vector<int> sweep;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ','))
    if (!token.empty()) sweep.push_back(std::atoi(token.c_str()));
  if (sweep.empty() || sweep.front() != 0)
    sweep.insert(sweep.begin(), 0);  // the serial baseline anchors speedups
  return sweep;
}

std::string fmt_ms(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << ms;
  return out.str();
}

void write_json(const std::string& path, double scale, std::uint64_t seed,
                const std::vector<Run>& runs, bool identical) {
  std::ofstream out(path);
  out << std::fixed << std::setprecision(3);
  out << "{\n  \"schema\": \"pl-bench-pipeline/1\",\n";
  out << "  \"scale\": " << scale << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"hardware_threads\": " << pl::exec::hardware_threads() << ",\n";
  out << "  \"runs\": [\n";
  const double base = runs.front().timings.total_ms;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    const StageTimings& t = run.timings;
    out << "    {\"threads\": " << run.threads << ", \"stages\": {"
        << "\"world\": " << t.world_ms << ", \"op_world\": " << t.op_world_ms
        << ", \"render\": " << t.render_ms
        << ", \"restore\": " << t.restore_ms << ", \"admin\": " << t.admin_ms
        << ", \"op\": " << t.op_ms << ", \"taxonomy\": " << t.taxonomy_ms
        << "}, \"total_ms\": " << t.total_ms
        << ", \"speedup\": " << (t.total_ms > 0 ? base / t.total_ms : 0.0)
        << ", \"fingerprint\": \"0x" << std::hex << run.fingerprint
        << std::dec << "\"}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"identical\": " << (identical ? "true" : "false") << "\n";
  out << "}\n";
}

}  // namespace

int main() {
  pl::bench::print_banner(
      "pipeline e2e", "stage wall-clock vs. worker threads (PL_THREADS)");

  double scale = 1.0;
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("PL_BENCH_SCALE")) scale = std::atof(env);
  if (const char* env = std::getenv("PL_BENCH_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  std::string out_path = "BENCH_pipeline.json";
  if (const char* env = std::getenv("PL_BENCH_OUT")) out_path = env;

  const std::vector<int> sweep = thread_sweep();
  std::cout << "scale=" << scale << " seed=" << seed
            << " hardware_threads=" << pl::exec::hardware_threads() << "\n\n";

  std::vector<Run> runs;
  for (const int threads : sweep) {
    Config config;
    config.seed = seed;
    config.scale = scale;
    config.threads = threads;
    std::cerr << "[bench] running with threads=" << threads << "\n";
    const Result result = pl::pipeline::run_simulated(config);
    Fingerprint fingerprint;
    fingerprint.mix_result(result);
    runs.push_back(Run{threads, result.timings, fingerprint.value()});
  }

  bool identical = true;
  for (const Run& run : runs)
    identical = identical && run.fingerprint == runs.front().fingerprint;

  // Stage-by-stage table, one column per thread count.
  const char* stage_names[] = {"world",   "op_world", "render", "restore",
                               "admin",   "op",       "taxonomy", "total"};
  std::cout << std::left << std::setw(10) << "stage";
  for (const Run& run : runs)
    std::cout << std::right << std::setw(12)
              << ("t=" + std::to_string(run.threads) + " ms");
  std::cout << "\n";
  for (std::size_t s = 0; s < std::size(stage_names); ++s) {
    std::cout << std::left << std::setw(10) << stage_names[s];
    for (const Run& run : runs) {
      const StageTimings& t = run.timings;
      const double values[] = {t.world_ms, t.op_world_ms, t.render_ms,
                               t.restore_ms, t.admin_ms, t.op_ms,
                               t.taxonomy_ms, t.total_ms};
      std::cout << std::right << std::setw(12) << fmt_ms(values[s]);
    }
    std::cout << "\n";
  }
  std::cout << std::left << std::setw(10) << "speedup";
  const double base = runs.front().timings.total_ms;
  for (const Run& run : runs) {
    std::ostringstream cell;
    cell << std::fixed << std::setprecision(2)
         << (run.timings.total_ms > 0 ? base / run.timings.total_ms : 0.0)
         << "x";
    std::cout << std::right << std::setw(12) << cell.str();
  }
  std::cout << "\n\nparallel runs bit-identical to serial baseline: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  if (pl::exec::hardware_threads() == 1)
    std::cout << "(note: 1 hardware thread — speedups are bounded by the "
                 "machine, not the sharding)\n";

  write_json(out_path, scale, seed, runs, identical);
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
