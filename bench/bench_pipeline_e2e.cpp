// End-to-end pipeline performance harness: runs the full Fig. 1 pipeline at
// a sweep of worker-thread counts, prints a stage-by-stage wall-clock and
// speedup table, verifies every parallel run is bit-identical to the serial
// baseline, and writes machine-readable BENCH_pipeline.json so successive
// PRs accumulate a perf trajectory.
//
// Environment knobs:
//   PL_BENCH_SCALE    world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED     world seed (default 42)
//   PL_BENCH_THREADS  comma-separated sweep, default "0,1,2,4,8"
//                     (0 = serial baseline; always run even if omitted)
//   PL_BENCH_OUT      JSON output path (default BENCH_pipeline.json)
//
// JSON format (schema pl-bench-pipeline/2):
//   {
//     "schema": "pl-bench-pipeline/2",
//     "scale": 1.0, "seed": 42, "hardware_threads": N,
//     "runs": [
//       {"threads": 0, "stages": {"world": ms, "op_world": ms, "render": ms,
//        "restore": ms, "admin": ms, "op": ms, "taxonomy": ms},
//        "total_ms": ms, "speedup": x, "fingerprint": "0x..."}
//     ],
//     "identical": true,
//     "metrics": {workload counters from the serial run's obs snapshot:
//       restored days/ASNs, lifetime totals, fault accounting, taxonomy
//       class tallies}
//   }

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "exec/pool.hpp"

namespace {

using pl::pipeline::Config;
using pl::pipeline::Result;
using pl::pipeline::StageTimings;

/// FNV-1a over the fields that define a run's output, so "bit-identical"
/// is a single comparable number instead of a field-by-field diff.
class Fingerprint {
 public:
  void mix(std::uint64_t value) {
    hash_ ^= value;
    hash_ *= 0x100000001b3ULL;
  }

  void mix_result(const Result& result) {
    mix(result.admin.lifetimes.size());
    for (const pl::lifetimes::AdminLifetime& life : result.admin.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
      mix(static_cast<std::uint64_t>(life.registration_date));
      mix(static_cast<std::uint64_t>(life.registry));
      mix(life.opaque_id);
      mix(life.open_ended ? 1 : 0);
      mix(life.transferred ? 1 : 0);
    }
    mix(result.op.lifetimes.size());
    for (const pl::lifetimes::OpLifetime& life : result.op.lifetimes) {
      mix(life.asn.value);
      mix(static_cast<std::uint64_t>(life.days.first));
      mix(static_cast<std::uint64_t>(life.days.last));
    }
    for (const std::int64_t count : result.taxonomy.admin_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t count : result.taxonomy.op_counts)
      mix(static_cast<std::uint64_t>(count));
    for (const std::int64_t link : result.taxonomy.op_to_admin)
      mix(static_cast<std::uint64_t>(link));
    mix(static_cast<std::uint64_t>(result.robustness.days_applied));
    mix(static_cast<std::uint64_t>(result.robustness.days_delivered));
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Run {
  int threads = 0;
  StageTimings timings;
  std::uint64_t fingerprint = 0;
};

std::vector<int> thread_sweep() {
  std::string spec = "0,1,2,4,8";
  if (const char* env = std::getenv("PL_BENCH_THREADS")) spec = env;
  std::vector<int> sweep;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ','))
    if (!token.empty()) sweep.push_back(std::atoi(token.c_str()));
  if (sweep.empty() || sweep.front() != 0)
    sweep.insert(sweep.begin(), 0);  // the serial baseline anchors speedups
  return sweep;
}

std::string fmt_ms(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << ms;
  return out.str();
}

std::string fmt_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << "0x" << std::hex << fingerprint;
  return out.str();
}

/// The workload block: non-timing counters from the serial run's metrics
/// snapshot, so the perf trajectory records *what* was processed next to
/// how long it took. Cross-registry counters aggregate over labels via
/// `counter_sum`.
void write_metrics_block(pl::bench::JsonWriter& json,
                         const pl::obs::Snapshot& metrics) {
  json.key("metrics").begin_object();
  json.key("restored_days")
      .value(metrics.counter_sum("pl_restore_days_processed"));
  json.key("restored_asns").value(metrics.counter_sum("pl_restore_asns"));
  json.key("restored_spans").value(metrics.counter_sum("pl_restore_spans"));
  json.key("admin_lifetimes").value(metrics.counter_value("pl_admin_lifetimes"));
  json.key("op_lifetimes").value(metrics.counter_value("pl_op_lifetimes"));
  json.key("active_asn_days")
      .value(metrics.counter_sum("pl_bgp_active_asn_days"));
  json.key("faults_injected")
      .value(metrics.counter_sum("pl_fault_days_dropped") +
             metrics.counter_sum("pl_fault_days_duplicated") +
             metrics.counter_sum("pl_fault_days_reordered"));
  json.key("faults_recovered")
      .value(metrics.counter_sum("pl_ingest_days_reorder_recovered") +
             metrics.counter_sum("pl_fault_fetch_retries"));
  json.key("taxonomy_admin").begin_object();
  json.key("complete_overlap")
      .value(metrics.counter_value(
          "pl_taxonomy_admin{class=\"complete_overlap\"}"));
  json.key("partial_overlap")
      .value(metrics.counter_value(
          "pl_taxonomy_admin{class=\"partial_overlap\"}"));
  json.key("unused")
      .value(metrics.counter_value("pl_taxonomy_admin{class=\"unused\"}"));
  json.end_object();
  json.key("taxonomy_op").begin_object();
  json.key("complete_overlap")
      .value(
          metrics.counter_value("pl_taxonomy_op{class=\"complete_overlap\"}"));
  json.key("partial_overlap")
      .value(
          metrics.counter_value("pl_taxonomy_op{class=\"partial_overlap\"}"));
  json.key("outside_delegation")
      .value(metrics.counter_value(
          "pl_taxonomy_op{class=\"outside_delegation\"}"));
  json.end_object();
  json.end_object();
}

void write_json(const std::string& path, double scale, std::uint64_t seed,
                const std::vector<Run>& runs, bool identical,
                const pl::obs::Snapshot& metrics) {
  pl::bench::JsonWriter json;
  json.begin_object();
  json.key("schema").value("pl-bench-pipeline/2");
  json.key("scale").value(scale);
  json.key("seed").value(static_cast<std::uint64_t>(seed));
  json.key("hardware_threads").value(pl::exec::hardware_threads());
  json.key("runs").begin_array();
  const double base = runs.front().timings.total_ms;
  for (const Run& run : runs) {
    const StageTimings& t = run.timings;
    json.begin_object();
    json.key("threads").value(run.threads);
    json.key("stages").begin_object();
    json.key("world").value(t.world_ms);
    json.key("op_world").value(t.op_world_ms);
    json.key("render").value(t.render_ms);
    json.key("restore").value(t.restore_ms);
    json.key("admin").value(t.admin_ms);
    json.key("op").value(t.op_ms);
    json.key("taxonomy").value(t.taxonomy_ms);
    json.end_object();
    json.key("total_ms").value(t.total_ms);
    json.key("speedup").value(t.total_ms > 0 ? base / t.total_ms : 0.0);
    json.key("fingerprint").value(fmt_fingerprint(run.fingerprint));
    json.end_object();
  }
  json.end_array();
  json.key("identical").value(identical);
  write_metrics_block(json, metrics);
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
}

}  // namespace

int main() {
  pl::bench::print_banner(
      "pipeline e2e", "stage wall-clock vs. worker threads (PL_THREADS)");

  double scale = 1.0;
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("PL_BENCH_SCALE")) scale = std::atof(env);
  if (const char* env = std::getenv("PL_BENCH_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  std::string out_path = "BENCH_pipeline.json";
  if (const char* env = std::getenv("PL_BENCH_OUT")) out_path = env;

  const std::vector<int> sweep = thread_sweep();
  std::cout << "scale=" << scale << " seed=" << seed
            << " hardware_threads=" << pl::exec::hardware_threads() << "\n\n";

  std::vector<Run> runs;
  pl::obs::Snapshot serial_metrics;
  for (const int threads : sweep) {
    Config config;
    config.seed = seed;
    config.scale = scale;
    config.threads = threads;
    std::cerr << "[bench] running with threads=" << threads << "\n";
    const Result result = pl::pipeline::run_simulated(config);
    Fingerprint fingerprint;
    fingerprint.mix_result(result);
    runs.push_back(Run{threads, result.timings, fingerprint.value()});
    // The serial baseline's snapshot feeds the workload block; every sweep
    // entry holds identical metric values by the determinism contract.
    if (threads == 0) serial_metrics = result.report.metrics;
  }

  bool identical = true;
  for (const Run& run : runs)
    identical = identical && run.fingerprint == runs.front().fingerprint;

  // Stage-by-stage table, one column per thread count.
  const char* stage_names[] = {"world",   "op_world", "render", "restore",
                               "admin",   "op",       "taxonomy", "total"};
  std::cout << std::left << std::setw(10) << "stage";
  for (const Run& run : runs)
    std::cout << std::right << std::setw(12)
              << ("t=" + std::to_string(run.threads) + " ms");
  std::cout << "\n";
  for (std::size_t s = 0; s < std::size(stage_names); ++s) {
    std::cout << std::left << std::setw(10) << stage_names[s];
    for (const Run& run : runs) {
      const StageTimings& t = run.timings;
      const double values[] = {t.world_ms, t.op_world_ms, t.render_ms,
                               t.restore_ms, t.admin_ms, t.op_ms,
                               t.taxonomy_ms, t.total_ms};
      std::cout << std::right << std::setw(12) << fmt_ms(values[s]);
    }
    std::cout << "\n";
  }
  std::cout << std::left << std::setw(10) << "speedup";
  const double base = runs.front().timings.total_ms;
  for (const Run& run : runs) {
    std::ostringstream cell;
    cell << std::fixed << std::setprecision(2)
         << (run.timings.total_ms > 0 ? base / run.timings.total_ms : 0.0)
         << "x";
    std::cout << std::right << std::setw(12) << cell.str();
  }
  std::cout << "\n\nparallel runs bit-identical to serial baseline: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  if (pl::exec::hardware_threads() == 1)
    std::cout << "(note: 1 hardware thread — speedups are bounded by the "
                 "machine, not the sharding)\n";

  write_json(out_path, scale, seed, runs, identical, serial_metrics);
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
}
