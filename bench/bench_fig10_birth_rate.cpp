// Figure 10 (Appendix A): per-RIR administrative birth rate in 3-month bins
// — the dot-com bubble spike and the APNIC/LACNIC post-2014 ramp.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 10", "per-RIR ASN birth rate (3-month bins)");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day begin = util::make_day(1992, 1, 1);
  const util::Day end = p.truth.archive_end;
  const joint::QuarterlySeries series =
      joint::compute_quarterly(p.admin, begin, end);

  std::cout << "quarterly births per RIR (sparkline over 1992..2021):\n";
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::vector<double> values(series.births[r].begin(),
                               series.births[r].end());
    std::cout << "  " << asn::display_name(rir) << "\t"
              << util::sparkline(values) << "\n";
  }

  // Peak quarter per RIR.
  std::cout << "\npeak birth quarter per RIR:\n";
  util::TextTable table({"RIR", "peak quarter", "births", "paper shape"});
  constexpr const char* kPaperShape[] = {
      "flat, small", "ramp from 2014", "spike around 2000 (bubble)",
      "ramp from 2014", "high volume 2005-2013"};
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    std::size_t peak = 0;
    for (std::size_t q = 0; q < series.births[r].size(); ++q)
      if (series.births[r][q] > series.births[r][peak]) peak = q;
    const int quarter_index = series.quarter_index[peak];
    const int year = quarter_index / 4;
    const int quarter = quarter_index % 4 + 1;
    table.add_row({std::string(asn::display_name(rir)),
                   std::to_string(year) + "Q" + std::to_string(quarter),
                   bench::fmt_count(series.births[r][peak]),
                   kPaperShape[r]});
  }
  table.print(std::cout);

  // Verify the headline claims as series relations.
  const std::size_t arin = asn::index_of(asn::Rir::kArin);
  const auto sum_years = [&](std::size_t r, int from, int to) {
    std::int64_t total = 0;
    for (std::size_t q = 0; q < series.births[r].size(); ++q) {
      const int year = series.quarter_index[q] / 4;
      if (year >= from && year <= to) total += series.births[r][q];
    }
    return total;
  };
  std::cout << "\nARIN births 1999-2001 (bubble): "
            << bench::fmt_count(sum_years(arin, 1999, 2001))
            << " vs 1996-1998: " << bench::fmt_count(sum_years(arin, 1996,
                                                               1998))
            << " vs 2002-2004: " << bench::fmt_count(sum_years(arin, 2002,
                                                               2004))
            << "\n";
  const std::size_t apnic = asn::index_of(asn::Rir::kApnic);
  const std::size_t lacnic = asn::index_of(asn::Rir::kLacnic);
  std::cout << "APNIC births 2015-2020: "
            << bench::fmt_count(sum_years(apnic, 2015, 2020))
            << " vs 2009-2014: " << bench::fmt_count(sum_years(apnic, 2009,
                                                               2014))
            << "; LACNIC 2015-2020: "
            << bench::fmt_count(sum_years(lacnic, 2015, 2020))
            << " vs 2009-2014: " << bench::fmt_count(sum_years(lacnic, 2009,
                                                               2014))
            << "\n";
  return 0;
}
