// 6.2 Partial overlap: operators' dangling announcements past deallocation
// and operational starts before the published allocation — the in-text
// numbers of the section (2,840 dangling of 4,434; 1,594 early starts, 631
// of them before the registration date; mismatches lasting a few days).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("6.2 Partial overlap",
                      "dangling announcements and early starts");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::PartialOverlapAnalysis analysis =
      joint::analyze_partial_overlap(p.taxonomy, p.admin, p.op);

  util::TextTable table({"quantity", "measured", "paper"});
  table.add_row({"partial-overlap admin lives",
                 bench::fmt_count(analysis.partial_admin_lives), "4,434"});
  table.add_row({"dangling announcements (op continues past dealloc)",
                 bench::fmt_count(analysis.dangling_lives) + " (" +
                     bench::fmt_pct(analysis.partial_admin_lives == 0
                                        ? 0
                                        : static_cast<double>(
                                              analysis.dangling_lives) /
                                              static_cast<double>(
                                                  analysis
                                                      .partial_admin_lives)) +
                     ")",
                 "2,840 (64%)"});
  table.add_row({"ASNs announcing before allocation",
                 bench::fmt_count(analysis.early_starts), "1,594"});
  table.add_row({"  of which before the registration date",
                 bench::fmt_count(analysis.early_before_regdate), "631"});
  table.print(std::cout);

  std::cout << "\ndangling-tail duration (days past deallocation): median "
            << static_cast<int>(util::median(analysis.dangling_days))
            << ", p90 " << static_cast<int>(util::quantile(
                   analysis.dangling_days, 0.9))
            << "  (paper: AS43268 dangled ~2 years, prompting RIPE NCC to "
               "hold it reserved)\n";
  std::cout << "early-start lead (days before allocation): median "
            << static_cast<int>(util::median(analysis.early_days))
            << ", max " << static_cast<int>(util::quantile(
                   analysis.early_days, 1.0))
            << "  (paper: mismatches only last a few days — delegation-file "
               "publication lag)\n";

  // Customer-cone claim: dangling ASNs are predominantly small. Our proxy:
  // the behaviour model only assigns dangling tails to single-homed
  // small-network lives; verify via the ground-truth org kinds.
  std::int64_t dangling_small = 0;
  std::int64_t dangling_total = 0;
  for (std::size_t i = 0; i < p.op_world.behavior.plans.size(); ++i) {
    const bgpsim::AsnOpPlan& plan = p.op_world.behavior.plans[i];
    if (plan.kind != bgpsim::BehaviorKind::kDanglingTail) continue;
    if (plan.truth_life_index < 0) continue;
    ++dangling_total;
    const rirsim::Organization& org =
        p.truth.orgs[p.truth
                         .lives[static_cast<std::size_t>(
                             plan.truth_life_index)]
                         .org];
    if (org.kind == rirsim::OrgKind::kSmallNetwork) ++dangling_small;
  }
  if (dangling_total > 0)
    std::cout << "\ndangling ASNs held by small single-AS organizations: "
              << bench::fmt_pct(static_cast<double>(dangling_small) /
                                static_cast<double>(dangling_total))
              << " (paper: 95% have no customers — stale manual router "
                 "configurations)\n";
  return 0;
}
