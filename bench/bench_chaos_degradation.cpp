// Graceful-degradation sweep: restoration accuracy as the ingestion
// transport decays. Wraps the rendered archive in dele::FaultStream at
// uniform fault rates from 0% to 20% and measures what survives — the
// conservation books must balance at every rate, and accuracy should fall
// smoothly with the share of days the transport actually destroyed, never
// with a crash.
#include "common.hpp"
#include "delegation/fault_stream.hpp"
#include "robust/chaos.hpp"

namespace {

using namespace pl;

/// Per-day delegated-status error vs ground truth, on the same deterministic
/// life sample bench_ablation_restore uses.
std::int64_t sampled_day_errors(const bench::Pipeline& p,
                                const restore::RestoredArchive& restored) {
  std::int64_t day_errors = 0;
  for (std::size_t i = 0; i < p.truth.lives.size(); i += 17) {
    const rirsim::TrueAdminLife& life = p.truth.lives[i];
    util::IntervalSet expected;
    for (const rirsim::RegistrySegment& segment : life.segments) {
      const asn::RirFacts& facts = asn::facts(segment.rir);
      const util::DayInterval clipped = segment.days.intersect(
          util::DayInterval{std::max(p.truth.archive_begin,
                                     std::min(facts.first_regular_file,
                                              facts.first_extended_file)),
                            p.truth.archive_end});
      if (!clipped.empty()) expected.add(clipped);
    }
    for (const rirsim::Interruption& gap : life.interruptions)
      expected.subtract(gap.days);
    if (expected.empty()) continue;
    util::IntervalSet actual;
    for (const restore::RestoredRegistry& registry : restored.registries) {
      const auto it = registry.spans.find(life.asn.value);
      if (it == registry.spans.end()) continue;
      for (const restore::StateSpan& span : it->second)
        if (dele::is_delegated(span.state.status)) actual.add(span.days);
    }
    const util::DayInterval span = expected.span();
    const std::int64_t common = expected.intersect(actual).covered_days(span);
    day_errors += (expected.total_days() - common) +
                  (actual.covered_days(span) - common);
  }
  return day_errors;
}

}  // namespace

int main() {
  using namespace pl;
  bench::print_banner("Chaos: ingestion degradation",
                      "restoration accuracy under transport fault injection");

  const bench::Pipeline& p = bench::Pipeline::instance();
  rirsim::InjectorConfig injector;
  injector.seed = p.seed + 4;
  injector.scale = p.scale;
  const rirsim::SimulatedArchive archive(p.truth, injector);

  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};

  util::TextTable table({"fault rate", "days dropped", "quarantined",
                         "reorder-recovered", "lifetimes",
                         "status-day errors (sampled)", "books"});
  for (const double rate : rates) {
    robust::ErrorSink sink(robust::Policy::kLenient);
    restore::RestoreConfig config;
    config.reorder_window_days = 2;  // absorbs the injector's 1-day swaps

    restore::RestoredArchive restored;
    for (asn::Rir rir : asn::kAllRirs) {
      robust::ChaosConfig chaos =
          robust::ChaosConfig::uniform(rate, p.seed + 90);
      chaos.seed += asn::index_of(rir);
      dele::FaultStream stream(archive.stream(rir), chaos, &sink);
      restored.registries[asn::index_of(rir)] = restore::restore_registry(
          stream, config, &p.truth.erx, &p.op_world.activity, &sink);
    }
    restored.cross = restore::reconcile_registries(
        restored.registries,
        [&](asn::Asn a) { return p.truth.iana.owner(a); }, config,
        p.truth.archive_begin);
    const lifetimes::AdminDataset admin =
        lifetimes::build_admin_lifetimes(restored, p.truth.archive_end);

    const robust::RobustnessReport& books = sink.counters();
    const bool balanced =
        books.transport_accounted() && books.delivery_accounted();
    table.add_row(
        {bench::fmt_pct(rate, 0), bench::fmt_count(books.days_dropped),
         bench::fmt_count(books.days_quarantined_duplicate +
                          books.days_quarantined_late),
         bench::fmt_count(books.days_reorder_recovered),
         bench::fmt_count(static_cast<std::int64_t>(admin.lifetimes.size())),
         bench::fmt_count(sampled_day_errors(p, restored)),
         balanced ? "balanced" : "IMBALANCED"});
  }
  table.print(std::cout);
  std::cout << "\n(every day the chaos layer delivers is applied or "
               "quarantined — 'books' checks both conservation laws; the "
               "reorder window hides swapped days entirely, so accuracy "
               "degrades only with the days outages actually destroyed, "
               "and degradation stays proportional: no cliff, no crash)\n";
  return 0;
}
