// Appendix A: countries' infrastructural expansion — per-RIR leading
// countries and their shares at the 2015 and 2021 snapshots (Brazil's climb
// in LACNIC, Russia leading RIPE, the US dominating ARIN, South Africa
// leading AfriNIC).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Appendix A: country expansion",
                      "per-RIR leading countries, 2015 vs 2021");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const util::Day snapshot_2015 = util::make_day(2015, 3, 1);
  const util::Day snapshot_2021 = util::make_day(2021, 3, 1);

  struct PaperRow {
    const char* rir_claims;
  };
  constexpr const char* kPaper[] = {
      "ZA leads with >32%",
      "IN 15.7% first by 2021 (Table 4)",
      "US >92% of allocations",
      "BR 64% (2015) -> >70% (2021); AR ~9.5% second",
      "RU leads with 16.6%, ~2x the UK",
  };

  for (asn::Rir rir : asn::kAllRirs) {
    std::cout << asn::display_name(rir) << "  (paper: "
              << kPaper[asn::index_of(rir)] << ")\n";
    util::TextTable table({"rank", "2015", "2021"});
    const auto shares_2015 =
        joint::country_shares_on(p.admin, rir, snapshot_2015, 3);
    const auto shares_2021 =
        joint::country_shares_on(p.admin, rir, snapshot_2021, 3);
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const auto cell = [&](const std::vector<joint::CountryShareRow>& rows) {
        if (rank >= rows.size()) return std::string("-");
        return rows[rank].country.to_string() + " " +
               bench::fmt_pct(rows[rank].share);
      };
      table.add_row({std::to_string(rank + 1), cell(shares_2015),
                     cell(shares_2021)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Brazil's LACNIC share trajectory, the paper's headline example.
  const auto brazil_share = [&](util::Day day) {
    for (const joint::CountryShareRow& row :
         joint::country_shares_on(p.admin, asn::Rir::kLacnic, day, 10))
      if (row.country.to_string() == "BR") return row.share;
    return 0.0;
  };
  std::cout << "Brazil in LACNIC: " << bench::fmt_pct(brazil_share(
      snapshot_2015))
            << " (2015) -> " << bench::fmt_pct(brazil_share(snapshot_2021))
            << " (2021)   (paper: 64% -> >70%)\n";
  return 0;
}
