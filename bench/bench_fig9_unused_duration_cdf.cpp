// Figure 9: distribution of lifetime duration for never-used administrative
// lives, plus the 6.3 breakdowns: country concentration (China), siblings,
// and the 32-bit share of short unused lives.
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Figure 9 / 6.3",
                      "unused administrative lives: durations and causes");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::UnusedAnalysis analysis =
      joint::analyze_unused(p.taxonomy, p.admin, p.op);

  std::cout << "unused admin lives: " << bench::fmt_count(
      analysis.unused_lives)
            << " (paper: 22,729 = 17.9%), over "
            << bench::fmt_count(analysis.unused_asns)
            << " ASNs (paper: 21,431); never seen in BGP at all: "
            << bench::fmt_count(analysis.never_seen_asns)
            << " ASNs (paper: 13,407)\n\n";

  util::TextTable cdf({"days", "AfriNIC", "APNIC", "ARIN", "LACNIC",
                       "RIPE NCC"});
  for (const int days : {180, 365, 1095, 1825, 3650, 6000}) {
    std::vector<std::string> row = {std::to_string(days)};
    for (asn::Rir rir : asn::kAllRirs) {
      const std::size_t r = asn::index_of(rir);
      const util::Ecdf ecdf{std::vector<double>(
          analysis.durations[r].begin(), analysis.durations[r].end())};
      row.push_back(bench::fmt_pct(ecdf.at(days)));
    }
    cdf.add_row(std::move(row));
  }
  cdf.print(std::cout);
  std::cout << "(paper: only 14.9% (ARIN) .. 45% (LACNIC) of unused lives "
               "last under a year; most last multiple years)\n\n";

  std::cout << "top countries by unused lives (paper: China leads with "
               "50.6% of its allocations unobserved; runners-up <15%):\n";
  util::TextTable countries({"country", "unused", "total",
                             "unused fraction"});
  std::size_t rows = 0;
  for (const joint::CountryUnusedRow& row : analysis.by_country) {
    if (rows++ == 10) break;
    countries.add_row({row.country.to_string(),
                       bench::fmt_count(row.unused_lives),
                       bench::fmt_count(row.total_lives),
                       bench::fmt_pct(row.unused_fraction())});
  }
  countries.print(std::cout);

  std::cout << "\nunused lives whose holder has another ASN active (sibling "
               "substitution): "
            << bench::fmt_count(analysis.unused_with_active_sibling)
            << " (paper: DoD ~40%, Verisign 24%, Orange 20% usage)\n";

  std::cout << "\n32-bit share of unused lives shorter than a month "
               "(failed deployments; paper: APNIC 92.6%, RIPE 87.3%, ARIN "
               "65.2%, AfriNIC 81%, LACNIC 38%):\n";
  util::TextTable short32({"RIR", "short unused lives", "32-bit share"});
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    short32.add_row({std::string(asn::display_name(rir)),
                     bench::fmt_count(analysis.short_unused_count[r]),
                     bench::fmt_pct(analysis.short_unused_32bit_share[r])});
  }
  short32.print(std::cout);
  return 0;
}
