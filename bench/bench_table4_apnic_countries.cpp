// Table 4: evolution of APNIC's top countries by alive allocations at the
// 2010 / 2015 / 2021 snapshots (India's climb past Australia).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Table 4", "APNIC countries evolution");

  const bench::Pipeline& p = bench::Pipeline::instance();

  const util::Day snapshots[] = {util::make_day(2010, 3, 1),
                                 util::make_day(2015, 3, 1),
                                 util::make_day(2021, 3, 1)};
  const char* headers[] = {"2010", "2015", "2021"};
  constexpr const char* kPaper[3][5] = {
      {"AU 17.6%", "KR 14.6%", "JP 12.9%", "CN 7.6%", "ID 7.1%"},
      {"AU 16.1%", "CN 11.4%", "JP 10.4%", "IN 10.1%", "KR 9.6%"},
      {"IN 15.7%", "AU 14.5%", "ID 11.1%", "CN 10.6%", "JP 6.1%"},
  };

  util::TextTable table({"Pos.", "2010", "2015", "2021", "paper 2010",
                         "paper 2015", "paper 2021"});
  std::array<std::vector<joint::CountryShareRow>, 3> shares;
  for (int s = 0; s < 3; ++s)
    shares[static_cast<std::size_t>(s)] = joint::country_shares_on(
        p.admin, asn::Rir::kApnic, snapshots[s], 5);

  for (std::size_t position = 0; position < 5; ++position) {
    std::vector<std::string> row;
    row.push_back(std::to_string(position + 1) + "°");
    for (int s = 0; s < 3; ++s) {
      const auto& list = shares[static_cast<std::size_t>(s)];
      if (position < list.size()) {
        row.push_back(list[position].country.to_string() + ": " +
                      bench::fmt_count(list[position].count) + " - " +
                      bench::fmt_pct(list[position].share));
      } else {
        row.push_back("-");
      }
    }
    for (int s = 0; s < 3; ++s)
      row.push_back(kPaper[s][position]);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  (void)headers;

  // Headline check: leader flips from AU-era to IN-era.
  const auto leader = [&](int s) {
    const auto& list = shares[static_cast<std::size_t>(s)];
    return list.empty() ? std::string("-") : list[0].country.to_string();
  };
  std::cout << "\nleader: 2010=" << leader(0) << " (paper AU), 2021="
            << leader(2) << " (paper IN)\n";
  return 0;
}
