// Ablation: what each restoration step (3.1) contributes. Re-runs the
// pipeline with individual steps disabled and measures the damage against
// the fully-restored baseline and the simulator's ground truth.
#include <set>

#include "common.hpp"

namespace {

using namespace pl;

struct Variant {
  const char* name;
  restore::RestoreConfig config;
  bool reconcile = true;
};

struct Outcome {
  std::int64_t lifetimes = 0;
  std::int64_t asns = 0;
  std::int64_t excess_lives = 0;   ///< lives beyond the baseline per ASN
  std::int64_t bad_regdates = 0;   ///< lifetimes whose regdate misses truth
  std::int64_t cross_overlaps = 0;
  std::int64_t day_errors = 0;     ///< delegated-day error vs truth (sampled)
};

}  // namespace

int main() {
  using namespace pl;
  bench::print_banner("Ablation: restoration steps",
                      "pipeline accuracy with 3.1 steps disabled");

  const bench::Pipeline& p = bench::Pipeline::instance();
  rirsim::InjectorConfig injector;
  injector.seed = p.seed + 4;
  injector.scale = p.scale;
  const rirsim::SimulatedArchive archive(p.truth, injector);

  // Ground-truth registration dates per (asn, start-era) for accuracy
  // checks: map asn -> sorted (start, regdate).
  // Acceptable dates per ASN: the true registration date, and — when the
  // registry issued an administrative correction — the corrected value.
  std::map<std::uint32_t, std::set<util::Day>> truth_dates;
  for (const rirsim::TrueAdminLife& life : p.truth.lives) {
    truth_dates[life.asn.value].insert(life.registration_date);
    if (life.regdate_correction)
      truth_dates[life.asn.value].insert(life.regdate_correction->second);
    // AfriNIC same-holder re-allocations reset the reported date.
    for (const rirsim::Interruption& gap : life.interruptions)
      if (gap.regdate_reset)
        truth_dates[life.asn.value].insert(gap.days.last + 1);
  }

  std::vector<Variant> variants;
  variants.push_back({"full pipeline (baseline)", {}, true});
  {
    restore::RestoreConfig c;
    c.recover_from_regular = false;
    variants.push_back({"no regular-file recovery (ii/iii off)", c, true});
  }
  {
    restore::RestoreConfig c;
    c.repair_dates = false;
    variants.push_back({"no date repair (v off)", c, true});
  }
  {
    restore::RestoreConfig c;
    c.resolve_duplicates = false;
    variants.push_back({"no duplicate resolution (iv off)", c, true});
  }
  variants.push_back({"no cross-RIR reconciliation (vi off)", {}, false});

  util::TextTable table({"variant", "lifetimes", "ASNs", "spurious extra "
                         "lives", "wrong regdates", "cross-RIR overlaps",
                         "status-day errors (sampled)"});
  std::int64_t baseline_lives = 0;
  std::map<std::uint32_t, std::int64_t> baseline_per_asn;

  for (const Variant& variant : variants) {
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
    for (asn::Rir rir : asn::kAllRirs)
      streams[asn::index_of(rir)] = archive.stream(rir);

    restore::RestoredArchive restored;
    for (std::size_t i = 0; i < streams.size(); ++i)
      restored.registries[i] = restore::restore_registry(
          *streams[i], variant.config, &p.truth.erx, &p.op_world.activity);
    if (variant.reconcile)
      restored.cross = restore::reconcile_registries(
          restored.registries,
          [&](asn::Asn a) { return p.truth.iana.owner(a); }, variant.config,
          p.truth.archive_begin);

    const lifetimes::AdminDataset admin =
        lifetimes::build_admin_lifetimes(restored, p.truth.archive_end);

    Outcome outcome;
    outcome.lifetimes = static_cast<std::int64_t>(admin.lifetimes.size());
    outcome.asns = static_cast<std::int64_t>(admin.asn_count());

    if (baseline_lives == 0) {
      baseline_lives = outcome.lifetimes;
      for (const auto& [asn, indices] : admin.by_asn)
        baseline_per_asn[asn] =
            static_cast<std::int64_t>(indices.size());
    }
    for (const auto& [asn, indices] : admin.by_asn) {
      const auto it = baseline_per_asn.find(asn);
      const std::int64_t base =
          it == baseline_per_asn.end() ? 0 : it->second;
      if (static_cast<std::int64_t>(indices.size()) > base)
        outcome.excess_lives +=
            static_cast<std::int64_t>(indices.size()) - base;
    }

    // Registration-date accuracy vs truth: a lifetime's regdate must match
    // some truth life of that ASN exactly.
    for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
      const auto it = truth_dates.find(life.asn.value);
      if (it == truth_dates.end()) continue;
      if (!it->second.contains(life.registration_date))
        ++outcome.bad_regdates;
    }

    // Remaining simultaneous multi-registry delegations.
    std::map<std::uint32_t, std::vector<util::DayInterval>> delegated;
    for (const restore::RestoredRegistry& registry : restored.registries)
      for (const auto& [asn, spans] : registry.spans)
        for (const restore::StateSpan& span : spans)
          if (dele::is_delegated(span.state.status))
            delegated[asn].push_back(span.days);
    for (auto& [asn, intervals] : delegated) {
      std::sort(intervals.begin(), intervals.end(),
                [](const util::DayInterval& a, const util::DayInterval& b) {
                  return a.first < b.first;
                });
      for (std::size_t i = 1; i < intervals.size(); ++i)
        if (intervals[i].overlaps(intervals[i - 1])) {
          ++outcome.cross_overlaps;
          break;
        }
    }

    // Per-day status accuracy vs ground truth, on a deterministic sample
    // of lives (the damage steps ii/iii actually prevent — the 4.1
    // same-date merge hides it from lifetime counts).
    for (std::size_t i = 0; i < p.truth.lives.size(); i += 17) {
      const rirsim::TrueAdminLife& life = p.truth.lives[i];
      util::IntervalSet expected;
      for (const rirsim::RegistrySegment& segment : life.segments) {
        const asn::RirFacts& facts = asn::facts(segment.rir);
        const util::DayInterval clipped = segment.days.intersect(
            util::DayInterval{std::max(p.truth.archive_begin,
                                       std::min(facts.first_regular_file,
                                                facts.first_extended_file)),
                              p.truth.archive_end});
        if (!clipped.empty()) expected.add(clipped);
      }
      for (const rirsim::Interruption& gap : life.interruptions)
        expected.subtract(gap.days);
      if (expected.empty()) continue;
      util::IntervalSet actual;
      for (const restore::RestoredRegistry& registry : restored.registries) {
        const auto it = registry.spans.find(life.asn.value);
        if (it == registry.spans.end()) continue;
        for (const restore::StateSpan& span : it->second)
          if (dele::is_delegated(span.state.status)) actual.add(span.days);
      }
      const util::DayInterval span = expected.span();
      const std::int64_t common =
          expected.intersect(actual).covered_days(span);
      outcome.day_errors += (expected.total_days() - common) +
                            (actual.covered_days(span) - common);
    }

    table.add_row({variant.name, bench::fmt_count(outcome.lifetimes),
                   bench::fmt_count(outcome.asns),
                   bench::fmt_count(outcome.excess_lives),
                   bench::fmt_count(outcome.bad_regdates),
                   bench::fmt_count(outcome.cross_overlaps),
                   bench::fmt_count(outcome.day_errors)});
  }
  table.print(std::cout);
  std::cout << "\n(lifetime counts barely move without ii/iii because the "
               "4.1 same-registration-date rule re-merges the fragments — "
               "but the per-day status error shows the dropped records; "
               "disabling v leaves placeholder dates that corrupt the "
               "lifetimes' registration dates; disabling vi leaves stale "
               "transfer overlaps and phantom foreign allocations)\n";
  return 0;
}
