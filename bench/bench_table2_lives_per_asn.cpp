// Table 2: number of administrative and operational lifetimes per ASN
// (share of ASNs with 1 / 2 / >2 lives, per RIR and total).
#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Table 2",
                      "administrative and operational lifetimes per ASN");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const joint::LivesPerAsnTable table =
      joint::compute_lives_per_asn(p.admin, p.op);

  // Paper reference rows (Adm. / Op. percentages).
  struct PaperRow {
    const char* rir;
    double adm[3];
    double op[3];
  };
  constexpr PaperRow kPaper[] = {
      {"AfriNIC", {96.7, 3.0, 0.3}, {78.6, 12.5, 8.9}},
      {"APNIC", {93.2, 6.1, 0.7}, {76.9, 14.5, 8.6}},
      {"ARIN", {71.9, 21.9, 6.2}, {65.8, 22.4, 11.8}},
      {"LACNIC", {98.4, 1.5, 0.1}, {88.4, 7.9, 3.7}},
      {"RIPE NCC", {84.4, 14.0, 1.6}, {76.2, 15.0, 8.8}},
  };

  util::TextTable out({"RIR", "Adm 1", "Adm 2", "Adm >2", "Op 1", "Op 2",
                       "Op >2", "paper Adm", "paper Op"});
  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t r = asn::index_of(rir);
    const joint::LivesPerAsnRow& admin_row = table.admin[r];
    const joint::LivesPerAsnRow& op_row = table.op[r];
    char paper_adm[64];
    char paper_op[64];
    std::snprintf(paper_adm, sizeof paper_adm, "%.1f/%.1f/%.1f",
                  kPaper[r].adm[0], kPaper[r].adm[1], kPaper[r].adm[2]);
    std::snprintf(paper_op, sizeof paper_op, "%.1f/%.1f/%.1f",
                  kPaper[r].op[0], kPaper[r].op[1], kPaper[r].op[2]);
    out.add_row({std::string(asn::display_name(rir)),
                 bench::fmt_pct(admin_row.one), bench::fmt_pct(admin_row.two),
                 bench::fmt_pct(admin_row.more), bench::fmt_pct(op_row.one),
                 bench::fmt_pct(op_row.two), bench::fmt_pct(op_row.more),
                 paper_adm, paper_op});
  }
  out.add_row({"Total", bench::fmt_pct(table.admin_total.one),
               bench::fmt_pct(table.admin_total.two),
               bench::fmt_pct(table.admin_total.more),
               bench::fmt_pct(table.op_total.one),
               bench::fmt_pct(table.op_total.two),
               bench::fmt_pct(table.op_total.more),
               "84.1/13.4/2.5", "74.3/15.8/9.9"});
  out.print(std::cout);

  std::cout << "\ndatasets: "
            << bench::fmt_count(static_cast<std::int64_t>(
                   p.admin.lifetimes.size()))
            << " admin lifetimes / "
            << bench::fmt_count(static_cast<std::int64_t>(
                   p.admin.asn_count()))
            << " ASNs (paper: 126,953 / 106,873); "
            << bench::fmt_count(static_cast<std::int64_t>(
                   p.op.lifetimes.size()))
            << " op lifetimes / "
            << bench::fmt_count(static_cast<std::int64_t>(p.op.asn_count()))
            << " ASNs (paper: 152,926 / 96,391)\n";
  return 0;
}
