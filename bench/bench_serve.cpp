// Serving-layer performance harness: builds the serve::Snapshot from the
// shared bench pipeline, then measures the query paths a deployment cares
// about — cold and warm point lookups, batch lookups, alive-on batches —
// and the incremental update: advance_day latency vs. rebuilding the whole
// snapshot, with the bit-identity of the two re-checked in passing. Writes
// machine-readable BENCH_serve.json so successive PRs accumulate a perf
// trajectory.
//
// Environment knobs:
//   PL_BENCH_SCALE        world scale (default 1.0 = paper scale)
//   PL_BENCH_SEED         world seed (default 42)
//   PL_BENCH_OUT          JSON output path (default BENCH_serve.json)
//   PL_KEYFRAME_INTERVAL  history keyframe spacing in days (default 16;
//                         EXPERIMENTS.md discusses the trade-off)
//
// JSON format (schema pl-bench-serve/4; /3 plus the history block):
//   {
//     "schema": "pl-bench-serve/4", "scale": ..., "seed": ...,
//     "snapshot": {"asns": n, "admin_lives": n, "op_lives": n,
//                  "build_ms": ms},
//     "queries": {"point_cold_qps": x, "point_warm_qps": x,
//                 "batch_qps": x, "alive_qps": x, "scan_full_ms": ms,
//                 "census_ms": ms, "cache_hits": n, "cache_misses": n},
//     "advance": {"days": n, "mean_ms": ms, "max_ms": ms,
//                 "rebuild_ms": ms, "speedup_vs_rebuild": x,
//                 "identical": true},
//     "durability": {"wal_append_mean_ms": ms, "wal_append_max_ms": ms,
//                    "wal_bytes": n, "snapshot_save_ms": ms,
//                    "snapshot_open_ms": ms, "snapshot_bytes": n,
//                    "recover_ms": ms, "replayed_days": n},
//     "history": {"days": n, "keyframe_interval": n, "keyframes": n,
//                 "deltas": n, "build_ms": ms, "keyframe_bytes_per_day": x,
//                 "delta_bytes_per_day": x, "delta_to_keyframe_ratio": x,
//                 "reconstructs": n,
//                 "reconstruct": shared percentile summary, ns,
//                 "identical": true},
//     "observability": {"enabled": bool, "instr_ns_per_query": x,
//                       "warm_ns_per_query": x, "overhead_pct": x,
//                       "latency": {"point"|"batch"|"alive"|"scan"|"census":
//                                   shared percentile summary
//                                   (bench/common.hpp), ns}}
//   }
//
// Exit status is non-zero when advance/rebuild bit-identity breaks, when a
// sampled history reconstruction deviates from a fresh rebuild, or when the
// per-query observability tax exceeds 3% of the warm point-lookup cost
// (DESIGN.md §14's always-on budget).

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "history/store.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "serve/durable.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Query mix the oracle test uses too: mostly ASNs the study knows, some it
/// never saw (misses exercise the not-found path and the cache equally).
std::vector<pl::asn::Asn> query_mix(const pl::serve::Snapshot& snapshot,
                                    std::size_t count) {
  pl::util::Rng rng(0x5EED);
  const auto& rows = snapshot.rows();
  std::vector<pl::asn::Asn> asns;
  asns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!rows.empty() && rng.uniform(0, 3) != 0) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(rows.size()) - 1));
      asns.push_back(rows[pick].asn);
    } else {
      asns.push_back(pl::asn::Asn{
          static_cast<std::uint32_t>(rng.uniform(1, 500000))});
    }
  }
  return asns;
}

/// Per-kind serve latency summary out of a metrics snapshot; empty (all
/// zeros through the shared emitter) when the kind never ran or the build
/// compiled obs out.
pl::obs::LatencyHistoSnapshot serve_latency(const pl::obs::Snapshot& metrics,
                                            const std::string& kind) {
  const auto it = metrics.latencies.find("pl_serve_latency_ns{kind=\"" +
                                         kind + "\"}");
  return it != metrics.latencies.end() ? it->second
                                       : pl::obs::LatencyHistoSnapshot{};
}

}  // namespace

int main() {
  using namespace pl;
  bench::print_banner(
      "serve", "snapshot queries + incremental day-advance vs. rebuild");

  std::string out_path = "BENCH_serve.json";
  if (const char* env = std::getenv("PL_BENCH_OUT")) out_path = env;

  const bench::Pipeline& pipeline = bench::Pipeline::instance();
  const util::Day end = pipeline.truth.archive_end;

  // --- Snapshot build (the serve.build_snapshot stage).
  const auto build_start = Clock::now();
  serve::Snapshot snapshot = serve::Snapshot::build(
      pipeline.restored, pipeline.op_world.activity, end);
  const double build_ms = ms_since(build_start);
  std::cout << "snapshot: " << bench::fmt_count(static_cast<std::int64_t>(
                   snapshot.asn_count()))
            << " ASNs, " << bench::fmt_count(static_cast<std::int64_t>(
                   snapshot.admin_life_count()))
            << " admin + " << bench::fmt_count(static_cast<std::int64_t>(
                   snapshot.op_life_count()))
            << " op lives, built in " << build_ms << " ms\n\n";
  const std::int64_t snapshot_asns =
      static_cast<std::int64_t>(snapshot.asn_count());
  const std::int64_t snapshot_admin =
      static_cast<std::int64_t>(snapshot.admin_life_count());
  const std::int64_t snapshot_op =
      static_cast<std::int64_t>(snapshot.op_life_count());

  // --- Query throughput. One service, cache on: the first pass over the
  // mix is all misses (cold), the second pass all hits (warm).
  const std::size_t kQueries = 20000;
  const std::vector<asn::Asn> mix = query_mix(snapshot, kQueries);
  serve::QueryService service(std::move(snapshot));

  auto start = Clock::now();
  for (const asn::Asn asn : mix) (void)service.lookup(asn);
  const double cold_ms = ms_since(start);

  start = Clock::now();
  for (const asn::Asn asn : mix) (void)service.lookup(asn);
  const double warm_ms = ms_since(start);

  start = Clock::now();
  const std::vector<serve::AsnAnswer> batch = service.lookup_batch(mix);
  const double batch_ms = ms_since(start);

  start = Clock::now();
  const std::vector<serve::AliveAnswer> alive =
      service.alive_on_batch(mix, end - 365);
  const double alive_ms = ms_since(start);

  start = Clock::now();
  const std::vector<serve::AsnAnswer> everything =
      service.scan(serve::ScanQuery{});
  const double scan_ms = ms_since(start);

  start = Clock::now();
  const serve::CensusAnswer census = service.census(end);
  const double census_ms = ms_since(start);
  (void)census;

  const auto qps = [&](double ms) {
    return ms > 0 ? 1000.0 * static_cast<double>(kQueries) / ms : 0.0;
  };
  const obs::Snapshot metrics = service.report().metrics;
  const std::int64_t hits = metrics.counter_value("pl_serve_cache_hits");
  const std::int64_t misses = metrics.counter_value("pl_serve_cache_misses");
  std::cout << "point lookups: cold " << bench::fmt_count(
                   static_cast<std::int64_t>(qps(cold_ms)))
            << " qps, warm " << bench::fmt_count(
                   static_cast<std::int64_t>(qps(warm_ms)))
            << " qps (cache " << hits << " hits / " << misses << " misses)\n";
  std::cout << "batch lookup:  " << bench::fmt_count(
                   static_cast<std::int64_t>(qps(batch_ms)))
            << " qps over one " << kQueries << "-ASN batch\n";
  std::cout << "alive batch:   " << bench::fmt_count(
                   static_cast<std::int64_t>(qps(alive_ms)))
            << " qps; full scan of " << bench::fmt_count(
                   static_cast<std::int64_t>(everything.size()))
            << " rows in " << scan_ms << " ms; census in " << census_ms
            << " ms\n\n";
  (void)batch;
  (void)alive;

  // --- Observability tax. The point path pays, per query: one RequestId
  // derivation, one flight-ring record, and a 1-in-8 decimated latency
  // sample (serve/query.cpp). Replay exactly that sequence in a tight loop
  // and price it against the warm per-lookup cost measured above — the
  // always-on budget is <=3% (DESIGN.md §14). Under PL_OBS_OFF the shells
  // compile to nothing and the tax reads ~0 by construction.
  const std::size_t kInstrOps = 1u << 21;
  obs::FlightRecorder instr_flight(obs::kFlightDefaultCapacity);
  obs::Registry instr_registry;
  obs::LatencyHisto& instr_latency = instr_registry.latency("bench_instr");
  start = Clock::now();
  for (std::size_t i = 0; i < kInstrOps; ++i) {
    const obs::RequestId request =
        obs::derive_request_id(obs::kQueryStream, 0, i);
    instr_flight.record(obs::FlightEvent{
        request.value, static_cast<std::uint32_t>(obs::EventKind::kLookup),
        obs::query_detail(obs::kCacheHit, 0, 0, true),
        static_cast<std::int64_t>(i), 0});
    if ((i & 7) == 0) instr_latency.observe(static_cast<std::int64_t>(i));
  }
  const double instr_ms = ms_since(start);
  const double instr_ns_per_query =
      1e6 * instr_ms / static_cast<double>(kInstrOps);
  const double warm_ns_per_query =
      1e6 * warm_ms / static_cast<double>(kQueries);
  const double overhead_pct =
      warm_ns_per_query > 0
          ? 100.0 * instr_ns_per_query / warm_ns_per_query
          : 0.0;
  const bool obs_ok = !obs::kEnabled || overhead_pct <= 3.0;
  std::cout << "observability: " << (obs::kEnabled ? "on" : "off (PL_OBS_OFF)")
            << ", instrumentation " << instr_ns_per_query
            << " ns/query vs warm lookup " << warm_ns_per_query
            << " ns/query = " << overhead_pct << "% overhead"
            << (obs_ok ? "" : " — OVER THE 3% BUDGET") << "\n\n";

  // --- Incremental advance vs. full rebuild over the last week.
  const int kDays = 7;
  const util::Day base_day = end - kDays;
  serve::Snapshot advanced = history::HistoryStore::rebuild_at(
      pipeline.restored, pipeline.op_world.activity, base_day);
  double advance_total_ms = 0;
  double advance_max_ms = 0;
  for (util::Day day = base_day + 1; day <= end; ++day) {
    const serve::DayDelta delta = history::HistoryStore::slice_day(
        pipeline.restored, pipeline.op_world.activity, day);
    start = Clock::now();
    const pl::Status status = advanced.advance_day(delta);
    const double day_ms = ms_since(start);
    if (!status.ok()) {
      std::cerr << "advance failed: " << status.to_string() << "\n";
      return 1;
    }
    advance_total_ms += day_ms;
    if (day_ms > advance_max_ms) advance_max_ms = day_ms;
  }
  const double advance_mean_ms = advance_total_ms / kDays;

  start = Clock::now();
  const serve::Snapshot rebuilt = serve::Snapshot::build(
      pipeline.restored, pipeline.op_world.activity, end);
  const double rebuild_ms = ms_since(start);
  const bool identical = advanced == rebuilt;

  std::cout << "advance_day:   mean " << advance_mean_ms << " ms, max "
            << advance_max_ms << " ms over " << kDays
            << " days; full rebuild " << rebuild_ms << " ms ("
            << (advance_mean_ms > 0 ? rebuild_ms / advance_mean_ms : 0.0)
            << "x slower per day)\n";
  std::cout << "advanced == rebuilt: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n\n";

  // --- Durability: what crash safety costs per day (WAL append on top of
  // the in-memory fold), what a checkpoint costs (snapshot save), and how
  // long a cold recovery takes (open + replay of a week-deep WAL).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pl_bench_serve_durable")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string snap_path = dir + "/snapshot.plsnap";
  const std::string wal_path = dir + "/days.plwal";

  const serve::Snapshot durable_base = history::HistoryStore::rebuild_at(
      pipeline.restored, pipeline.op_world.activity, base_day);

  start = Clock::now();
  if (const pl::Status saved = serve::save_snapshot(durable_base, snap_path);
      !saved.ok()) {
    std::cerr << "snapshot save failed: " << saved.to_string() << "\n";
    return 1;
  }
  const double snapshot_save_ms = ms_since(start);
  const auto snapshot_bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(snap_path));

  start = Clock::now();
  const auto reopened = serve::open_snapshot(snap_path);
  const double snapshot_open_ms = ms_since(start);
  if (!reopened.ok()) {
    std::cerr << "snapshot open failed: " << reopened.status().to_string()
              << "\n";
    return 1;
  }

  double wal_append_total_ms = 0;
  double wal_append_max_ms = 0;
  for (util::Day day = base_day + 1; day <= end; ++day) {
    const serve::DayDelta delta = history::HistoryStore::slice_day(
        pipeline.restored, pipeline.op_world.activity, day);
    start = Clock::now();
    const pl::Status appended = serve::append_wal(wal_path, delta);
    const double append_ms = ms_since(start);
    if (!appended.ok()) {
      std::cerr << "WAL append failed: " << appended.to_string() << "\n";
      return 1;
    }
    wal_append_total_ms += append_ms;
    if (append_ms > wal_append_max_ms) wal_append_max_ms = append_ms;
  }
  const double wal_append_mean_ms = wal_append_total_ms / kDays;
  const auto wal_bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(wal_path));

  serve::DurableConfig durable;
  durable.dir = dir;
  start = Clock::now();
  auto recovered = serve::DurableService::open(serve::Snapshot{}, durable);
  const double recover_ms = ms_since(start);
  if (!recovered.ok()) {
    std::cerr << "recovery failed: " << recovered.status().to_string()
              << "\n";
    return 1;
  }
  const std::int64_t replayed_days = recovered->health().replayed_days;
  if (recovered->archive_end() != end || recovered->health().degraded) {
    std::cerr << "recovery did not reach the stretch end cleanly\n";
    return 1;
  }

  std::cout << "WAL append:    mean " << wal_append_mean_ms << " ms, max "
            << wal_append_max_ms << " ms ("
            << (advance_mean_ms > 0
                    ? 100.0 * wal_append_mean_ms / advance_mean_ms
                    : 0.0)
            << "% on top of the in-memory fold); "
            << bench::fmt_count(wal_bytes) << " bytes for " << kDays
            << " days\n";
  std::cout << "snapshot file: save " << snapshot_save_ms << " ms, open "
            << snapshot_open_ms << " ms, " << bench::fmt_count(snapshot_bytes)
            << " bytes\n";
  std::cout << "cold recovery: " << recover_ms << " ms (snapshot + "
            << replayed_days << " WAL days replayed)\n";
  std::filesystem::remove_all(dir);

  // --- History: what time travel costs. Build a delta-compressed store
  // over the trailing month, then price the two sides of the trade:
  // storage (delta bytes/day vs keyframe bytes/day — the compact codec's
  // whole point) and random-access reconstruction latency (the
  // pl_history_reconstruct_ns histogram the store keeps itself).
  const int kHistoryDays = 32;
  history::HistoryConfig history_config;
  if (const char* env = std::getenv("PL_KEYFRAME_INTERVAL"))
    history_config.keyframe_interval = std::atoi(env);
  start = Clock::now();
  auto history = history::HistoryStore::build(
      pipeline.restored, pipeline.op_world.activity, end - kHistoryDays, end,
      history_config);
  const double history_build_ms = ms_since(start);
  if (!history.ok()) {
    std::cerr << "history build failed: " << history.status().to_string()
              << "\n";
    return 1;
  }
  const std::size_t kReconstructs = 200;
  util::Rng day_rng(0xD417);
  for (std::size_t i = 0; i < kReconstructs; ++i) {
    const util::Day day = history->earliest_day() +
                          static_cast<util::Day>(day_rng.uniform(
                              0, history->latest_day() -
                                     history->earliest_day()));
    if (const auto at = history->at(day); !at.ok()) {
      std::cerr << "reconstruct failed on day " << day << ": "
                << at.status().to_string() << "\n";
      return 1;
    }
  }
  // Sampled bit-identity: reconstruction must equal the study rebuilt at
  // that day — the contract the history test suite fuzzes, re-checked here
  // at bench scale on a spread of days.
  bool history_identical = true;
  for (const util::Day day :
       {history->earliest_day(), end - kHistoryDays / 2, end}) {
    const auto at = history->at(day);
    if (!at.ok() ||
        !(**at == history::HistoryStore::rebuild_at(
                      pipeline.restored, pipeline.op_world.activity, day))) {
      history_identical = false;
      std::cerr << "history reconstruction diverged on day " << day << "\n";
    }
  }
  const history::HistoryStats hstats = history->stats();
  const double keyframe_bytes_per_day = hstats.mean_keyframe_bytes();
  const double delta_bytes_per_day = hstats.mean_delta_bytes();
  const double delta_ratio =
      keyframe_bytes_per_day > 0
          ? delta_bytes_per_day / keyframe_bytes_per_day
          : 0.0;
  const obs::Snapshot history_metrics = history->report().metrics;
  const auto reconstruct_it =
      history_metrics.latencies.find("pl_history_reconstruct_ns");
  const obs::LatencyHistoSnapshot reconstruct_latency =
      reconstruct_it != history_metrics.latencies.end()
          ? reconstruct_it->second
          : obs::LatencyHistoSnapshot{};
  std::cout << "history:       " << kHistoryDays << " days at interval "
            << history_config.keyframe_interval << " built in "
            << history_build_ms << " ms; " << hstats.keyframes
            << " keyframes + " << hstats.deltas << " deltas; delta "
            << bench::fmt_count(
                   static_cast<std::int64_t>(delta_bytes_per_day))
            << " bytes/day vs keyframe "
            << bench::fmt_count(
                   static_cast<std::int64_t>(keyframe_bytes_per_day))
            << " bytes/day (" << 100.0 * delta_ratio << "%); "
            << kReconstructs << " random reconstructs\n";
  std::cout << "history.at == rebuild: "
            << (history_identical ? "yes" : "NO — DETERMINISM BUG") << "\n\n";

  // --- Machine-readable artifact.
  bench::JsonWriter json;
  json.begin_object();
  json.key("schema").value("pl-bench-serve/4");
  json.key("scale").value(pipeline.scale);
  json.key("seed").value(static_cast<std::uint64_t>(pipeline.seed));
  json.key("snapshot").begin_object();
  json.key("asns").value(snapshot_asns);
  json.key("admin_lives").value(snapshot_admin);
  json.key("op_lives").value(snapshot_op);
  json.key("build_ms").value(build_ms);
  json.end_object();
  json.key("queries").begin_object();
  json.key("point_cold_qps").value(qps(cold_ms), 0);
  json.key("point_warm_qps").value(qps(warm_ms), 0);
  json.key("batch_qps").value(qps(batch_ms), 0);
  json.key("alive_qps").value(qps(alive_ms), 0);
  json.key("scan_full_ms").value(scan_ms);
  json.key("census_ms").value(census_ms);
  json.key("cache_hits").value(hits);
  json.key("cache_misses").value(misses);
  json.end_object();
  json.key("advance").begin_object();
  json.key("days").value(kDays);
  json.key("mean_ms").value(advance_mean_ms);
  json.key("max_ms").value(advance_max_ms);
  json.key("rebuild_ms").value(rebuild_ms);
  json.key("speedup_vs_rebuild")
      .value(advance_mean_ms > 0 ? rebuild_ms / advance_mean_ms : 0.0);
  json.key("identical").value(identical);
  json.end_object();
  json.key("durability").begin_object();
  json.key("wal_append_mean_ms").value(wal_append_mean_ms);
  json.key("wal_append_max_ms").value(wal_append_max_ms);
  json.key("wal_bytes").value(wal_bytes);
  json.key("snapshot_save_ms").value(snapshot_save_ms);
  json.key("snapshot_open_ms").value(snapshot_open_ms);
  json.key("snapshot_bytes").value(snapshot_bytes);
  json.key("recover_ms").value(recover_ms);
  json.key("replayed_days").value(replayed_days);
  json.end_object();
  json.key("history").begin_object();
  json.key("days").value(kHistoryDays);
  json.key("keyframe_interval").value(history_config.keyframe_interval);
  json.key("keyframes").value(hstats.keyframes);
  json.key("deltas").value(hstats.deltas);
  json.key("build_ms").value(history_build_ms);
  json.key("keyframe_bytes_per_day").value(keyframe_bytes_per_day, 0);
  json.key("delta_bytes_per_day").value(delta_bytes_per_day, 0);
  json.key("delta_to_keyframe_ratio").value(delta_ratio);
  json.key("reconstructs").value(hstats.reconstructs);
  json.key("reconstruct");
  bench::emit_latency_summary(json, reconstruct_latency);
  json.key("identical").value(history_identical);
  json.end_object();
  json.key("observability").begin_object();
  json.key("enabled").value(obs::kEnabled);
  json.key("instr_ns_per_query").value(instr_ns_per_query);
  json.key("warm_ns_per_query").value(warm_ns_per_query);
  json.key("overhead_pct").value(overhead_pct);
  json.key("latency").begin_object();
  for (const char* kind : {"point", "batch", "alive", "scan", "census"}) {
    json.key(kind);
    bench::emit_latency_summary(json, serve_latency(metrics, kind));
  }
  json.end_object();
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  out << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";
  return identical && history_identical && obs_ok ? 0 : 1;
}
