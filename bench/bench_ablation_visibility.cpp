// Ablation: the >1-peer visibility rule (3.2). Aggregates a week of
// route-level elements under 1/2/3-peer thresholds and measures how many
// spurious ASNs each threshold admits.
#include <unordered_set>

#include "bgp/roles.hpp"
#include "bgp/sanitizer.hpp"

#include "common.hpp"

int main() {
  using namespace pl;
  bench::print_banner("Ablation: visibility threshold",
                      "active-ASN census under 1/2/3 distinct-peer rules");

  const bench::Pipeline& p = bench::Pipeline::instance();
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(p.op_world, infra, p.seed + 11);
  const bgp::Sanitizer sanitizer;

  // ASNs that are genuinely active (planned, >=2 peer visibility) in the
  // window — ground truth for the spurious count. Plus every ASN that
  // legitimately appears in paths (providers, peers, upstreams).
  const util::Day window_start = util::make_day(2018, 3, 1);
  const int window_days = 5;

  bgp::VisibilityAggregator agg1(1);
  bgp::VisibilityAggregator agg2(2);
  bgp::VisibilityAggregator agg3(3);
  bgp::RoleTracker roles;
  bgp::SanitizeStats stats;
  std::int64_t elements_total = 0;
  for (int d = 0; d < window_days; ++d) {
    const auto elements =
        generator.elements_for_day(window_start + d);
    for (const bgp::Element& element : elements) {
      if (!sanitizer.accept(element, stats)) continue;
      ++elements_total;
      agg1.observe(element);
      agg2.observe(element);
      agg3.observe(element);
      roles.observe(element);
    }
  }

  // Planned-active origins in the window.
  std::unordered_set<std::uint32_t> planned;
  for (const bgpsim::AsnOpPlan& plan : p.op_world.behavior.plans)
    for (const bgpsim::OpLifePlan& life : plan.lives)
      if (life.peer_visibility >= 2 &&
          life.days.overlaps(util::DayInterval{
              window_start, window_start + window_days - 1}))
        planned.insert(plan.asn.value);

  util::TextTable table({"min peers", "active ASNs", "of which planned",
                         "spurious / infra-only"});
  for (const auto& [name, aggregator] :
       {std::pair<const char*, const bgp::VisibilityAggregator*>{"1", &agg1},
        {"2 (paper)", &agg2},
        {"3", &agg3}}) {
    const bgp::ActivityTable activity = aggregator->build();
    std::int64_t total = 0;
    std::int64_t matched = 0;
    for (const auto& [asn, days] : activity.entries()) {
      ++total;
      if (planned.contains(asn.value)) ++matched;
    }
    table.add_row({name, bench::fmt_count(total), bench::fmt_count(matched),
                   bench::fmt_count(total - matched)});
  }
  table.print(std::cout);

  std::cout << "\nprocessed " << bench::fmt_count(elements_total)
            << " sanitized elements over " << window_days << " days; "
            << bench::fmt_count(agg2.single_peer_pairs())
            << " (asn, day) pairs were seen by exactly one peer — the "
               "population the paper's strictly-more-than-1-peer rule "
               "rejects as spurious.\n";
  std::cout << "(threshold 1 admits every junk sighting; threshold 3 starts "
               "discarding genuinely low-visibility ASNs — 2 is the knee)\n";

  // Origination vs transit roles over the window (the paper's future-work
  // distinction, 9): most planned ASNs are pure origins; the provider pool
  // carries both roles.
  std::int64_t origin_only = 0;
  std::int64_t transit_only = 0;
  std::int64_t both = 0;
  const util::DayInterval window{window_start,
                                 window_start + window_days - 1};
  // pl-lint: allow(unordered-drain) order-independent tally: the three
  // counters commute, so hash order cannot leak into the printed totals.
  for (const std::uint32_t asn_value : planned) {
    const auto share = roles.share_over(asn::Asn{asn_value}, window);
    if (share.both > 0 || (share.origin_only > 0 && share.transit_only > 0))
      ++both;
    else if (share.origin_only > 0)
      ++origin_only;
    else if (share.transit_only > 0)
      ++transit_only;
  }
  std::cout << "\nroles of planned ASNs in the window: "
            << bench::fmt_count(origin_only) << " origin-only, "
            << bench::fmt_count(transit_only) << " transit-only, "
            << bench::fmt_count(both)
            << " both — distinguishing the role(s) an ASN plays at "
               "different times of its BGP lifetime (9, future work)\n";
  return 0;
}
